//! Domain-type codecs: every TafLoc type that crosses the wire or the disk,
//! in both directions for both protocols.
//!
//! * `json_write_*` / `json_read_*` — v1 JSON, byte-compatible with the
//!   serde-derived frames: field order is declaration order, enums follow
//!   serde's externally-tagged convention (`"QrPivot"`,
//!   `{"Knn":{"k":3}}`), `#[serde(default)]` fields decode leniently.
//! * `enc_*` / `dec_*` — v2 binary over [`crate::codec`], the same layout
//!   the `taflocd` snapshot store persists (the store delegates here, so
//!   wire and disk cannot drift apart).
//!
//! Decoders validate what the constructors would otherwise `panic` on
//! (grid shapes, matrix dimensions): a wire decoder must reject hostile
//! data, never abort on it.

use crate::codec::{Dec, Enc};
use crate::error::{Result, WireError};
use crate::json::{self, JsonValue, JsonWriter};
use taf_linalg::Matrix;
use taf_plan::{HistoryWindow, MeasurementPlan, PlanEntry, PlanPolicy, SurveyRecord};
use taf_rfsim::geometry::{Point, Segment};
use taf_rfsim::grid::FloorGrid;
use tafloc_core::db::FingerprintDb;
use tafloc_core::loli_ir::{LoliIrConfig, WarmState};
use tafloc_core::matcher::MatchMethod;
use tafloc_core::monitor::MonitorConfig;
use tafloc_core::reference::ReferenceStrategy;
use tafloc_core::system::{ReconstructionGuard, SystemSnapshot, TafLocConfig, ZRefreshPolicy};
use tafloc_core::LrrModel;
use tafloc_ingest::{Aggregator, BatchReport, IngestConfig, IngestStats, LinkSample};

// ---------------------------------------------------------------------------
// Matrix
// ---------------------------------------------------------------------------

/// Writes a matrix as `{"rows":r,"cols":c,"data":[...]}` (derive layout).
pub fn json_write_matrix(w: &mut JsonWriter<'_>, m: &Matrix) {
    w.begin_obj();
    w.key("rows");
    w.usize_val(m.rows());
    w.key("cols");
    w.usize_val(m.cols());
    w.key("data");
    w.f64s_val(m.as_slice());
    w.end_obj();
}

/// Reads a matrix, validating `rows*cols == data.len()`.
pub fn json_read_matrix(v: &JsonValue, ctx: &str) -> Result<Matrix> {
    let rows = json::get_usize(json::field(v, "rows", ctx)?, ctx)?;
    let cols = json::get_usize(json::field(v, "cols", ctx)?, ctx)?;
    let data = json::get_f64s(json::field(v, "data", ctx)?, ctx)?;
    Matrix::from_vec(rows, cols, data).map_err(|e| WireError::Malformed(format!("{ctx}: {e}")))
}

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

fn json_write_point(w: &mut JsonWriter<'_>, p: Point) {
    w.begin_obj();
    w.key("x");
    w.f64_val(p.x);
    w.key("y");
    w.f64_val(p.y);
    w.end_obj();
}

fn json_read_point(v: &JsonValue, ctx: &str) -> Result<Point> {
    let x = json::get_f64(json::field(v, "x", ctx)?, ctx)?;
    let y = json::get_f64(json::field(v, "y", ctx)?, ctx)?;
    Ok(Point::new(x, y))
}

// ---------------------------------------------------------------------------
// Enums (externally tagged, serde convention)
// ---------------------------------------------------------------------------

/// Writes a `ReferenceStrategy` (`"QrPivot"` / `{"Random":{"seed":n}}` / …).
pub fn json_write_ref_strategy(w: &mut JsonWriter<'_>, s: &ReferenceStrategy) {
    match s {
        ReferenceStrategy::QrPivot => w.str_val("QrPivot"),
        ReferenceStrategy::Random { seed } => {
            w.begin_obj();
            w.key("Random");
            w.begin_obj();
            w.key("seed");
            w.u64_val(*seed);
            w.end_obj();
            w.end_obj();
        }
        ReferenceStrategy::LeverageScore => w.str_val("LeverageScore"),
    }
}

/// Reads a `ReferenceStrategy` (variant name or single-key object).
pub fn json_read_ref_strategy(v: &JsonValue, ctx: &str) -> Result<ReferenceStrategy> {
    match v {
        JsonValue::Str(s) => match s.as_str() {
            "QrPivot" => Ok(ReferenceStrategy::QrPivot),
            "LeverageScore" => Ok(ReferenceStrategy::LeverageScore),
            other => Err(WireError::Malformed(format!("{ctx}: unknown variant `{other}`"))),
        },
        JsonValue::Obj(pairs) if pairs.len() == 1 => match pairs[0].0.as_str() {
            "QrPivot" => Ok(ReferenceStrategy::QrPivot),
            "LeverageScore" => Ok(ReferenceStrategy::LeverageScore),
            "Random" => {
                let seed = json::get_u64(json::field(&pairs[0].1, "seed", ctx)?, ctx)?;
                Ok(ReferenceStrategy::Random { seed })
            }
            other => Err(WireError::Malformed(format!("{ctx}: unknown variant `{other}`"))),
        },
        _ => Err(WireError::Malformed(format!("{ctx}: expected a variant"))),
    }
}

/// Writes a `MatchMethod`.
pub fn json_write_matcher(w: &mut JsonWriter<'_>, m: &MatchMethod) {
    match m {
        MatchMethod::NearestNeighbor => w.str_val("NearestNeighbor"),
        MatchMethod::Knn { k } => {
            w.begin_obj();
            w.key("Knn");
            w.begin_obj();
            w.key("k");
            w.usize_val(*k);
            w.end_obj();
            w.end_obj();
        }
        MatchMethod::Probabilistic { sigma_db } => {
            w.begin_obj();
            w.key("Probabilistic");
            w.begin_obj();
            w.key("sigma_db");
            w.f64_val(*sigma_db);
            w.end_obj();
            w.end_obj();
        }
    }
}

/// Reads a `MatchMethod`.
pub fn json_read_matcher(v: &JsonValue, ctx: &str) -> Result<MatchMethod> {
    match v {
        JsonValue::Str(s) => match s.as_str() {
            "NearestNeighbor" => Ok(MatchMethod::NearestNeighbor),
            other => Err(WireError::Malformed(format!("{ctx}: unknown variant `{other}`"))),
        },
        JsonValue::Obj(pairs) if pairs.len() == 1 => match pairs[0].0.as_str() {
            "NearestNeighbor" => Ok(MatchMethod::NearestNeighbor),
            "Knn" => {
                let k = json::get_usize(json::field(&pairs[0].1, "k", ctx)?, ctx)?;
                Ok(MatchMethod::Knn { k })
            }
            "Probabilistic" => {
                let sigma_db = json::get_f64(json::field(&pairs[0].1, "sigma_db", ctx)?, ctx)?;
                Ok(MatchMethod::Probabilistic { sigma_db })
            }
            other => Err(WireError::Malformed(format!("{ctx}: unknown variant `{other}`"))),
        },
        _ => Err(WireError::Malformed(format!("{ctx}: expected a variant"))),
    }
}

/// Writes a `ZRefreshPolicy` (`"Fixed"` / `"RefitAfterUpdate"`).
pub fn json_write_z_policy(w: &mut JsonWriter<'_>, p: &ZRefreshPolicy) {
    match p {
        ZRefreshPolicy::Fixed => w.str_val("Fixed"),
        ZRefreshPolicy::RefitAfterUpdate => w.str_val("RefitAfterUpdate"),
    }
}

/// Reads a `ZRefreshPolicy`.
pub fn json_read_z_policy(v: &JsonValue, ctx: &str) -> Result<ZRefreshPolicy> {
    match json::get_str(v, ctx)? {
        "Fixed" => Ok(ZRefreshPolicy::Fixed),
        "RefitAfterUpdate" => Ok(ZRefreshPolicy::RefitAfterUpdate),
        other => Err(WireError::Malformed(format!("{ctx}: unknown variant `{other}`"))),
    }
}

/// Writes an `Aggregator` (internally tagged: `{"kind":"median"}`).
pub fn json_write_aggregator(w: &mut JsonWriter<'_>, a: &Aggregator) {
    w.begin_obj();
    w.key("kind");
    match a {
        Aggregator::Median => w.str_val("median"),
        Aggregator::Ewma { alpha } => {
            w.str_val("ewma");
            w.key("alpha");
            w.f64_val(*alpha);
        }
    }
    w.end_obj();
}

/// Reads an `Aggregator`.
pub fn json_read_aggregator(v: &JsonValue, ctx: &str) -> Result<Aggregator> {
    let kind = json::get_str(
        v.get("kind").ok_or_else(|| {
            WireError::Malformed(format!("{ctx}: missing or non-string tag `kind`"))
        })?,
        ctx,
    )?;
    match kind {
        "median" => Ok(Aggregator::Median),
        "ewma" => {
            let alpha = json::get_f64(json::field(v, "alpha", ctx)?, ctx)?;
            Ok(Aggregator::Ewma { alpha })
        }
        other => Err(WireError::Malformed(format!("{ctx}: unknown variant `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Configs
// ---------------------------------------------------------------------------

/// Writes a `LoliIrConfig`.
pub fn json_write_loli(w: &mut JsonWriter<'_>, l: &LoliIrConfig) {
    w.begin_obj();
    w.key("rank");
    w.usize_val(l.rank);
    w.key("lambda");
    w.f64_val(l.lambda);
    w.key("mu");
    w.f64_val(l.mu);
    w.key("alpha");
    w.f64_val(l.alpha);
    w.key("beta");
    w.f64_val(l.beta);
    w.key("max_iters");
    w.usize_val(l.max_iters);
    w.key("tol");
    w.f64_val(l.tol);
    w.key("stall_iters");
    w.usize_val(l.stall_iters);
    w.key("accelerate");
    w.bool_val(l.accelerate);
    w.key("debug_bias_db");
    w.f64_val(l.debug_bias_db);
    w.end_obj();
}

/// Reads a `LoliIrConfig` (`debug_bias_db` defaults to 0, `stall_iters` to 1,
/// `accelerate` to false — payloads from before those knobs existed decode to
/// the same behavior they had then).
pub fn json_read_loli(v: &JsonValue, ctx: &str) -> Result<LoliIrConfig> {
    Ok(LoliIrConfig {
        rank: json::get_usize(json::field(v, "rank", ctx)?, ctx)?,
        lambda: json::get_f64(json::field(v, "lambda", ctx)?, ctx)?,
        mu: json::get_f64(json::field(v, "mu", ctx)?, ctx)?,
        alpha: json::get_f64(json::field(v, "alpha", ctx)?, ctx)?,
        beta: json::get_f64(json::field(v, "beta", ctx)?, ctx)?,
        max_iters: json::get_usize(json::field(v, "max_iters", ctx)?, ctx)?,
        tol: json::get_f64(json::field(v, "tol", ctx)?, ctx)?,
        debug_bias_db: match v.get("debug_bias_db") {
            Some(x) => json::get_f64(x, ctx)?,
            None => 0.0,
        },
        stall_iters: match v.get("stall_iters") {
            Some(x) => json::get_usize(x, ctx)?,
            None => 1,
        },
        accelerate: match v.get("accelerate") {
            Some(x) => json::get_bool(x, ctx)?,
            None => false,
        },
    })
}

/// Writes a `TafLocConfig`.
pub fn json_write_config(w: &mut JsonWriter<'_>, c: &TafLocConfig) {
    w.begin_obj();
    w.key("ref_count");
    w.usize_val(c.ref_count);
    w.key("ref_strategy");
    json_write_ref_strategy(w, &c.ref_strategy);
    w.key("lrr_lambda");
    w.f64_val(c.lrr_lambda);
    w.key("distortion_threshold_db");
    w.f64_val(c.distortion_threshold_db);
    w.key("link_graph_k");
    w.usize_val(c.link_graph_k);
    w.key("loli");
    json_write_loli(w, &c.loli);
    w.key("matcher");
    json_write_matcher(w, &c.matcher);
    w.key("consistency_gate");
    w.bool_val(c.consistency_gate);
    w.key("gate_hi_db");
    w.f64_val(c.gate_hi_db);
    w.key("gate_lo_db");
    w.f64_val(c.gate_lo_db);
    w.key("z_policy");
    json_write_z_policy(w, &c.z_policy);
    w.end_obj();
}

/// Reads a `TafLocConfig` (every field required, as in the derive).
pub fn json_read_config(v: &JsonValue, ctx: &str) -> Result<TafLocConfig> {
    Ok(TafLocConfig {
        ref_count: json::get_usize(json::field(v, "ref_count", ctx)?, ctx)?,
        ref_strategy: json_read_ref_strategy(json::field(v, "ref_strategy", ctx)?, ctx)?,
        lrr_lambda: json::get_f64(json::field(v, "lrr_lambda", ctx)?, ctx)?,
        distortion_threshold_db: json::get_f64(
            json::field(v, "distortion_threshold_db", ctx)?,
            ctx,
        )?,
        link_graph_k: json::get_usize(json::field(v, "link_graph_k", ctx)?, ctx)?,
        loli: json_read_loli(json::field(v, "loli", ctx)?, ctx)?,
        matcher: json_read_matcher(json::field(v, "matcher", ctx)?, ctx)?,
        consistency_gate: json::get_bool(json::field(v, "consistency_gate", ctx)?, ctx)?,
        gate_hi_db: json::get_f64(json::field(v, "gate_hi_db", ctx)?, ctx)?,
        gate_lo_db: json::get_f64(json::field(v, "gate_lo_db", ctx)?, ctx)?,
        z_policy: json_read_z_policy(json::field(v, "z_policy", ctx)?, ctx)?,
    })
}

/// Writes a `MonitorConfig`.
pub fn json_write_monitor_config(w: &mut JsonWriter<'_>, c: &MonitorConfig) {
    w.begin_obj();
    w.key("error_threshold_db");
    w.f64_val(c.error_threshold_db);
    w.key("min_interval_days");
    w.f64_val(c.min_interval_days);
    w.end_obj();
}

/// Reads a `MonitorConfig`.
pub fn json_read_monitor_config(v: &JsonValue, ctx: &str) -> Result<MonitorConfig> {
    Ok(MonitorConfig {
        error_threshold_db: json::get_f64(json::field(v, "error_threshold_db", ctx)?, ctx)?,
        min_interval_days: json::get_f64(json::field(v, "min_interval_days", ctx)?, ctx)?,
    })
}

/// Writes a `ReconstructionGuard`.
pub fn json_write_guard(w: &mut JsonWriter<'_>, g: &ReconstructionGuard) {
    w.begin_obj();
    w.key("max_ref_rmse_db");
    w.f64_val(g.max_ref_rmse_db);
    w.key("max_mean_delta_db");
    w.f64_val(g.max_mean_delta_db);
    w.end_obj();
}

/// Reads a `ReconstructionGuard` (both fields have serde defaults).
pub fn json_read_guard(v: &JsonValue, ctx: &str) -> Result<ReconstructionGuard> {
    let dflt = ReconstructionGuard::default();
    Ok(ReconstructionGuard {
        max_ref_rmse_db: match v.get("max_ref_rmse_db") {
            Some(x) => json::get_f64(x, ctx)?,
            None => dflt.max_ref_rmse_db,
        },
        max_mean_delta_db: match v.get("max_mean_delta_db") {
            Some(x) => json::get_f64(x, ctx)?,
            None => dflt.max_mean_delta_db,
        },
    })
}

/// Writes an `IngestConfig`.
pub fn json_write_ingest_config(w: &mut JsonWriter<'_>, c: &IngestConfig) {
    w.begin_obj();
    w.key("window_capacity");
    w.usize_val(c.window_capacity);
    w.key("window_s");
    w.f64_val(c.window_s);
    w.key("min_samples");
    w.usize_val(c.min_samples);
    w.key("stale_after_s");
    w.f64_val(c.stale_after_s);
    w.key("hampel_k");
    w.f64_val(c.hampel_k);
    w.key("hampel_floor_db");
    w.f64_val(c.hampel_floor_db);
    w.key("aggregator");
    json_write_aggregator(w, &c.aggregator);
    w.end_obj();
}

/// Reads an `IngestConfig` (every field defaults, as in the derive).
pub fn json_read_ingest_config(v: &JsonValue, ctx: &str) -> Result<IngestConfig> {
    let dflt = IngestConfig::default();
    Ok(IngestConfig {
        window_capacity: match v.get("window_capacity") {
            Some(x) => json::get_usize(x, ctx)?,
            None => dflt.window_capacity,
        },
        window_s: match v.get("window_s") {
            Some(x) => json::get_f64(x, ctx)?,
            None => dflt.window_s,
        },
        min_samples: match v.get("min_samples") {
            Some(x) => json::get_usize(x, ctx)?,
            None => dflt.min_samples,
        },
        stale_after_s: match v.get("stale_after_s") {
            Some(x) => json::get_f64(x, ctx)?,
            None => dflt.stale_after_s,
        },
        hampel_k: match v.get("hampel_k") {
            Some(x) => json::get_f64(x, ctx)?,
            None => dflt.hampel_k,
        },
        hampel_floor_db: match v.get("hampel_floor_db") {
            Some(x) => json::get_f64(x, ctx)?,
            None => dflt.hampel_floor_db,
        },
        aggregator: match v.get("aggregator") {
            Some(x) => json_read_aggregator(x, ctx)?,
            None => Aggregator::default(),
        },
    })
}

// ---------------------------------------------------------------------------
// Fingerprint database / LRR / snapshot
// ---------------------------------------------------------------------------

/// Writes a `FingerprintDb` (derive layout: `rss`, `links`, `grid`).
pub fn json_write_db(w: &mut JsonWriter<'_>, db: &FingerprintDb) {
    w.begin_obj();
    w.key("rss");
    json_write_matrix(w, db.rss());
    w.key("links");
    w.begin_arr();
    for s in db.links() {
        w.begin_obj();
        w.key("a");
        json_write_point(w, s.a);
        w.key("b");
        json_write_point(w, s.b);
        w.end_obj();
    }
    w.end_arr();
    let grid = db.grid();
    w.key("grid");
    w.begin_obj();
    w.key("origin");
    json_write_point(w, grid.origin());
    w.key("cell_size");
    w.f64_val(grid.cell_size());
    w.key("nx");
    w.usize_val(grid.nx());
    w.key("ny");
    w.usize_val(grid.ny());
    w.end_obj();
    w.end_obj();
}

/// Reads a `FingerprintDb`, validating grid and matrix consistency (the
/// constructors panic on bad shapes; a decoder must error instead).
pub fn json_read_db(v: &JsonValue, ctx: &str) -> Result<FingerprintDb> {
    let rss = json_read_matrix(json::field(v, "rss", ctx)?, ctx)?;
    let links_v = json::get_arr(json::field(v, "links", ctx)?, ctx)?;
    let mut links = Vec::with_capacity(links_v.len());
    for lv in links_v {
        let a = json_read_point(json::field(lv, "a", ctx)?, ctx)?;
        let b = json_read_point(json::field(lv, "b", ctx)?, ctx)?;
        links.push(Segment::new(a, b));
    }
    let gv = json::field(v, "grid", ctx)?;
    let origin = json_read_point(json::field(gv, "origin", ctx)?, ctx)?;
    let cell_size = json::get_f64(json::field(gv, "cell_size", ctx)?, ctx)?;
    let nx = json::get_usize(json::field(gv, "nx", ctx)?, ctx)?;
    let ny = json::get_usize(json::field(gv, "ny", ctx)?, ctx)?;
    if cell_size <= 0.0 || !cell_size.is_finite() || nx == 0 || ny == 0 {
        return Err(WireError::Malformed(format!(
            "{ctx}: invalid grid: cell_size {cell_size}, {nx}x{ny} cells"
        )));
    }
    let grid = FloorGrid::new(origin, cell_size, nx, ny);
    FingerprintDb::new(rss, links, grid).map_err(|e| WireError::Malformed(format!("{ctx}: {e}")))
}

/// Writes an `LrrModel` (derive layout: `ref_cells`, `z`, `lambda`).
pub fn json_write_lrr(w: &mut JsonWriter<'_>, lrr: &LrrModel) {
    w.begin_obj();
    w.key("ref_cells");
    w.usizes_val(lrr.ref_cells());
    w.key("z");
    json_write_matrix(w, lrr.z());
    w.key("lambda");
    w.f64_val(lrr.lambda());
    w.end_obj();
}

/// Reads an `LrrModel` through `from_parts` (shape-validated).
pub fn json_read_lrr(v: &JsonValue, ctx: &str) -> Result<LrrModel> {
    let ref_cells = json::get_usizes(json::field(v, "ref_cells", ctx)?, ctx)?;
    let z = json_read_matrix(json::field(v, "z", ctx)?, ctx)?;
    let lambda = json::get_f64(json::field(v, "lambda", ctx)?, ctx)?;
    LrrModel::from_parts(ref_cells, z, lambda)
        .map_err(|e| WireError::Malformed(format!("{ctx}: {e}")))
}

/// Writes a full `SystemSnapshot`.
pub fn json_write_snapshot(w: &mut JsonWriter<'_>, s: &SystemSnapshot) {
    w.begin_obj();
    w.key("config");
    json_write_config(w, &s.config);
    w.key("db");
    json_write_db(w, &s.db);
    w.key("ref_cells");
    w.usizes_val(&s.ref_cells);
    w.key("lrr");
    json_write_lrr(w, &s.lrr);
    w.key("empty_rss");
    w.f64s_val(&s.empty_rss);
    w.end_obj();
}

/// Reads a full `SystemSnapshot`.
pub fn json_read_snapshot(v: &JsonValue, ctx: &str) -> Result<SystemSnapshot> {
    Ok(SystemSnapshot {
        config: json_read_config(json::field(v, "config", ctx)?, ctx)?,
        db: json_read_db(json::field(v, "db", ctx)?, ctx)?,
        ref_cells: json::get_usizes(json::field(v, "ref_cells", ctx)?, ctx)?,
        lrr: json_read_lrr(json::field(v, "lrr", ctx)?, ctx)?,
        empty_rss: json::get_f64s(json::field(v, "empty_rss", ctx)?, ctx)?,
    })
}

// ---------------------------------------------------------------------------
// Ingest wire types
// ---------------------------------------------------------------------------

/// Writes a `LinkSample`.
pub fn json_write_link_sample(w: &mut JsonWriter<'_>, s: &LinkSample) {
    w.begin_obj();
    w.key("link");
    w.usize_val(s.link);
    w.key("t_s");
    w.f64_val(s.t_s);
    w.key("rss_dbm");
    w.f64_val(s.rss_dbm);
    w.end_obj();
}

/// Reads a `LinkSample`.
pub fn json_read_link_sample(v: &JsonValue, ctx: &str) -> Result<LinkSample> {
    Ok(LinkSample {
        link: json::get_usize(json::field(v, "link", ctx)?, ctx)?,
        t_s: json::get_f64(json::field(v, "t_s", ctx)?, ctx)?,
        rss_dbm: json::get_f64(json::field(v, "rss_dbm", ctx)?, ctx)?,
    })
}

/// Writes a `BatchReport`.
pub fn json_write_batch_report(w: &mut JsonWriter<'_>, r: &BatchReport) {
    w.begin_obj();
    w.key("accepted");
    w.u64_val(r.accepted);
    w.key("dropped_late");
    w.u64_val(r.dropped_late);
    w.key("dropped_unknown_link");
    w.u64_val(r.dropped_unknown_link);
    w.key("dropped_non_finite");
    w.u64_val(r.dropped_non_finite);
    w.end_obj();
}

/// Reads a `BatchReport`.
pub fn json_read_batch_report(v: &JsonValue, ctx: &str) -> Result<BatchReport> {
    Ok(BatchReport {
        accepted: json::get_u64(json::field(v, "accepted", ctx)?, ctx)?,
        dropped_late: json::get_u64(json::field(v, "dropped_late", ctx)?, ctx)?,
        dropped_unknown_link: json::get_u64(json::field(v, "dropped_unknown_link", ctx)?, ctx)?,
        dropped_non_finite: json::get_u64(json::field(v, "dropped_non_finite", ctx)?, ctx)?,
    })
}

/// Writes an `IngestStats`.
pub fn json_write_ingest_stats(w: &mut JsonWriter<'_>, s: &IngestStats) {
    w.begin_obj();
    w.key("accepted");
    w.u64_val(s.accepted);
    w.key("dropped_late");
    w.u64_val(s.dropped_late);
    w.key("dropped_unknown_link");
    w.u64_val(s.dropped_unknown_link);
    w.key("dropped_non_finite");
    w.u64_val(s.dropped_non_finite);
    w.key("dropped_queue_batches");
    w.u64_val(s.dropped_queue_batches);
    w.key("dropped_queue_samples");
    w.u64_val(s.dropped_queue_samples);
    w.key("rejected_outliers");
    w.u64_val(s.rejected_outliers);
    w.key("link_flaps");
    w.u64_val(s.link_flaps);
    w.key("live_links");
    w.usize_val(s.live_links);
    w.key("stale_links");
    w.usize_val(s.stale_links);
    w.key("dead_links");
    w.usize_val(s.dead_links);
    w.key("assemblies");
    w.u64_val(s.assemblies);
    w.end_obj();
}

/// Reads an `IngestStats`.
pub fn json_read_ingest_stats(v: &JsonValue, ctx: &str) -> Result<IngestStats> {
    Ok(IngestStats {
        accepted: json::get_u64(json::field(v, "accepted", ctx)?, ctx)?,
        dropped_late: json::get_u64(json::field(v, "dropped_late", ctx)?, ctx)?,
        dropped_unknown_link: json::get_u64(json::field(v, "dropped_unknown_link", ctx)?, ctx)?,
        dropped_non_finite: json::get_u64(json::field(v, "dropped_non_finite", ctx)?, ctx)?,
        dropped_queue_batches: json::get_u64(json::field(v, "dropped_queue_batches", ctx)?, ctx)?,
        dropped_queue_samples: json::get_u64(json::field(v, "dropped_queue_samples", ctx)?, ctx)?,
        rejected_outliers: json::get_u64(json::field(v, "rejected_outliers", ctx)?, ctx)?,
        link_flaps: json::get_u64(json::field(v, "link_flaps", ctx)?, ctx)?,
        live_links: json::get_usize(json::field(v, "live_links", ctx)?, ctx)?,
        stale_links: json::get_usize(json::field(v, "stale_links", ctx)?, ctx)?,
        dead_links: json::get_usize(json::field(v, "dead_links", ctx)?, ctx)?,
        assemblies: json::get_u64(json::field(v, "assemblies", ctx)?, ctx)?,
    })
}

// ---------------------------------------------------------------------------
// Binary (v2 / snapshot-store) codecs
// ---------------------------------------------------------------------------

/// Binary-encodes a `ReferenceStrategy`.
pub fn enc_ref_strategy(e: &mut Enc, s: &ReferenceStrategy) {
    match s {
        ReferenceStrategy::QrPivot => e.u8(0),
        ReferenceStrategy::Random { seed } => {
            e.u8(1);
            e.u64(*seed);
        }
        ReferenceStrategy::LeverageScore => e.u8(2),
    }
}

/// Binary-decodes a `ReferenceStrategy`.
pub fn dec_ref_strategy(d: &mut Dec<'_>) -> Result<ReferenceStrategy> {
    Ok(match d.u8()? {
        0 => ReferenceStrategy::QrPivot,
        1 => ReferenceStrategy::Random { seed: d.u64()? },
        2 => ReferenceStrategy::LeverageScore,
        v => return Err(WireError::Malformed(format!("unknown reference strategy tag {v}"))),
    })
}

/// Binary-encodes a `MatchMethod`.
pub fn enc_matcher(e: &mut Enc, m: &MatchMethod) {
    match m {
        MatchMethod::NearestNeighbor => e.u8(0),
        MatchMethod::Knn { k } => {
            e.u8(1);
            e.usize(*k);
        }
        MatchMethod::Probabilistic { sigma_db } => {
            e.u8(2);
            e.f64(*sigma_db);
        }
    }
}

/// Binary-decodes a `MatchMethod`.
pub fn dec_matcher(d: &mut Dec<'_>) -> Result<MatchMethod> {
    Ok(match d.u8()? {
        0 => MatchMethod::NearestNeighbor,
        1 => MatchMethod::Knn { k: d.usize()? },
        2 => MatchMethod::Probabilistic { sigma_db: d.f64()? },
        v => return Err(WireError::Malformed(format!("unknown matcher tag {v}"))),
    })
}

/// Binary-encodes a `LoliIrConfig`.
pub fn enc_loli(e: &mut Enc, l: &LoliIrConfig) {
    e.usize(l.rank);
    e.f64(l.lambda);
    e.f64(l.mu);
    e.f64(l.alpha);
    e.f64(l.beta);
    e.usize(l.max_iters);
    e.f64(l.tol);
    e.usize(l.stall_iters);
    e.bool(l.accelerate);
    e.f64(l.debug_bias_db);
}

/// Binary-decodes a `LoliIrConfig`.
pub fn dec_loli(d: &mut Dec<'_>) -> Result<LoliIrConfig> {
    Ok(LoliIrConfig {
        rank: d.usize()?,
        lambda: d.f64()?,
        mu: d.f64()?,
        alpha: d.f64()?,
        beta: d.f64()?,
        max_iters: d.usize()?,
        tol: d.f64()?,
        stall_iters: d.usize()?,
        accelerate: d.bool()?,
        debug_bias_db: d.f64()?,
    })
}

/// Binary-encodes a `TafLocConfig`.
pub fn enc_config(e: &mut Enc, c: &TafLocConfig) {
    e.usize(c.ref_count);
    enc_ref_strategy(e, &c.ref_strategy);
    e.f64(c.lrr_lambda);
    e.f64(c.distortion_threshold_db);
    e.usize(c.link_graph_k);
    enc_loli(e, &c.loli);
    enc_matcher(e, &c.matcher);
    e.bool(c.consistency_gate);
    e.f64(c.gate_hi_db);
    e.f64(c.gate_lo_db);
    e.u8(match c.z_policy {
        ZRefreshPolicy::Fixed => 0,
        ZRefreshPolicy::RefitAfterUpdate => 1,
    });
}

/// Binary-decodes a `TafLocConfig`.
pub fn dec_config(d: &mut Dec<'_>) -> Result<TafLocConfig> {
    Ok(TafLocConfig {
        ref_count: d.usize()?,
        ref_strategy: dec_ref_strategy(d)?,
        lrr_lambda: d.f64()?,
        distortion_threshold_db: d.f64()?,
        link_graph_k: d.usize()?,
        loli: dec_loli(d)?,
        matcher: dec_matcher(d)?,
        consistency_gate: d.bool()?,
        gate_hi_db: d.f64()?,
        gate_lo_db: d.f64()?,
        z_policy: match d.u8()? {
            0 => ZRefreshPolicy::Fixed,
            1 => ZRefreshPolicy::RefitAfterUpdate,
            v => return Err(WireError::Malformed(format!("unknown z-policy tag {v}"))),
        },
    })
}

/// Binary-encodes a `MonitorConfig`.
pub fn enc_monitor_config(e: &mut Enc, c: &MonitorConfig) {
    e.f64(c.error_threshold_db);
    e.f64(c.min_interval_days);
}

/// Binary-decodes a `MonitorConfig`.
pub fn dec_monitor_config(d: &mut Dec<'_>) -> Result<MonitorConfig> {
    Ok(MonitorConfig { error_threshold_db: d.f64()?, min_interval_days: d.f64()? })
}

/// Binary-encodes a `ReconstructionGuard`.
pub fn enc_guard(e: &mut Enc, g: &ReconstructionGuard) {
    e.f64(g.max_ref_rmse_db);
    e.f64(g.max_mean_delta_db);
}

/// Binary-decodes a `ReconstructionGuard`.
pub fn dec_guard(d: &mut Dec<'_>) -> Result<ReconstructionGuard> {
    Ok(ReconstructionGuard { max_ref_rmse_db: d.f64()?, max_mean_delta_db: d.f64()? })
}

/// Binary-encodes an `IngestConfig`.
pub fn enc_ingest_config(e: &mut Enc, c: &IngestConfig) {
    e.usize(c.window_capacity);
    e.f64(c.window_s);
    e.usize(c.min_samples);
    e.f64(c.stale_after_s);
    e.f64(c.hampel_k);
    e.f64(c.hampel_floor_db);
    match c.aggregator {
        Aggregator::Median => e.u8(0),
        Aggregator::Ewma { alpha } => {
            e.u8(1);
            e.f64(alpha);
        }
    }
}

/// Binary-decodes an `IngestConfig`.
pub fn dec_ingest_config(d: &mut Dec<'_>) -> Result<IngestConfig> {
    Ok(IngestConfig {
        window_capacity: d.usize()?,
        window_s: d.f64()?,
        min_samples: d.usize()?,
        stale_after_s: d.f64()?,
        hampel_k: d.f64()?,
        hampel_floor_db: d.f64()?,
        aggregator: match d.u8()? {
            0 => Aggregator::Median,
            1 => Aggregator::Ewma { alpha: d.f64()? },
            v => return Err(WireError::Malformed(format!("unknown aggregator tag {v}"))),
        },
    })
}

/// Binary-encodes a `FingerprintDb` (matrix-aware: the RSS grid goes out as
/// one shape-prefixed block, links as packed coordinate quads).
pub fn enc_db(e: &mut Enc, db: &FingerprintDb) {
    e.matrix(db.rss());
    e.usize(db.links().len());
    for s in db.links() {
        e.f64(s.a.x);
        e.f64(s.a.y);
        e.f64(s.b.x);
        e.f64(s.b.y);
    }
    let grid = db.grid();
    let origin = grid.origin();
    e.f64(origin.x);
    e.f64(origin.y);
    e.f64(grid.cell_size());
    e.usize(grid.nx());
    e.usize(grid.ny());
}

/// Binary-decodes a `FingerprintDb`, validating grid and matrix shapes.
pub fn dec_db(d: &mut Dec<'_>) -> Result<FingerprintDb> {
    let rss = d.matrix()?;
    let n_links = d.count()?;
    let mut links = Vec::with_capacity(n_links);
    for _ in 0..n_links {
        let a = Point::new(d.f64()?, d.f64()?);
        let b = Point::new(d.f64()?, d.f64()?);
        links.push(Segment::new(a, b));
    }
    let origin = Point::new(d.f64()?, d.f64()?);
    let cell_size = d.f64()?;
    let nx = d.usize()?;
    let ny = d.usize()?;
    // FloorGrid::new treats these as programming errors and panics; a decoder
    // must reject them as data errors instead.
    if cell_size <= 0.0 || !cell_size.is_finite() || nx == 0 || ny == 0 {
        return Err(WireError::Malformed(format!(
            "invalid grid: cell_size {cell_size}, {nx}x{ny} cells"
        )));
    }
    let grid = FloorGrid::new(origin, cell_size, nx, ny);
    FingerprintDb::new(rss, links, grid).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Binary-encodes a full `SystemSnapshot`. This exact field sequence is also
/// the snapshot store's on-disk layout — the store delegates here.
pub fn enc_snapshot(e: &mut Enc, s: &SystemSnapshot) {
    enc_config(e, &s.config);
    enc_db(e, &s.db);
    e.usizes(&s.ref_cells);
    e.usizes(s.lrr.ref_cells());
    e.matrix(s.lrr.z());
    e.f64(s.lrr.lambda());
    e.f64s(&s.empty_rss);
}

/// Binary-decodes a full `SystemSnapshot`.
pub fn dec_snapshot(d: &mut Dec<'_>) -> Result<SystemSnapshot> {
    let config = dec_config(d)?;
    let db = dec_db(d)?;
    let ref_cells = d.usizes()?;
    let lrr_cells = d.usizes()?;
    let z = d.matrix()?;
    let lambda = d.f64()?;
    let lrr = LrrModel::from_parts(lrr_cells, z, lambda)
        .map_err(|e| WireError::Malformed(e.to_string()))?;
    let empty_rss = d.f64s()?;
    Ok(SystemSnapshot { config, db, ref_cells, lrr, empty_rss })
}

/// Binary-encodes a `LinkSample`.
pub fn enc_link_sample(e: &mut Enc, s: &LinkSample) {
    e.usize(s.link);
    e.f64(s.t_s);
    e.f64(s.rss_dbm);
}

/// Binary-decodes a `LinkSample`.
pub fn dec_link_sample(d: &mut Dec<'_>) -> Result<LinkSample> {
    Ok(LinkSample { link: d.usize()?, t_s: d.f64()?, rss_dbm: d.f64()? })
}

/// Binary-encodes a `BatchReport`.
pub fn enc_batch_report(e: &mut Enc, r: &BatchReport) {
    e.u64(r.accepted);
    e.u64(r.dropped_late);
    e.u64(r.dropped_unknown_link);
    e.u64(r.dropped_non_finite);
}

/// Binary-decodes a `BatchReport`.
pub fn dec_batch_report(d: &mut Dec<'_>) -> Result<BatchReport> {
    Ok(BatchReport {
        accepted: d.u64()?,
        dropped_late: d.u64()?,
        dropped_unknown_link: d.u64()?,
        dropped_non_finite: d.u64()?,
    })
}

/// Binary-encodes an `IngestStats`.
pub fn enc_ingest_stats(e: &mut Enc, s: &IngestStats) {
    e.u64(s.accepted);
    e.u64(s.dropped_late);
    e.u64(s.dropped_unknown_link);
    e.u64(s.dropped_non_finite);
    e.u64(s.dropped_queue_batches);
    e.u64(s.dropped_queue_samples);
    e.u64(s.rejected_outliers);
    e.u64(s.link_flaps);
    e.usize(s.live_links);
    e.usize(s.stale_links);
    e.usize(s.dead_links);
    e.u64(s.assemblies);
}

/// Binary-decodes an `IngestStats`.
pub fn dec_ingest_stats(d: &mut Dec<'_>) -> Result<IngestStats> {
    Ok(IngestStats {
        accepted: d.u64()?,
        dropped_late: d.u64()?,
        dropped_unknown_link: d.u64()?,
        dropped_non_finite: d.u64()?,
        dropped_queue_batches: d.u64()?,
        dropped_queue_samples: d.u64()?,
        rejected_outliers: d.u64()?,
        link_flaps: d.u64()?,
        live_links: d.usize()?,
        stale_links: d.usize()?,
        dead_links: d.usize()?,
        assemblies: d.u64()?,
    })
}

// ---------------------------------------------------------------------------
// Planner state + solver warm state (binary only — these records only ever
// live inside the snapshot store's versioned payload, never on the client
// wire, so there is no JSON form to stay byte-compatible with)
// ---------------------------------------------------------------------------

/// Binary-encodes a `PlanPolicy`.
pub fn enc_plan_policy(e: &mut Enc, p: PlanPolicy) {
    e.u8(match p {
        PlanPolicy::UncertaintyGreedy => 0,
        PlanPolicy::FixedSchedule => 1,
    });
}

/// Binary-decodes a `PlanPolicy`.
pub fn dec_plan_policy(d: &mut Dec<'_>) -> Result<PlanPolicy> {
    Ok(match d.u8()? {
        0 => PlanPolicy::UncertaintyGreedy,
        1 => PlanPolicy::FixedSchedule,
        v => return Err(WireError::Malformed(format!("unknown plan policy tag {v}"))),
    })
}

/// Binary-encodes a `MeasurementPlan` (the schedule position a restarted
/// daemon resumes from).
pub fn enc_measurement_plan(e: &mut Enc, p: &MeasurementPlan) {
    e.u64(p.epoch);
    enc_plan_policy(e, p.policy);
    e.usize(p.entries.len());
    for entry in &p.entries {
        e.usize(entry.ref_slot);
        e.usizes(&entry.links);
    }
    e.usize(p.planned_cost);
    e.usize(p.full_cost);
}

/// Binary-decodes a `MeasurementPlan`.
pub fn dec_measurement_plan(d: &mut Dec<'_>) -> Result<MeasurementPlan> {
    let epoch = d.u64()?;
    let policy = dec_plan_policy(d)?;
    let n = d.count()?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(PlanEntry { ref_slot: d.usize()?, links: d.usizes()? });
    }
    // `links_for` binary-searches the entries; a payload that lost the sort
    // order would silently mis-answer, so reject it here.
    if entries.windows(2).any(|w| w[0].ref_slot >= w[1].ref_slot) {
        return Err(WireError::malformed("plan entries not sorted by ref_slot"));
    }
    Ok(MeasurementPlan { epoch, policy, entries, planned_cost: d.usize()?, full_cost: d.usize()? })
}

/// Binary-encodes one retained `SurveyRecord`.
pub fn enc_survey_record(e: &mut Enc, r: &SurveyRecord) {
    e.u64(r.epoch);
    e.f64s(&r.y);
    e.usize(r.fresh.len());
    for &f in &r.fresh {
        e.bool(f);
    }
}

/// Binary-decodes one `SurveyRecord`.
pub fn dec_survey_record(d: &mut Dec<'_>) -> Result<SurveyRecord> {
    let epoch = d.u64()?;
    let y = d.f64s()?;
    let n = d.count()?;
    let mut fresh = Vec::with_capacity(n);
    for _ in 0..n {
        fresh.push(d.bool()?);
    }
    Ok(SurveyRecord { epoch, y, fresh })
}

/// Binary-encodes a full `HistoryWindow`: shape, then each slot's retained
/// records oldest-first (the order [`dec_history`] replays them in).
pub fn enc_history(e: &mut Enc, h: &HistoryWindow) {
    e.usize(h.n_slots());
    e.usize(h.n_links());
    e.usize(h.depth());
    for slot in 0..h.n_slots() {
        let records: Vec<&SurveyRecord> = h.records(slot).collect();
        e.usize(records.len());
        for r in records {
            enc_survey_record(e, r);
        }
    }
}

/// Binary-decodes a `HistoryWindow` by replaying each record through
/// [`HistoryWindow::record`], so every shape invariant the live path enforces
/// also holds for recovered state.
pub fn dec_history(d: &mut Dec<'_>) -> Result<HistoryWindow> {
    let n_slots = d.usize()?;
    let n_links = d.usize()?;
    let depth = d.usize()?;
    let mut h = HistoryWindow::new(n_slots, n_links, depth)
        .map_err(|e| WireError::Malformed(format!("history window: {e}")))?;
    for slot in 0..n_slots {
        let n = d.count()?;
        for _ in 0..n {
            let rec = dec_survey_record(d)?;
            h.record(slot, rec)
                .map_err(|e| WireError::Malformed(format!("history slot {slot}: {e}")))?;
        }
    }
    Ok(h)
}

/// Binary-encodes a solver `WarmState` (the accepted factor pair).
pub fn enc_warm_state(e: &mut Enc, w: &WarmState) {
    e.matrix(w.l());
    e.matrix(w.r());
}

/// Binary-decodes a `WarmState`, rejecting factor pairs no solve could have
/// produced (rank mismatch, non-finite entries).
pub fn dec_warm_state(d: &mut Dec<'_>) -> Result<WarmState> {
    let l = d.matrix()?;
    let r = d.matrix()?;
    WarmState::from_parts(l, r)
        .ok_or_else(|| WireError::malformed("warm state: mismatched ranks or non-finite factors"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_snapshot() -> SystemSnapshot {
        let rss = Matrix::from_fn(4, 6, |i, j| -40.0 - (i * 6 + j) as f64 * 0.25);
        let links = vec![
            Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 0.0)),
            Segment::new(Point::new(0.0, 2.0), Point::new(3.0, 2.0)),
            Segment::new(Point::new(0.0, 0.0), Point::new(0.0, 2.0)),
            Segment::new(Point::new(3.0, 0.0), Point::new(3.0, 2.0)),
        ];
        let grid = FloorGrid::new(Point::new(0.5, 0.5), 1.0, 3, 2);
        let db = FingerprintDb::new(rss, links, grid).unwrap();
        let z = Matrix::from_fn(2, 6, |i, j| 0.1 * (i + 1) as f64 + 0.01 * j as f64);
        let lrr = LrrModel::from_parts(vec![1, 4], z, 1e-3).unwrap();
        SystemSnapshot {
            config: TafLocConfig {
                ref_count: 2,
                ref_strategy: ReferenceStrategy::Random { seed: 7 },
                matcher: MatchMethod::Probabilistic { sigma_db: 2.5 },
                ..TafLocConfig::default()
            },
            db,
            ref_cells: vec![1, 4],
            lrr,
            empty_rss: vec![-40.0, -41.0, -42.0, -43.0],
        }
    }

    #[test]
    fn snapshot_round_trips_in_json() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        let mut w = JsonWriter::new(&mut buf);
        json_write_snapshot(&mut w, &snap);
        let text = String::from_utf8(buf.clone()).unwrap();
        let back = json_read_snapshot(&parse(&text).unwrap(), "SystemSnapshot").unwrap();
        // Re-encode: byte equality is the strongest cheap equivalence.
        let mut buf2 = Vec::new();
        let mut w2 = JsonWriter::new(&mut buf2);
        json_write_snapshot(&mut w2, &back);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn snapshot_round_trips_in_binary() {
        let snap = sample_snapshot();
        let mut e = Enc::new();
        enc_snapshot(&mut e, &snap);
        let bytes = e.into_inner();
        let mut d = Dec::new(&bytes);
        let back = dec_snapshot(&mut d).unwrap();
        d.finish().unwrap();
        let mut e2 = Enc::new();
        enc_snapshot(&mut e2, &back);
        assert_eq!(bytes, e2.into_inner());
    }

    #[test]
    fn configs_with_defaults_fill_in_like_serde() {
        let cfg = json_read_ingest_config(&parse("{}").unwrap(), "IngestConfig").unwrap();
        assert_eq!(cfg, IngestConfig::default());
        let cfg = json_read_ingest_config(
            &parse(r#"{"aggregator":{"kind":"ewma","alpha":0.2}}"#).unwrap(),
            "IngestConfig",
        )
        .unwrap();
        assert_eq!(cfg.aggregator, Aggregator::Ewma { alpha: 0.2 });
        let g = json_read_guard(&parse("{}").unwrap(), "ReconstructionGuard").unwrap();
        assert_eq!(g, ReconstructionGuard::default());
    }

    #[test]
    fn enum_variants_round_trip_in_both_shapes() {
        for s in [
            ReferenceStrategy::QrPivot,
            ReferenceStrategy::Random { seed: 99 },
            ReferenceStrategy::LeverageScore,
        ] {
            let mut buf = Vec::new();
            let mut w = JsonWriter::new(&mut buf);
            json_write_ref_strategy(&mut w, &s);
            let text = String::from_utf8(buf).unwrap();
            let back = json_read_ref_strategy(&parse(&text).unwrap(), "T").unwrap();
            assert_eq!(s, back, "json round trip via {text}");
            let mut e = Enc::new();
            enc_ref_strategy(&mut e, &s);
            let bytes = e.into_inner();
            assert_eq!(dec_ref_strategy(&mut Dec::new(&bytes)).unwrap(), s);
        }
        for m in [
            MatchMethod::NearestNeighbor,
            MatchMethod::Knn { k: 5 },
            MatchMethod::Probabilistic { sigma_db: 0.5 },
        ] {
            let mut buf = Vec::new();
            let mut w = JsonWriter::new(&mut buf);
            json_write_matcher(&mut w, &m);
            let text = String::from_utf8(buf).unwrap();
            assert_eq!(json_read_matcher(&parse(&text).unwrap(), "T").unwrap(), m);
        }
    }

    #[test]
    fn hostile_grid_and_matrix_shapes_error_instead_of_panicking() {
        // Zero-cell grid.
        let bad = r#"{"rss":{"rows":1,"cols":1,"data":[-40]},"links":[{"a":{"x":0,"y":0},"b":{"x":1,"y":0}}],"grid":{"origin":{"x":0,"y":0},"cell_size":0,"nx":1,"ny":1}}"#;
        assert!(json_read_db(&parse(bad).unwrap(), "Db").is_err());
        // Matrix data length mismatch.
        let bad = r#"{"rows":2,"cols":2,"data":[1,2,3]}"#;
        assert!(json_read_matrix(&parse(bad).unwrap(), "M").is_err());
    }

    #[test]
    fn ingest_types_round_trip_both_ways() {
        let s = LinkSample { link: 3, t_s: 12.5, rss_dbm: -51.25 };
        let mut buf = Vec::new();
        let mut w = JsonWriter::new(&mut buf);
        json_write_link_sample(&mut w, &s);
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, r#"{"link":3,"t_s":12.5,"rss_dbm":-51.25}"#);
        assert_eq!(json_read_link_sample(&parse(&text).unwrap(), "LinkSample").unwrap(), s);

        let mut e = Enc::new();
        enc_link_sample(&mut e, &s);
        let bytes = e.into_inner();
        assert_eq!(dec_link_sample(&mut Dec::new(&bytes)).unwrap(), s);

        let stats = IngestStats { accepted: 10, live_links: 4, ..IngestStats::default() };
        let mut e = Enc::new();
        enc_ingest_stats(&mut e, &stats);
        let bytes = e.into_inner();
        assert_eq!(dec_ingest_stats(&mut Dec::new(&bytes)).unwrap(), stats);
    }

    #[test]
    fn plan_state_round_trips_in_binary() {
        let plan = MeasurementPlan {
            epoch: 7,
            policy: PlanPolicy::UncertaintyGreedy,
            entries: vec![
                PlanEntry { ref_slot: 0, links: vec![1, 3, 5] },
                PlanEntry { ref_slot: 2, links: vec![0, 2] },
            ],
            planned_cost: 5,
            full_cost: 12,
        };
        let mut e = Enc::new();
        enc_measurement_plan(&mut e, &plan);
        let bytes = e.into_inner();
        let mut d = Dec::new(&bytes);
        let back = dec_measurement_plan(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.epoch, plan.epoch);
        assert_eq!(back.policy, plan.policy);
        assert_eq!(back.entries, plan.entries);
        assert_eq!(back.planned_cost, plan.planned_cost);
        assert_eq!(back.full_cost, plan.full_cost);
        assert_eq!(back.links_for(2), Some(&[0usize, 2][..]));

        // Unsorted entries must be rejected, not silently mis-served.
        let mut e = Enc::new();
        let shuffled = MeasurementPlan {
            entries: vec![plan.entries[1].clone(), plan.entries[0].clone()],
            ..plan.clone()
        };
        enc_measurement_plan(&mut e, &shuffled);
        let bytes = e.into_inner();
        assert!(dec_measurement_plan(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn history_round_trips_preserving_ring_order() {
        let mut h = HistoryWindow::new(2, 3, 2).unwrap();
        for epoch in 1..=3u64 {
            h.record(
                0,
                SurveyRecord {
                    epoch,
                    y: vec![-40.0 - epoch as f64; 3],
                    fresh: vec![epoch % 2 == 0; 3],
                },
            )
            .unwrap();
        }
        let mut e = Enc::new();
        enc_history(&mut e, &h);
        let bytes = e.into_inner();
        let mut d = Dec::new(&bytes);
        let back = dec_history(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.n_slots(), 2);
        assert_eq!(back.n_links(), 3);
        assert_eq!(back.depth(), 2);
        // Depth 2 means epochs 2 and 3 survive, in that order.
        let records: Vec<_> = back.records(0).cloned().collect();
        assert_eq!(records.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(records[1].y, vec![-43.0; 3]);
        assert!(back.records(1).next().is_none());
        // Re-encode: byte equality proves the replay preserved everything.
        let mut e2 = Enc::new();
        enc_history(&mut e2, &back);
        assert_eq!(bytes, e2.into_inner());
    }

    #[test]
    fn warm_state_round_trips_and_rejects_garbage() {
        let l = Matrix::from_fn(4, 2, |i, j| 0.5 * i as f64 - 0.25 * j as f64);
        let r = Matrix::from_fn(6, 2, |i, j| 0.1 * (i + j) as f64);
        let w = WarmState::from_parts(l.clone(), r.clone()).unwrap();
        let mut e = Enc::new();
        enc_warm_state(&mut e, &w);
        let bytes = e.into_inner();
        let mut d = Dec::new(&bytes);
        let back = dec_warm_state(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.shape(), (4, 6, 2));
        assert_eq!(back.l().as_slice(), l.as_slice());
        assert_eq!(back.r().as_slice(), r.as_slice());

        // A rank-mismatched pair decodes structurally but fails validation.
        let bad_r = Matrix::from_fn(6, 3, |_, _| 0.0);
        let mut e = Enc::new();
        e.matrix(&l);
        e.matrix(&bad_r);
        let bytes = e.into_inner();
        assert!(dec_warm_state(&mut Dec::new(&bytes)).is_err());
        // Non-finite factors are rejected too.
        let nan_l = Matrix::from_fn(4, 2, |_, _| f64::NAN);
        let mut e = Enc::new();
        e.matrix(&nan_l);
        e.matrix(&r);
        let bytes = e.into_inner();
        assert!(dec_warm_state(&mut Dec::new(&bytes)).is_err());
    }
}
