//! # taf-wire
//!
//! The wire format of the TafLoc serving plane, owned end to end with no
//! `serde_json` dependency — so encoding works (and is measurable) under the
//! offline stub build.
//!
//! Two protocols share one crate:
//!
//! * **v1 — NDJSON compat mode.** A zero-alloc streaming JSON writer
//!   ([`json::JsonWriter`]) plus a hand-rolled reader ([`json::parse`])
//!   that reproduce, byte for byte, the frames the serde derives used to
//!   emit: compact JSON, fields in declaration order, `None` as `null`,
//!   non-finite floats as `null`, one message per `\n`-terminated line.
//! * **v2 — length-prefixed binary.** `[0xB2][0x02][uvarint len][payload]
//!   [crc32]` frames ([`frame`]) over the same little-endian codec the
//!   snapshot store persists with ([`codec::Enc`] / [`codec::Dec`]), with
//!   matrix-aware encoding for fingerprint databases and `y` vectors.
//!
//! A server tells them apart per message by sniffing the first byte
//! ([`frame::sniff`]): `0xB2` opens a v2 frame (the byte is not valid UTF-8,
//! so no JSON line can start with it); anything else is handed to the v1
//! line reader.
//!
//! [`types`] holds the domain-type codecs (snapshots, fingerprint
//! databases, configs, ingest reports) in both directions for both
//! protocols; message-level `Request`/`Response` codecs live next to the
//! message types in `tafloc-serve`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod frame;
pub mod json;
pub mod types;

pub use codec::{crc32, Dec, Enc};
pub use error::{Result, WireError};
pub use json::{JsonValue, JsonWriter};
