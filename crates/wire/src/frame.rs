//! v2 binary framing and per-connection version sniffing.
//!
//! A v2 frame on the wire is:
//!
//! ```text
//! +------+------+----------------+--------------------+--------------+
//! | 0xB2 | 0x02 | uvarint len    | payload (len bytes)| crc32 (LE)   |
//! +------+------+----------------+--------------------+--------------+
//!  sniff  version LEB128, <=10 B  tag byte + body      over payload
//! ```
//!
//! `0xB2` is a UTF-8 continuation byte, so no JSON text (which is valid
//! UTF-8) can ever start with it — that single byte is the whole version
//! negotiation: a reader peeks one byte per message and routes to the v1
//! line reader or the v2 frame reader ([`sniff`]). Peers may even switch
//! versions between messages on one connection.
//!
//! Oversized frames are *drained* before the error is reported, so a
//! too-large declared length costs bounded memory and leaves the stream
//! correctly framed for an error reply.

use crate::codec::{crc32, put_uvarint, read_uvarint, MAX_UVARINT_BYTES};
use crate::error::{Result, WireError};
use std::io::{BufRead, Read, Write};

/// First byte of every v2 frame. Deliberately outside ASCII and not a valid
/// UTF-8 leading byte, so v1 (JSON) and v2 traffic cannot be confused.
pub const V2_SNIFF: u8 = 0xB2;

/// Wire version byte following the sniff byte.
pub const V2_VERSION: u8 = 0x02;

/// Cap on a v2 payload, matching the v1 line cap so neither protocol can
/// demand unbounded buffering.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// What the first byte of the next message says about its protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sniff {
    /// Clean end of stream — no more messages.
    Eof,
    /// The next message is a v1 JSON line (nothing consumed).
    V1,
    /// The next message is a v2 frame (the sniff byte was consumed).
    V2,
}

/// Peeks at the next message's first byte without committing to a protocol.
///
/// Returns [`Sniff::V2`] (consuming the sniff byte) when it is [`V2_SNIFF`],
/// [`Sniff::V1`] (consuming nothing) otherwise, and [`Sniff::Eof`] on a
/// clean end of stream.
pub fn sniff<R: BufRead + ?Sized>(r: &mut R) -> std::io::Result<Sniff> {
    let buf = r.fill_buf()?;
    if buf.is_empty() {
        return Ok(Sniff::Eof);
    }
    if buf[0] == V2_SNIFF {
        r.consume(1);
        Ok(Sniff::V2)
    } else {
        Ok(Sniff::V1)
    }
}

/// Writes one complete v2 frame (header, payload, checksum).
///
/// The caller flushes; a client typically batches a frame per request.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, payload: &[u8]) -> Result<()> {
    let mut head = Vec::with_capacity(2 + MAX_UVARINT_BYTES);
    head.push(V2_SNIFF);
    head.push(V2_VERSION);
    put_uvarint(&mut head, payload.len() as u64);
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Reads one v2 frame body into `buf`, assuming the sniff byte was already
/// consumed (by [`sniff`]). On success `buf` holds exactly the payload.
///
/// Error contract, chosen so a server can keep serving whenever possible:
///
/// * [`WireError::BadMagic`] — unknown version byte; **fatal**, the stream
///   cannot be re-framed.
/// * [`WireError::FrameTooLarge`] — declared length above `limit`; the
///   frame (payload + checksum) is drained first, so this is recoverable.
/// * [`WireError::ChecksumMismatch`] — payload corrupt but boundaries
///   intact; recoverable.
/// * [`WireError::Truncated`] — peer hung up mid-frame; fatal.
pub fn read_frame<R: BufRead + ?Sized>(r: &mut R, buf: &mut Vec<u8>, limit: usize) -> Result<()> {
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != V2_VERSION {
        return Err(WireError::BadMagic { got: version[0] });
    }
    let len = read_uvarint(r)?;
    if len > limit as u64 {
        // Drain payload + checksum so the stream stays framed. A declared
        // length the peer never sends just turns into Truncated/Io here.
        let drained = std::io::copy(&mut r.take(len.saturating_add(4)), &mut std::io::sink())
            .map_err(WireError::from)?;
        if drained < len.saturating_add(4) {
            return Err(WireError::Truncated);
        }
        return Err(WireError::FrameTooLarge {
            got: usize::try_from(len).unwrap_or(usize::MAX),
            limit,
        });
    }
    let len = len as usize;
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let stored = u32::from_le_bytes(trailer);
    let computed = crc32(buf);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frame_round_trips_and_sniffs_as_v2() {
        let wire = framed(b"hello wire");
        let mut r = Cursor::new(wire);
        assert_eq!(sniff(&mut r).unwrap(), Sniff::V2);
        let mut buf = Vec::new();
        read_frame(&mut r, &mut buf, MAX_FRAME_BYTES).unwrap();
        assert_eq!(buf, b"hello wire");
        assert_eq!(sniff(&mut r).unwrap(), Sniff::Eof);
    }

    #[test]
    fn json_lines_sniff_as_v1_without_consuming() {
        let mut r = Cursor::new(b"{\"cmd\":\"ping\"}\n".to_vec());
        assert_eq!(sniff(&mut r).unwrap(), Sniff::V1);
        let mut line = String::new();
        std::io::BufRead::read_line(&mut r, &mut line).unwrap();
        assert_eq!(line, "{\"cmd\":\"ping\"}\n");
    }

    #[test]
    fn empty_payload_frames_are_valid() {
        let wire = framed(b"");
        let mut r = Cursor::new(wire);
        assert_eq!(sniff(&mut r).unwrap(), Sniff::V2);
        let mut buf = vec![1, 2, 3];
        read_frame(&mut r, &mut buf, MAX_FRAME_BYTES).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn flipped_payload_bit_is_a_checksum_mismatch_and_keeps_framing() {
        let mut wire = framed(b"abcdef");
        let payload_start = wire.len() - 4 - 6;
        wire[payload_start] ^= 0x01;
        // A healthy frame follows the corrupt one on the same stream.
        wire.extend_from_slice(&framed(b"next"));
        let mut r = Cursor::new(wire);
        assert_eq!(sniff(&mut r).unwrap(), Sniff::V2);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf, MAX_FRAME_BYTES),
            Err(WireError::ChecksumMismatch { .. })
        ));
        assert_eq!(sniff(&mut r).unwrap(), Sniff::V2);
        read_frame(&mut r, &mut buf, MAX_FRAME_BYTES).unwrap();
        assert_eq!(buf, b"next");
    }

    #[test]
    fn unknown_version_byte_is_bad_magic() {
        let mut wire = framed(b"x");
        wire[1] = 0x7F;
        let mut r = Cursor::new(wire);
        assert_eq!(sniff(&mut r).unwrap(), Sniff::V2);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf, MAX_FRAME_BYTES),
            Err(WireError::BadMagic { got: 0x7F })
        ));
    }

    #[test]
    fn oversized_frame_is_drained_so_the_stream_stays_framed() {
        let big = vec![0xAAu8; 100];
        let mut wire = framed(&big);
        wire.extend_from_slice(&framed(b"after"));
        let mut r = Cursor::new(wire);
        assert_eq!(sniff(&mut r).unwrap(), Sniff::V2);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf, 16),
            Err(WireError::FrameTooLarge { got: 100, limit: 16 })
        ));
        // The oversized frame was fully consumed; the next one is intact.
        assert_eq!(sniff(&mut r).unwrap(), Sniff::V2);
        read_frame(&mut r, &mut buf, 16).unwrap();
        assert_eq!(buf, b"after");
    }

    #[test]
    fn truncation_anywhere_reports_truncated_not_a_panic() {
        let wire = framed(b"some payload bytes");
        for cut in 1..wire.len() {
            let mut r = Cursor::new(wire[..cut].to_vec());
            if sniff(&mut r).unwrap() != Sniff::V2 {
                continue;
            }
            let mut buf = Vec::new();
            let err = read_frame(&mut r, &mut buf, MAX_FRAME_BYTES).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated),
                "cut at {cut}: expected Truncated, got {err:?}"
            );
        }
    }

    #[test]
    fn oversized_frame_with_missing_tail_is_truncated() {
        // Declares 1 GiB but sends nothing after the header.
        let mut wire = vec![V2_SNIFF, V2_VERSION];
        put_uvarint(&mut wire, 1 << 30);
        let mut r = Cursor::new(wire);
        assert_eq!(sniff(&mut r).unwrap(), Sniff::V2);
        let mut buf = Vec::new();
        assert!(matches!(read_frame(&mut r, &mut buf, MAX_FRAME_BYTES), Err(WireError::Truncated)));
    }
}
