//! Hand-rolled JSON: a zero-alloc streaming writer and a strict parser.
//!
//! Both sides mirror the serde-stub text layer **byte for byte** so v1
//! frames produced here are indistinguishable from the frames the derived
//! `Serialize` impls used to emit:
//!
//! * compact output — no whitespace;
//! * numbers: integral values with `|n| < 9e15` render via `i64`, anything
//!   else uses Rust's shortest round-tripping float formatting; non-finite
//!   floats render as `null`;
//! * strings escape `"` `\` `\n` `\r` `\t`, other control characters as
//!   `\uXXXX`, and pass everything else through as UTF-8;
//! * the parser is strict (no trailing garbage, no control characters in
//!   strings, depth-capped) and keeps duplicate object keys, with lookups
//!   resolving to the **last** occurrence, as the stub deserializer does.

use crate::error::{Result, WireError};
use std::io::Write as _;

/// Maximum nesting depth; the wire fuzzer feeds arbitrary bytes here and a
/// recursive-descent parser must not blow the stack on `[[[[…`.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON document. Object fields keep their wire order (and any
/// duplicates); [`JsonValue::get`] resolves duplicate keys last-wins.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`, like the stub's `Value::Num`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup, scanning from the back so duplicate keys
    /// resolve to the last occurrence (stub-deserializer parity).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

// ---------------------------------------------------------------------------
// Typed field access (decode helpers)
// ---------------------------------------------------------------------------
//
// These encode the stub deserializer's coercion rules once, so every domain
// codec reads fields the same way: `null` is NaN for floats, integers must
// have no fractional part, `ctx` names the struct/field for error messages.

/// Required object field; `ctx` names the containing type for errors.
pub fn field<'a>(v: &'a JsonValue, name: &str, ctx: &str) -> Result<&'a JsonValue> {
    v.get(name).ok_or_else(|| WireError::Malformed(format!("{ctx}: missing field `{name}`")))
}

/// `f64` with stub parity: a number is itself, `null` is NaN.
pub fn get_f64(v: &JsonValue, ctx: &str) -> Result<f64> {
    match v {
        JsonValue::Num(n) => Ok(*n),
        JsonValue::Null => Ok(f64::NAN),
        _ => Err(WireError::Malformed(format!("{ctx}: expected a number"))),
    }
}

/// Unsigned integer carried as a JSON number; must be integral.
pub fn get_u64(v: &JsonValue, ctx: &str) -> Result<u64> {
    match v {
        // The stub casts with `as`, which saturates; mirror it so anything
        // a stub client encoded decodes to the same value here.
        JsonValue::Num(n) if n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(WireError::Malformed(format!("{ctx}: expected an integer"))),
    }
}

/// `usize` field (stored as a JSON integer).
pub fn get_usize(v: &JsonValue, ctx: &str) -> Result<usize> {
    Ok(get_u64(v, ctx)? as usize)
}

/// `u32` field (stored as a JSON integer).
pub fn get_u32(v: &JsonValue, ctx: &str) -> Result<u32> {
    Ok(get_u64(v, ctx)? as u32)
}

/// `bool` field.
pub fn get_bool(v: &JsonValue, ctx: &str) -> Result<bool> {
    v.as_bool().ok_or_else(|| WireError::Malformed(format!("{ctx}: expected a bool")))
}

/// Borrowed string field.
pub fn get_str<'a>(v: &'a JsonValue, ctx: &str) -> Result<&'a str> {
    v.as_str().ok_or_else(|| WireError::Malformed(format!("{ctx}: expected a string")))
}

/// Owned string field.
pub fn get_string(v: &JsonValue, ctx: &str) -> Result<String> {
    Ok(get_str(v, ctx)?.to_string())
}

/// Array field.
pub fn get_arr<'a>(v: &'a JsonValue, ctx: &str) -> Result<&'a [JsonValue]> {
    v.as_arr().ok_or_else(|| WireError::Malformed(format!("{ctx}: expected an array")))
}

/// `Vec<f64>` from a JSON array (elements follow [`get_f64`] rules).
pub fn get_f64s(v: &JsonValue, ctx: &str) -> Result<Vec<f64>> {
    get_arr(v, ctx)?.iter().map(|x| get_f64(x, ctx)).collect()
}

/// `Vec<usize>` from a JSON array.
pub fn get_usizes(v: &JsonValue, ctx: &str) -> Result<Vec<usize>> {
    get_arr(v, ctx)?.iter().map(|x| get_usize(x, ctx)).collect()
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

/// Zero-alloc streaming JSON writer.
///
/// Appends compact JSON directly to a caller-owned byte buffer — no
/// intermediate value tree, no per-value allocation — so a serving loop can
/// reuse one buffer across messages. Structure (comma placement, key/value
/// alternation) is tracked in a fixed-size bitset; the caller is trusted to
/// call methods in a valid order (`debug_assert`s police it in tests).
pub struct JsonWriter<'a> {
    out: &'a mut Vec<u8>,
    /// One bit per open container depth, set once that container has
    /// written its first element (⇒ the next element needs a comma).
    comma: u128,
    depth: usize,
    after_key: bool,
}

impl<'a> JsonWriter<'a> {
    /// Starts writing at the end of `out` (which is *not* cleared — the
    /// caller may be framing, e.g. appending a trailing `\n` per message).
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        JsonWriter { out, comma: 0, depth: 0, after_key: false }
    }

    fn sep(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        let bit = 1u128 << (self.depth % 128);
        if self.comma & bit != 0 {
            self.out.push(b',');
        } else {
            self.comma |= bit;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_obj(&mut self) {
        self.sep();
        self.out.push(b'{');
        self.depth += 1;
        debug_assert!(self.depth < 128, "writer nesting exceeds the wire depth cap");
        self.comma &= !(1u128 << (self.depth % 128));
    }

    /// Closes the innermost object (`}`).
    pub fn end_obj(&mut self) {
        debug_assert!(self.depth > 0 && !self.after_key);
        self.depth -= 1;
        self.out.push(b'}');
    }

    /// Opens an array (`[`).
    pub fn begin_arr(&mut self) {
        self.sep();
        self.out.push(b'[');
        self.depth += 1;
        debug_assert!(self.depth < 128, "writer nesting exceeds the wire depth cap");
        self.comma &= !(1u128 << (self.depth % 128));
    }

    /// Closes the innermost array (`]`).
    pub fn end_arr(&mut self) {
        debug_assert!(self.depth > 0 && !self.after_key);
        self.depth -= 1;
        self.out.push(b']');
    }

    /// Writes an object key (with its `:`); the next value call is its value.
    pub fn key(&mut self, name: &str) {
        debug_assert!(!self.after_key);
        self.sep();
        escape_str(name, self.out);
        self.out.push(b':');
        self.after_key = true;
    }

    /// Writes a string value.
    pub fn str_val(&mut self, s: &str) {
        self.sep();
        escape_str(s, self.out);
    }

    /// Writes a number with stub-parity formatting: non-finite → `null`,
    /// integral below 9e15 via `i64`, else shortest round-tripping `f64`.
    pub fn f64_val(&mut self, n: f64) {
        self.sep();
        if !n.is_finite() {
            self.out.extend_from_slice(b"null");
        } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
            write!(self.out, "{}", n as i64).expect("write to Vec cannot fail");
        } else {
            write!(self.out, "{n}").expect("write to Vec cannot fail");
        }
    }

    /// Writes a `u64` the way the stub does: routed through `f64` (counters
    /// above 2^53 lose precision on the wire in both implementations).
    pub fn u64_val(&mut self, v: u64) {
        self.f64_val(v as f64);
    }

    /// Writes a `usize` (via [`JsonWriter::u64_val`]).
    pub fn usize_val(&mut self, v: usize) {
        self.u64_val(v as u64);
    }

    /// Writes a `u32` (via [`JsonWriter::u64_val`]).
    pub fn u32_val(&mut self, v: u32) {
        self.u64_val(v as u64);
    }

    /// Writes `true`/`false`.
    pub fn bool_val(&mut self, b: bool) {
        self.sep();
        self.out.extend_from_slice(if b { b"true" } else { b"false" });
    }

    /// Writes `null`.
    pub fn null_val(&mut self) {
        self.sep();
        self.out.extend_from_slice(b"null");
    }

    /// Writes an optional string (`None` → `null`).
    pub fn opt_str_val(&mut self, s: Option<&str>) {
        match s {
            Some(s) => self.str_val(s),
            None => self.null_val(),
        }
    }

    /// Writes a `[f64, …]` array in one call.
    pub fn f64s_val(&mut self, xs: &[f64]) {
        self.begin_arr();
        for &x in xs {
            self.f64_val(x);
        }
        self.end_arr();
    }

    /// Writes a `[usize, …]` array in one call.
    pub fn usizes_val(&mut self, xs: &[usize]) {
        self.begin_arr();
        for &x in xs {
            self.usize_val(x);
        }
        self.end_arr();
    }
}

fn escape_str(s: &str, out: &mut Vec<u8>) {
    out.push(b'"');
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        let esc: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            b'\t' => b"\\t",
            c if c < 0x20 => {
                out.extend_from_slice(&s.as_bytes()[start..i]);
                write!(out, "\\u{:04x}", c).expect("write to Vec cannot fail");
                start = i + 1;
                continue;
            }
            _ => continue,
        };
        out.extend_from_slice(&s.as_bytes()[start..i]);
        out.extend_from_slice(esc);
        start = i + 1;
    }
    out.extend_from_slice(&s.as_bytes()[start..]);
    out.push(b'"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<JsonValue> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(WireError::Malformed(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WireError::Malformed(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(WireError::Malformed(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue> {
        if depth > MAX_DEPTH {
            return Err(WireError::malformed("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| JsonValue::Null),
            Some(b't') => self.eat_keyword("true").map(|_| JsonValue::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => {
                            return Err(WireError::Malformed(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Obj(pairs));
                        }
                        _ => {
                            return Err(WireError::Malformed(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(WireError::Malformed(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| WireError::BadUtf8)?;
        let n: f64 =
            text.parse().map_err(|_| WireError::Malformed(format!("invalid number `{text}`")))?;
        if n.is_finite() {
            Ok(JsonValue::Num(n))
        } else {
            Err(WireError::Malformed(format!("number `{text}` overflows f64")))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(WireError::malformed("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| WireError::malformed("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| WireError::malformed("invalid \\u escape"))?;
                            // Surrogates degrade to the replacement character
                            // (stub parity); nothing in this workspace emits
                            // them — the writer never uses \u above 0x1F.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(WireError::malformed("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(WireError::malformed("control character in string"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: take the full scalar from the source.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| WireError::BadUtf8)?;
                    let ch = rest.chars().next().expect("non-empty by construction");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

/// Renders a parsed value back to compact JSON (writer round-trip support;
/// the hot paths stream through [`JsonWriter`] instead).
pub fn render(v: &JsonValue, out: &mut Vec<u8>) {
    let mut w = JsonWriter::new(out);
    render_into(v, &mut w);
}

fn render_into(v: &JsonValue, w: &mut JsonWriter<'_>) {
    match v {
        JsonValue::Null => w.null_val(),
        JsonValue::Bool(b) => w.bool_val(*b),
        JsonValue::Num(n) => w.f64_val(*n),
        JsonValue::Str(s) => w.str_val(s),
        JsonValue::Arr(items) => {
            w.begin_arr();
            for item in items {
                render_into(item, w);
            }
            w.end_arr();
        }
        JsonValue::Obj(pairs) => {
            w.begin_obj();
            for (k, item) in pairs {
                w.key(k);
                render_into(item, w);
            }
            w.end_obj();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn written(f: impl FnOnce(&mut JsonWriter<'_>)) -> String {
        let mut buf = Vec::new();
        let mut w = JsonWriter::new(&mut buf);
        f(&mut w);
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn writer_produces_compact_nested_structures() {
        let s = written(|w| {
            w.begin_obj();
            w.key("a");
            w.f64_val(1.0);
            w.key("b");
            w.begin_arr();
            w.f64_val(0.5);
            w.null_val();
            w.begin_obj();
            w.key("c");
            w.str_val("x");
            w.end_obj();
            w.end_arr();
            w.key("d");
            w.bool_val(false);
            w.end_obj();
        });
        assert_eq!(s, r#"{"a":1,"b":[0.5,null,{"c":"x"}],"d":false}"#);
    }

    #[test]
    fn writer_number_formatting_matches_the_stub_rules() {
        let cases: [(f64, &str); 7] = [
            (0.0, "0"),
            (-0.0, "0"), // -0.0 is integral: renders via i64 as 0
            (3.0, "3"),
            (-17.0, "-17"),
            (0.5, "0.5"),
            (f64::NAN, "null"),
            (f64::INFINITY, "null"),
        ];
        for (n, want) in &cases {
            assert_eq!(written(|w| w.f64_val(*n)), *want, "formatting {n}");
        }
        // Rust's Display never uses scientific notation; huge magnitudes
        // expand fully, exactly as the stub renderer does.
        assert_eq!(written(|w| w.f64_val(1e300)), format!("{}", 1e300));
        // At exactly 9e15 the integral fast path is skipped (|n| < 9e15).
        assert_eq!(written(|w| w.f64_val(9.0e15)), format!("{}", 9.0e15));
    }

    #[test]
    fn writer_escapes_strings_like_the_stub() {
        let got = written(|w| w.str_val("a\"b\\c\nd\re\tf\u{1}g é"));
        assert_eq!(got, "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001g é\"");
    }

    #[test]
    fn parse_round_trips_through_render() {
        let docs = [
            r#"{"cmd":"locate","site":"lab","y":[-50.5,null,3]}"#,
            r#"[1,2.5,-0.125,"x",true,false,null,{},[]]"#,
            r#""just a string""#,
            "12345",
            r#"{"dup":1,"dup":2}"#,
        ];
        for doc in docs {
            let v = parse(doc).unwrap();
            let mut out = Vec::new();
            render(&v, &mut out);
            assert_eq!(std::str::from_utf8(&out).unwrap(), doc, "round trip of {doc}");
        }
    }

    #[test]
    fn duplicate_keys_resolve_last_wins() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_num(), Some(2.0));
    }

    #[test]
    fn parser_rejects_garbage_and_depth_bombs() {
        for bad in ["", "tru", "{", "[1,", r#"{"a"}"#, "1 2", "nul", "\"\u{1}\"", "1e999"] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "depth bomb must be rejected");
        let ok_depth = "[".repeat(100) + "1" + &"]".repeat(100);
        assert!(parse(&ok_depth).is_ok(), "moderate nesting is fine");
    }

    #[test]
    fn null_decodes_to_nan_for_floats_and_errors_for_ints() {
        let v = parse(r#"{"y":null}"#).unwrap();
        assert!(get_f64(v.get("y").unwrap(), "T").unwrap().is_nan());
        assert!(get_u64(v.get("y").unwrap(), "T").is_err());
        assert!(get_u64(&JsonValue::Num(1.5), "T").is_err());
        assert_eq!(get_u64(&JsonValue::Num(7.0), "T").unwrap(), 7);
    }
}
