//! Shared binary primitives: CRC32, unsigned varints, and the little-endian
//! `Enc`/`Dec` pair.
//!
//! This is the single home of the codec that both the v2 wire protocol and
//! the `taflocd` snapshot store build on (the store re-exports from here
//! rather than duplicating). Layout is little-endian throughout; lengths are
//! 8-byte counts inside payloads and LEB128 varints in frame headers.

use crate::error::{Result, WireError};
use std::io::{BufRead, Write};
use taf_linalg::Matrix;

/// CRC32 (IEEE 802.3, polynomial `0xEDB88320`) — the checksum guarding both
/// v2 wire frames and persisted snapshot payloads. Hand-rolled because the
/// workspace deliberately carries no compression/hashing dependency.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = u32::MAX;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

/// Maximum encoded size of a `u64` LEB128 varint.
pub const MAX_UVARINT_BYTES: usize = 10;

/// Appends `v` as an LEB128 unsigned varint; returns the byte count written.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) -> usize {
    let start = buf.len();
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return buf.len() - start;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 unsigned varint byte-by-byte from a stream.
///
/// Rejects encodings longer than [`MAX_UVARINT_BYTES`] (a stream of
/// continuation bits would otherwise hang the reader on garbage).
pub fn read_uvarint<R: BufRead + ?Sized>(r: &mut R) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_UVARINT_BYTES {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        // The 10th byte may only carry the top bit of a u64.
        if shift == 63 && b > 1 {
            return Err(WireError::malformed("varint overflows u64"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
    Err(WireError::malformed("varint longer than 10 bytes"))
}

/// Writes `v` as an LEB128 unsigned varint directly to a stream.
pub fn write_uvarint<W: Write + ?Sized>(w: &mut W, v: u64) -> Result<()> {
    let mut buf = Vec::with_capacity(MAX_UVARINT_BYTES);
    put_uvarint(&mut buf, v);
    w.write_all(&buf).map_err(WireError::from)
}

/// Sanity cap on any decoded element count, so a corrupted length prefix
/// that slipped past the checksum cannot drive a huge allocation.
pub const MAX_ELEMENTS: usize = 1 << 28;

/// Little-endian binary encoder. Appends to an owned buffer; use
/// [`Enc::into_inner`] (or [`Enc::buf`]) to take the bytes.
#[derive(Default)]
pub struct Enc {
    /// The accumulated output bytes.
    pub buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }
    /// Creates an encoder reusing `buf` (cleared) as its scratch space.
    pub fn reusing(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Enc { buf }
    }
    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }
    /// Appends one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Appends a bool as `0`/`1`.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Appends an `f64` as its little-endian bit pattern (NaN-preserving).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
    /// Appends an optional string as a presence byte plus the string.
    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
    /// Appends a length-prefixed `usize` slice.
    pub fn usizes(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }
    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }
    /// Appends a matrix as `rows, cols` then `rows*cols` row-major values.
    pub fn matrix(&mut self, m: &Matrix) {
        self.usize(m.rows());
        self.usize(m.cols());
        for &x in m.as_slice() {
            self.f64(x);
        }
    }
}

/// Little-endian binary decoder over a borrowed payload.
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts decoding at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }
    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or(WireError::Truncated)?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    /// Fails unless every payload byte was consumed — trailing garbage
    /// means a layout mismatch, not just padding.
    pub fn finish(&self) -> Result<()> {
        if self.pos != self.data.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after the payload",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    /// Reads a bool, rejecting anything but `0`/`1`.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::Malformed(format!("invalid bool byte {v}"))),
        }
    }
    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    /// Reads a `usize` stored as `u64`.
    pub fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::malformed("count does not fit this platform"))
    }
    /// Reads an element count, rejecting implausible ([`MAX_ELEMENTS`])
    /// values before they reach an allocator.
    pub fn count(&mut self) -> Result<usize> {
        let n = self.usize()?;
        if n > MAX_ELEMENTS {
            return Err(WireError::Malformed(format!("element count {n} is implausible")));
        }
        Ok(n)
    }
    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
    /// Reads an optional string (presence byte plus string).
    pub fn opt_str(&mut self) -> Result<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            v => Err(WireError::Malformed(format!("invalid option tag {v}"))),
        }
    }
    /// Reads a length-prefixed `usize` slice.
    pub fn usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.count()?;
        (0..n).map(|_| self.usize()).collect()
    }
    /// Reads a length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.count()?;
        (0..n).map(|_| self.f64()).collect()
    }
    /// Reads a matrix (`rows, cols`, row-major data), validating the shape.
    pub fn matrix(&mut self) -> Result<Matrix> {
        let rows = self.count()?;
        let cols = self.count()?;
        let len = rows
            .checked_mul(cols)
            .filter(|&n| n <= MAX_ELEMENTS)
            .ok_or_else(|| WireError::malformed("matrix shape is implausible"))?;
        let data: Result<Vec<f64>> = (0..len).map(|_| self.f64()).collect();
        Matrix::from_vec(rows, cols, data?)
            .map_err(|e| WireError::Malformed(format!("matrix: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn uvarint_round_trips_boundary_values() {
        let cases = [0u64, 1, 0x7F, 0x80, 0x3FFF, 0x4000, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        for v in cases {
            let mut buf = Vec::new();
            let n = put_uvarint(&mut buf, v);
            assert_eq!(n, buf.len());
            let mut r = std::io::Cursor::new(buf.clone());
            assert_eq!(read_uvarint(&mut r).unwrap(), v, "round trip of {v}");
            assert_eq!(r.position() as usize, n, "consumed exactly the varint");
        }
    }

    #[test]
    fn uvarint_rejects_overlong_and_overflowing_encodings() {
        // Eleven continuation bytes: longer than any valid u64 varint.
        let overlong = vec![0x80u8; 11];
        assert!(matches!(
            read_uvarint(&mut std::io::Cursor::new(overlong)),
            Err(WireError::Malformed(_))
        ));
        // 10th byte with more than the top bit set overflows u64.
        let mut overflow = vec![0xFFu8; 9];
        overflow.push(0x02);
        assert!(matches!(
            read_uvarint(&mut std::io::Cursor::new(overflow)),
            Err(WireError::Malformed(_))
        ));
        // Truncated mid-varint maps to Truncated, not Io.
        let cut = vec![0x80u8, 0x80];
        assert!(matches!(read_uvarint(&mut std::io::Cursor::new(cut)), Err(WireError::Truncated)));
    }

    #[test]
    fn enc_dec_round_trips_every_primitive() {
        let m = Matrix::from_vec(2, 3, vec![1.0, -2.5, f64::NAN, 0.0, 1e300, -0.0]).unwrap();
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.usize(42);
        e.f64(-1.25);
        e.str("hé");
        e.opt_str(None);
        e.opt_str(Some("x"));
        e.usizes(&[1, 2, 3]);
        e.f64s(&[0.5, -0.5]);
        e.matrix(&m);
        let buf = e.into_inner();

        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.usize().unwrap(), 42);
        assert_eq!(d.f64().unwrap(), -1.25);
        assert_eq!(d.str().unwrap(), "hé");
        assert_eq!(d.opt_str().unwrap(), None);
        assert_eq!(d.opt_str().unwrap(), Some("x".to_string()));
        assert_eq!(d.usizes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.f64s().unwrap(), vec![0.5, -0.5]);
        let back = d.matrix().unwrap();
        assert_eq!(back.rows(), 2);
        assert_eq!(back.cols(), 3);
        // Bit-exact including NaN and the sign of -0.0.
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        d.finish().unwrap();
    }

    #[test]
    fn dec_flags_truncation_and_trailing_bytes() {
        let mut e = Enc::new();
        e.u64(1);
        let mut buf = e.into_inner();
        let mut d = Dec::new(&buf[..4]);
        assert!(matches!(d.u64(), Err(WireError::Truncated)));
        buf.push(0);
        let mut d = Dec::new(&buf);
        d.u64().unwrap();
        assert!(matches!(d.finish(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn dec_rejects_implausible_counts() {
        let mut e = Enc::new();
        e.usize(MAX_ELEMENTS + 1);
        let buf = e.into_inner();
        assert!(Dec::new(&buf).count().is_err());
    }
}
