//! Structured wire-level errors.
//!
//! Every failure mode a peer can trigger gets its own variant so the serve
//! plane can decide *per kind* whether the connection is still framed (send
//! an error reply and keep reading) or beyond recovery (count it and close),
//! and surface each kind in its `stats` counters.

use std::fmt;

/// Result alias for wire operations.
pub type Result<T> = std::result::Result<T, WireError>;

/// Anything that can go wrong encoding or decoding a wire message.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure underneath the codec.
    Io(std::io::Error),
    /// A v2 frame declared a payload longer than the negotiated cap. The
    /// reader drains the oversized frame before reporting, so the stream is
    /// still framed and the connection can keep serving.
    FrameTooLarge {
        /// Declared payload length in bytes.
        got: usize,
        /// The cap that was exceeded.
        limit: usize,
    },
    /// A frame began with the v2 sniff byte but carried an unknown version
    /// marker. The stream cannot be re-framed; the connection must close.
    BadMagic {
        /// The version byte that followed the sniff byte.
        got: u8,
    },
    /// A v2 payload failed its CRC32 — the frame boundaries were intact, so
    /// the connection survives, but the message is discarded.
    ChecksumMismatch {
        /// Checksum stored in the frame trailer.
        stored: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// Bytes that must be UTF-8 (a v1 line, an embedded string) are not.
    BadUtf8,
    /// The peer closed the stream mid-frame.
    Truncated,
    /// Structurally invalid content: bad JSON, an unknown message tag, a
    /// wrong field type. The frame itself was well delimited.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::FrameTooLarge { got, limit } => {
                write!(f, "frame of {got} bytes exceeds the {limit}-byte cap")
            }
            WireError::BadMagic { got } => {
                write!(f, "bad magic: unknown wire version byte 0x{got:02X}")
            }
            WireError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: frame says {stored:#010X}, payload is {computed:#010X}"
                )
            }
            WireError::BadUtf8 => write!(f, "invalid UTF-8 on the wire"),
            WireError::Truncated => write!(f, "truncated frame: peer closed mid-message"),
            WireError::Malformed(msg) => write!(f, "malformed message: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        // An EOF in the middle of a read_exact is a peer hanging up
        // mid-frame, which callers want to tell apart from live transport
        // errors (timeouts, resets).
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl WireError {
    /// Convenience constructor for [`WireError::Malformed`].
    pub fn malformed(msg: impl Into<String>) -> Self {
        WireError::Malformed(msg.into())
    }

    /// True when the failure left the byte stream correctly framed, i.e.
    /// the reader consumed exactly one (bad) message and the connection can
    /// reply with an error frame and keep serving.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            WireError::Malformed(_)
                | WireError::ChecksumMismatch { .. }
                | WireError::FrameTooLarge { .. }
        )
    }
}
