//! The scenario regression suite: every built-in scenario must pass its
//! committed golden gates, the same seed must reproduce byte-identical
//! reports, and an injected reconstruction bias must be caught.
//!
//! All stochastic inputs are pinned: each scenario carries its world seed
//! (42–45) and the runner derives every stream seed from fixed bases, so
//! these tests are deterministic end to end — no wall clock, no thread
//! timing, no ambient RNG.

use taf_testkit::{builtin_scenarios, compare, find_scenario, load_golden, run_scenario};

/// Runs one scenario against its committed golden and panics with the full
/// violation list on any regression.
fn check(name: &str) {
    let scenario = find_scenario(name).expect("built-in scenario");
    match taf_testkit::run_and_check(&scenario) {
        Ok(report) => {
            assert_eq!(report.scenario, name);
            assert!(report.recon_rmse_db.is_finite());
        }
        Err(violations) => {
            panic!("scenario `{name}` failed its golden gates:\n  {}", violations.join("\n  "))
        }
    }
}

#[test]
fn nominal_passes_its_golden_gates() {
    check("nominal");
}

#[test]
fn lossy_eval_passes_its_golden_gates() {
    check("lossy-eval");
}

#[test]
fn dead_link_passes_its_golden_gates() {
    check("dead-link");
}

#[test]
fn survey_outage_passes_its_golden_gates() {
    check("survey-outage");
}

#[test]
fn survey_outage_blocks_the_refresh_path() {
    // The scenario's whole point: a dead link in every reference capture
    // means the round never completes, so no promotion and no refresh —
    // while queue overload on the eval streams is counted, not ignored.
    let scenario = find_scenario("survey-outage").unwrap();
    let report = run_scenario(&scenario).unwrap();
    assert_eq!(report.refreshes, 0);
    assert_eq!(report.snapshot_version, 0);
    assert!(!report.pending_refs);
    assert!(report.ingest_dropped_queue_batches > 0, "overload cap must shed batches");
}

#[test]
fn dead_link_is_visible_in_stream_health() {
    let report = run_scenario(&find_scenario("dead-link").unwrap()).unwrap();
    // Exactly one of six links serves from a stale aggregate in both phases.
    let expected = 1.0 / 6.0;
    assert!((report.day0.stale_rate - expected).abs() < 1e-9, "{}", report.day0.stale_rate);
    assert!((report.drifted.stale_rate - expected).abs() < 1e-9);
}

/// Same scenario, same seed, two runs: the serialized reports must be
/// byte-identical. This is the determinism contract the golden workflow
/// rests on — any nondeterminism (wall-clock coupling, map iteration order,
/// thread timing) shows up here as a diff.
#[test]
fn same_seed_runs_are_byte_identical() {
    for scenario in builtin_scenarios() {
        let a = run_scenario(&scenario).unwrap().to_json();
        let b = run_scenario(&scenario).unwrap().to_json();
        assert_eq!(a, b, "scenario `{}` is not deterministic", scenario.name);
    }
}

/// Mutation check for the gate machinery itself: a +3 dB bias injected into
/// the LoLi-IR output (via the test-only `debug_bias_db` hook) must make at
/// least one golden accuracy gate fail. The mean-signed-error gate moves
/// one-for-one with the bias, so this holds in any environment.
#[test]
fn injected_reconstruction_bias_fails_a_golden_gate() {
    let mut scenario = find_scenario("nominal").unwrap();
    scenario.debug_bias_db = 3.0;
    let biased = run_scenario(&scenario).unwrap();
    let golden = load_golden("nominal").unwrap();
    let violations = compare(&biased, &golden, &scenario.tolerances);
    assert!(
        violations.iter().any(|v| v.contains("reconstruction bias")),
        "a +3 dB bias must trip the bias gate, got: {violations:?}"
    );
}

/// The complementary direction: with a zero bias the hook is a strict no-op
/// and the exact same run passes every gate (exercised end-to-end by the
/// per-scenario tests above; asserted once more here against the report to
/// keep the pairing obvious).
#[test]
fn zero_bias_hook_is_a_no_op() {
    let scenario = find_scenario("nominal").unwrap();
    assert_eq!(scenario.debug_bias_db, 0.0);
    let report = run_scenario(&scenario).unwrap();
    let golden = load_golden("nominal").unwrap();
    assert!(compare(&report, &golden, &scenario.tolerances).is_empty());
}

#[test]
fn restart_recovery_passes_its_golden_gates() {
    check("restart-recovery");
}

/// Restart equivalence: the same scenario run with and without the simulated
/// crash/restart must produce identical post-restart accuracy — persistence
/// is exact, not approximate. Only the cumulative ingest counters may differ
/// (the live ingestion window is deliberately not persisted); every metric
/// computed after the restart point must match to the last bit.
#[test]
fn restart_is_invisible_to_every_accuracy_metric() {
    let with_restart = find_scenario("restart-recovery").unwrap();
    let mut without = with_restart.clone();
    without.restart_after_refresh = false;

    let a = run_scenario(&with_restart).unwrap();
    let b = run_scenario(&without).unwrap();

    assert_eq!(a.day0, b.day0, "day-0 phase precedes the restart entirely");
    assert_eq!(a.drifted, b.drifted, "drifted eval must be bit-equal across the restart");
    assert_eq!(
        a.recon_rmse_db.to_bits(),
        b.recon_rmse_db.to_bits(),
        "served DB must round-trip bit-exactly: {} vs {}",
        a.recon_rmse_db,
        b.recon_rmse_db
    );
    assert_eq!(a.recon_bias_db.to_bits(), b.recon_bias_db.to_bits());
    assert_eq!(a.refreshes, b.refreshes);
    assert_eq!(a.maintenance_checks, b.maintenance_checks, "tick counters are persisted");
    assert_eq!(a.snapshot_version, b.snapshot_version);
    assert_eq!(a.pending_refs, b.pending_refs);
}
