//! The scenario regression suite: every built-in scenario must pass its
//! committed golden gates, the same seed must reproduce byte-identical
//! reports, and an injected reconstruction bias must be caught.
//!
//! All stochastic inputs are pinned: each scenario carries its world seed
//! (42–45) and the runner derives every stream seed from fixed bases, so
//! these tests are deterministic end to end — no wall clock, no thread
//! timing, no ambient RNG.

use taf_testkit::{
    builtin_scenarios, compare, find_scenario, load_golden, run_scenario, CrashPoint, RestartPoint,
};

/// Runs one scenario against its committed golden and panics with the full
/// violation list on any regression.
fn check(name: &str) {
    let scenario = find_scenario(name).expect("built-in scenario");
    match taf_testkit::run_and_check(&scenario) {
        Ok(report) => {
            assert_eq!(report.scenario, name);
            assert!(report.recon_rmse_db.is_finite());
        }
        Err(violations) => {
            panic!("scenario `{name}` failed its golden gates:\n  {}", violations.join("\n  "))
        }
    }
}

#[test]
fn nominal_passes_its_golden_gates() {
    check("nominal");
}

#[test]
fn lossy_eval_passes_its_golden_gates() {
    check("lossy-eval");
}

#[test]
fn dead_link_passes_its_golden_gates() {
    check("dead-link");
}

#[test]
fn survey_outage_passes_its_golden_gates() {
    check("survey-outage");
}

#[test]
fn survey_outage_blocks_the_refresh_path() {
    // The scenario's whole point: a dead link in every reference capture
    // means the round never completes, so no promotion and no refresh —
    // while queue overload on the eval streams is counted, not ignored.
    let scenario = find_scenario("survey-outage").unwrap();
    let report = run_scenario(&scenario).unwrap();
    assert_eq!(report.refreshes, 0);
    assert_eq!(report.snapshot_version, 0);
    assert!(!report.pending_refs);
    assert!(report.ingest_dropped_queue_batches > 0, "overload cap must shed batches");
}

#[test]
fn dead_link_is_visible_in_stream_health() {
    let report = run_scenario(&find_scenario("dead-link").unwrap()).unwrap();
    // Exactly one of six links serves from a stale aggregate in both phases.
    let expected = 1.0 / 6.0;
    assert!((report.day0.stale_rate - expected).abs() < 1e-9, "{}", report.day0.stale_rate);
    assert!((report.drifted.stale_rate - expected).abs() < 1e-9);
}

/// Same scenario, same seed, two runs: the serialized reports must be
/// byte-identical. This is the determinism contract the golden workflow
/// rests on — any nondeterminism (wall-clock coupling, map iteration order,
/// thread timing) shows up here as a diff.
#[test]
fn same_seed_runs_are_byte_identical() {
    for scenario in builtin_scenarios() {
        let a = run_scenario(&scenario).unwrap().to_json();
        let b = run_scenario(&scenario).unwrap().to_json();
        assert_eq!(a, b, "scenario `{}` is not deterministic", scenario.name);
    }
}

/// Mutation check for the gate machinery itself: a +3 dB bias injected into
/// the LoLi-IR output (via the test-only `debug_bias_db` hook) must make at
/// least one golden accuracy gate fail. The mean-signed-error gate moves
/// one-for-one with the bias, so this holds in any environment.
#[test]
fn injected_reconstruction_bias_fails_a_golden_gate() {
    let mut scenario = find_scenario("nominal").unwrap();
    scenario.debug_bias_db = 3.0;
    let biased = run_scenario(&scenario).unwrap();
    let golden = load_golden("nominal").unwrap();
    let violations = compare(&biased, &golden, &scenario.tolerances);
    assert!(
        violations.iter().any(|v| v.contains("reconstruction bias")),
        "a +3 dB bias must trip the bias gate, got: {violations:?}"
    );
}

/// The complementary direction: with a zero bias the hook is a strict no-op
/// and the exact same run passes every gate (exercised end-to-end by the
/// per-scenario tests above; asserted once more here against the report to
/// keep the pairing obvious).
#[test]
fn zero_bias_hook_is_a_no_op() {
    let scenario = find_scenario("nominal").unwrap();
    assert_eq!(scenario.debug_bias_db, 0.0);
    let report = run_scenario(&scenario).unwrap();
    let golden = load_golden("nominal").unwrap();
    assert!(compare(&report, &golden, &scenario.tolerances).is_empty());
}

#[test]
fn restart_recovery_passes_its_golden_gates() {
    check("restart-recovery");
}

#[test]
fn plan_full_survey_passes_its_golden_gates() {
    check("plan-full-survey");
}

#[test]
fn plan_uncertainty_50_passes_its_golden_gates() {
    check("plan-uncertainty-50");
}

#[test]
fn plan_fixed_50_passes_its_golden_gates() {
    check("plan-fixed-50");
}

/// The adaptive-sensing headline: the uncertainty-greedy planner at half
/// budget must spend at most 50% of a full re-survey on the drifted refresh
/// while keeping the drifted *localization* accuracy within the golden
/// tolerances of its full-survey twin (identical world, seed and streams —
/// the only difference is how many reference cells are re-measured).
#[test]
fn uncertainty_planning_halves_cost_without_losing_accuracy() {
    let full_twin = find_scenario("plan-full-survey").unwrap();
    let budgeted = find_scenario("plan-uncertainty-50").unwrap();
    let full = run_scenario(&full_twin).unwrap();
    let half = run_scenario(&budgeted).unwrap();

    // Cost: counters are cumulative over two survey rounds and round 1 is
    // always full, so the drifted refresh is the remainder.
    let per_round = full.full_survey_cost / 2;
    assert_eq!(full.actual_cost, full.full_survey_cost, "the twin re-surveys everything");
    let refresh_cost = half.actual_cost - per_round;
    assert!(
        refresh_cost * 2 <= per_round,
        "budgeted refresh spent {refresh_cost} of a {per_round} link-measurement round"
    );
    assert_eq!(half.planned_cost, half.actual_cost, "every planned measurement was delivered");

    // Accuracy: within the one-sided golden tolerances of the full twin.
    let tol = &budgeted.tolerances;
    assert!(
        half.drifted.loc.mean <= full.drifted.loc.mean + tol.loc_mean_m,
        "drifted mean {:.3} m vs full-survey {:.3} m (+{:.2} m allowed)",
        half.drifted.loc.mean,
        full.drifted.loc.mean,
        tol.loc_mean_m
    );
    assert!(
        half.drifted.loc.p90 <= full.drifted.loc.p90 + tol.loc_p90_m,
        "drifted p90 {:.3} m vs full-survey {:.3} m (+{:.2} m allowed)",
        half.drifted.loc.p90,
        full.drifted.loc.p90,
        tol.loc_p90_m
    );
    // Day-0 phases precede any planning and must be bit-equal.
    assert_eq!(half.day0, full.day0, "planning must not disturb the pre-drift phase");
}

/// The cost-vs-accuracy leaderboard runs, includes the RTI and RASS baseline
/// rows, and reproduces the ordering the planner exists for: the budgeted
/// uncertainty-greedy refresh — at half the measurement cost of a full
/// re-survey and through the noisier full serving stack — still beats the
/// zero-cost stale-database RASS baseline (which skips ingest entirely and
/// localizes clean averaged snapshots).
#[test]
fn leaderboard_includes_baselines_and_tafloc_beats_stale_rass() {
    let rows = taf_testkit::leaderboard().unwrap();
    println!("{}", taf_testkit::render_markdown(&rows));
    assert_eq!(rows.len(), 5, "{rows:?}");
    let by_name = |needle: &str| {
        rows.iter()
            .find(|r| r.system.contains(needle))
            .unwrap_or_else(|| panic!("no `{needle}` row in {rows:?}"))
    };
    let full = by_name("full re-survey");
    let unc = by_name("uncertainty-greedy");
    let rass = by_name("RASS");
    let rti = by_name("RTI");
    assert_eq!(rass.refresh_cost, 0);
    assert_eq!(rti.refresh_cost, 0);
    assert_eq!(full.cost_fraction, 1.0, "{rows:?}");
    assert!(unc.refresh_cost * 2 <= full.refresh_cost, "{rows:?}");
    assert!(unc.drifted_loc_mean_m < rass.drifted_loc_mean_m, "{rows:?}");
}

/// Asserts that a crashed-and-recovered run converges to the uninterrupted
/// one: every metric computed after the restart point must match to the last
/// bit. Only the cumulative ingest counters may differ (the live ingestion
/// window is deliberately not persisted).
fn assert_restart_invisible(crashed: &taf_testkit::Scenario) {
    let mut without = crashed.clone();
    without.restart = RestartPoint::None;
    without.crash = CrashPoint::CleanKill;

    let a = run_scenario(crashed).unwrap();
    let b = run_scenario(&without).unwrap();

    let tag = format!("restart {:?} / crash {:?}", crashed.restart, crashed.crash);
    assert_eq!(a.day0, b.day0, "[{tag}] day-0 phase precedes the restart entirely");
    assert_eq!(a.drifted, b.drifted, "[{tag}] drifted eval must be bit-equal across the restart");
    assert_eq!(
        a.recon_rmse_db.to_bits(),
        b.recon_rmse_db.to_bits(),
        "[{tag}] served DB must round-trip bit-exactly: {} vs {}",
        a.recon_rmse_db,
        b.recon_rmse_db
    );
    assert_eq!(a.recon_bias_db.to_bits(), b.recon_bias_db.to_bits(), "[{tag}]");
    assert_eq!(a.refreshes, b.refreshes, "[{tag}]");
    // Snapshots are written at refresh commits, not per tick: maintenance
    // checks between the last commit and the kill are volatile by design, so
    // the revived site may have counted fewer — never more, and never any
    // that changed served state (those would have committed a snapshot).
    assert!(
        a.maintenance_checks <= b.maintenance_checks,
        "[{tag}] revived site counted ticks that never committed: {} > {}",
        a.maintenance_checks,
        b.maintenance_checks
    );
    assert_eq!(a.snapshot_version, b.snapshot_version, "[{tag}]");
    assert_eq!(a.pending_refs, b.pending_refs, "[{tag}]");
    assert_eq!(a.planned_cost, b.planned_cost, "[{tag}] plan costs are persisted");
    assert_eq!(a.actual_cost, b.actual_cost, "[{tag}]");
    assert_eq!(a.full_survey_cost, b.full_survey_cost, "[{tag}]");
}

/// Restart equivalence after the refresh committed: recovery comes from the
/// snapshot alone (the journal was pruned to the committed watermark).
#[test]
fn restart_is_invisible_to_every_accuracy_metric() {
    assert_restart_invisible(&find_scenario("restart-recovery").unwrap());
}

/// The journal-replay half of the durability contract: the daemon dies after
/// the survey batches were admitted (and journaled) but before any
/// maintenance tick promoted them. The snapshot on disk predates the entire
/// survey, so the post-restart refresh only happens if replay rebuilt the
/// capture round — with zero admitted-sample loss, or the refresh inputs
/// (and every gated metric) would diverge from the uninterrupted run.
#[test]
fn journal_replay_rebuilds_the_capture_round_after_a_pre_refresh_kill() {
    let mut scenario = find_scenario("restart-recovery").unwrap();
    scenario.restart = RestartPoint::BeforeRefresh;
    assert_restart_invisible(&scenario);
}

/// Kill-9 battery over the injected crash points: a kill landing mid-append
/// (torn journal tail) or mid-rename (orphaned snapshot temp file) must
/// recover to exactly the clean-kill state, at both restart points.
#[test]
fn torn_writes_recover_to_the_clean_kill_state() {
    for restart in [RestartPoint::BeforeRefresh, RestartPoint::AfterRefresh] {
        for crash in [CrashPoint::MidAppend, CrashPoint::MidRename] {
            let mut scenario = find_scenario("restart-recovery").unwrap();
            scenario.restart = restart;
            scenario.crash = crash;
            assert_restart_invisible(&scenario);
        }
    }
}

#[test]
fn plan_restart_passes_its_golden_gates() {
    check("plan-restart");
}

/// The adaptive-sensing durability headline: a daemon killed between the
/// first (full-survey) refresh and the budgeted epoch resumes its persisted
/// measurement plan mid-schedule — same cumulative cost, bit-equal accuracy,
/// no forced full survey.
#[test]
fn plan_restart_resumes_the_schedule_at_no_extra_cost() {
    let scenario = find_scenario("plan-restart").unwrap();
    assert_restart_invisible(&scenario);

    // The resumed schedule must also cost exactly what the uninterrupted
    // budgeted scenario spends: round 1 full (36) + round 2 at half budget —
    // a forced post-restart full survey would double round 2.
    let resumed = run_scenario(&scenario).unwrap();
    let uninterrupted = run_scenario(&find_scenario("plan-uncertainty-50").unwrap()).unwrap();
    assert_eq!(resumed.planned_cost, uninterrupted.planned_cost);
    assert_eq!(resumed.actual_cost, uninterrupted.actual_cost);
    assert_eq!(resumed.full_survey_cost, uninterrupted.full_survey_cost);
}

/// A mid-schedule kill combined with a torn snapshot rename: the budgeted
/// epoch still resumes from the newest durable generation.
#[test]
fn plan_restart_survives_a_mid_rename_kill() {
    let mut scenario = find_scenario("plan-restart").unwrap();
    scenario.crash = CrashPoint::MidRename;
    assert_restart_invisible(&scenario);
}
