//! Cost-vs-accuracy leaderboard: the adaptive-sensing scenarios side by side
//! with the in-tree RTI and RASS baselines (`taf-baselines`) on the same
//! world.
//!
//! Every row answers the same question — *what does the drifted-day accuracy
//! cost in refresh measurements?* The TafLoc rows come from the plan-scenario
//! reports (full serving stack: noisy streams, ingest, budgeted refresh);
//! the baseline rows run the published RTI / RASS algorithms on averaged RSS
//! snapshots at the same evaluation cells, which if anything flatters them —
//! they skip the stream-health machinery entirely. RTI needs no fingerprint
//! refresh at all (it inverts live attenuation against a live empty-room
//! baseline) and stale RASS deliberately refuses to refresh; both therefore
//! report a refresh cost of zero, and their error shows what that saving
//! buys.

use crate::runner::run_scenario;
use crate::scenario::find_scenario;
use taf_baselines::{Rass, RassConfig, Rti, RtiConfig};
use taf_rfsim::geometry::Segment;
use taf_rfsim::{campaign, World};
use tafloc_core::db::FingerprintDb;

/// Snapshot averaging depth for the baseline rows (matches the plan
/// scenarios' ~30 s, 1 Hz evaluation streams).
const BASELINE_SAMPLES: usize = 30;

/// One system's place on the cost-vs-accuracy leaderboard.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardRow {
    /// Human-readable system label.
    pub system: String,
    /// Link-measurements spent on the drifted-day refresh round (`0` for
    /// systems that never re-survey).
    pub refresh_cost: u64,
    /// Same cost as a fraction of one full reference survey.
    pub cost_fraction: f64,
    /// Mean localization error (m) at the drifted evaluation day.
    pub drifted_loc_mean_m: f64,
}

/// Builds the leaderboard: three TafLoc sensing policies (from the committed
/// plan scenarios) plus RTI and stale RASS on the identical world and
/// evaluation grid. Deterministic — every input is seeded.
pub fn leaderboard() -> Result<Vec<LeaderboardRow>, String> {
    let mut rows = Vec::new();

    for (name, label) in [
        ("plan-full-survey", "TafLoc, full re-survey"),
        ("plan-uncertainty-50", "TafLoc, uncertainty-greedy @ 50% budget"),
        ("plan-fixed-50", "TafLoc, fixed-schedule @ 50% budget"),
    ] {
        let scenario =
            find_scenario(name).ok_or_else(|| format!("missing built-in scenario `{name}`"))?;
        let report = run_scenario(&scenario)?;
        // Cumulative counters cover two survey rounds; round 1 is always a
        // full survey, so the drifted refresh cost is the remainder.
        let per_round = report.full_survey_cost / 2;
        let refresh_cost = report.actual_cost - per_round;
        rows.push(LeaderboardRow {
            system: label.to_string(),
            refresh_cost,
            cost_fraction: refresh_cost as f64 / per_round.max(1) as f64,
            drifted_loc_mean_m: report.drifted.loc.mean,
        });
    }

    // Baselines: same world seed, same drifted day, same evaluation cells.
    let scenario = find_scenario("plan-full-survey").expect("committed scenario");
    let plan = scenario.plan.expect("plan scenario carries a PlanSpec");
    let world = World::new(scenario.world.config(), scenario.seed);
    let day = plan.second_drift_day;
    let eval_cells: Vec<usize> = (0..world.num_cells()).step_by(scenario.eval_stride).collect();

    let x0 = campaign::full_calibration(&world, 0.0, scenario.survey_samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, scenario.survey_samples);
    let db0 = FingerprintDb::from_world(x0, &world).map_err(|e| e.to_string())?;
    let fresh_empty = campaign::empty_snapshot(&world, day, BASELINE_SAMPLES);

    let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
    let rti = Rti::new(&links, world.grid(), RtiConfig::default()).map_err(|e| e.to_string())?;
    let rass = Rass::new(db0, e0, RassConfig::default()).map_err(|e| e.to_string())?;

    let mut rti_errors = Vec::with_capacity(eval_cells.len());
    let mut rass_errors = Vec::with_capacity(eval_cells.len());
    for &cell in &eval_cells {
        let truth = world.grid().cell_center(cell);
        let y = campaign::snapshot_at_cell(&world, day, cell, BASELINE_SAMPLES);
        let fix = rti.localize(&fresh_empty, &y).map_err(|e| e.to_string())?;
        rti_errors.push(fix.point.distance(&truth));
        let fix = rass.localize(&y).map_err(|e| e.to_string())?;
        rass_errors.push(fix.point.distance(&truth));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    rows.push(LeaderboardRow {
        system: "RTI (no fingerprints)".to_string(),
        refresh_cost: 0,
        cost_fraction: 0.0,
        drifted_loc_mean_m: mean(&rti_errors),
    });
    rows.push(LeaderboardRow {
        system: "RASS (stale database)".to_string(),
        refresh_cost: 0,
        cost_fraction: 0.0,
        drifted_loc_mean_m: mean(&rass_errors),
    });
    Ok(rows)
}

/// Renders the leaderboard as a GitHub-flavored markdown table.
pub fn render_markdown(rows: &[LeaderboardRow]) -> String {
    let mut out = String::from(
        "| System | Refresh cost (link-meas.) | Cost vs full survey | Drifted mean error (m) |\n\
         |---|---:|---:|---:|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.0}% | {:.2} |\n",
            r.system,
            r.refresh_cost,
            r.cost_fraction * 100.0,
            r.drifted_loc_mean_m
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_one_line_per_row_plus_header() {
        let rows = vec![LeaderboardRow {
            system: "x".into(),
            refresh_cost: 18,
            cost_fraction: 0.5,
            drifted_loc_mean_m: 1.25,
        }];
        let md = render_markdown(&rows);
        assert_eq!(md.lines().count(), 3);
        assert!(md.contains("| x | 18 | 50% | 1.25 |"), "{md}");
    }
}
