//! Executes a [`Scenario`] against the real serving stack.
//!
//! The runner drives a [`tafloc_serve::site::Site`] directly — no TCP, no
//! threads, no wall clock — through the same public entry points the daemon
//! uses:
//!
//! * evaluation streams go through [`Site::ingest_samples`] into the live
//!   ingestor (manual stream clock, advanced to scripted instants);
//! * reference surveys go through the capture-window path
//!   (`ingest_samples(Some(k), ..)`);
//! * drift detection and refresh happen by calling
//!   [`Site::maintenance_tick`] at scripted points instead of from the
//!   background thread (`manual_tick` policy).
//!
//! Queue overload is modeled synchronously: the scenario caps how many
//! batches per stream are admitted and the excess is shed through
//! [`tafloc_ingest::Ingestor::record_queue_drop`], exactly the accounting
//! the real bounded queue performs — but deterministically, because the real
//! queue's shedding depends on consumer-thread timing.
//!
//! Successive evaluation streams share one live ingestor, so each stream is
//! shifted forward in stream time by `duration + window + staleness + 1 s`;
//! by the time a cell is located, every sample from the previous cell has
//! fallen off the window horizon.

use crate::report::{PhaseMetrics, ScenarioReport};
use crate::scenario::{CrashPoint, RestartPoint, Scenario};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use taf_plan::PlannerConfig;
use taf_rfsim::{campaign, stream, RawSample, World};
use tafloc_core::db::FingerprintDb;
use tafloc_core::eval::{localization_error, reconstruction_rmse, ErrorSummary};
use tafloc_core::loli_ir::LoliIrConfig;
use tafloc_core::monitor::MonitorConfig;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_ingest::{ClockMode, LinkSample};
use tafloc_serve::journal::{Journal, JournalConfig};
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::site::Site;
use tafloc_serve::store::SiteStore;

/// Stream-seed bases per phase, so the day-0 and drifted evaluations (and the
/// survey) draw from disjoint deterministic noise streams.
const SEED_EVAL_DAY0: u64 = 1_000;
const SEED_EVAL_DRIFTED: u64 = 2_000;
const SEED_SURVEY: u64 = 500;
/// Stream-seed base for the second (budgeted) survey epoch of plan
/// scenarios, disjoint from every other base.
const SEED_SURVEY_EPOCH2: u64 = 700;

/// Runs `scenario` to completion and returns its report.
///
/// Errors are strings (this is a test harness; the only consumer prints
/// them) and indicate a scenario so hostile the pipeline could not produce a
/// fix at all — committed scenarios never error.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let world = World::new(scenario.world.config(), scenario.seed);
    scenario.assert_valid(world.num_links());

    // Day-0 calibration: full survey, empty-room baseline, system build.
    let x0 = campaign::full_calibration(&world, 0.0, scenario.survey_samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, scenario.survey_samples);
    let db = FingerprintDb::from_world(x0, &world).map_err(|e| e.to_string())?;
    let config = TafLocConfig {
        ref_count: scenario.ref_count,
        loli: LoliIrConfig { debug_bias_db: scenario.debug_bias_db, ..Default::default() },
        ..Default::default()
    };
    let system = TafLoc::calibrate(config, db, e0).map_err(|e| e.to_string())?;

    let policy = MaintenancePolicy {
        manual_tick: true,
        auto_refresh: true,
        breach_streak: scenario.breach_streak,
        monitor: MonitorConfig {
            error_threshold_db: scenario.monitor_threshold_db,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut site =
        Site::with_options(scenario.name, system, 0.0, policy, scenario.ingest, ClockMode::Manual)
            .map_err(|e| e.to_string())?;
    let mut planner = None;
    if let Some(plan) = &scenario.plan {
        let full = scenario.ref_count * world.num_links();
        let budget = (plan.budget_fraction * full as f64).round() as usize;
        let config = PlannerConfig::new(budget, plan.policy);
        planner = Some(config);
        site = site.with_planning(config).map_err(|e| e.to_string())?;
    }

    // Restart scenarios run on the real persistence stack for the whole run
    // — a snapshot store plus a zero-flush-window write-ahead journal,
    // exactly like a daemon started with `--data-dir` — so the simulated
    // kill recovers from what the durability machinery actually wrote, not
    // from a snapshot taken for the occasion.
    let scratch = match scenario.restart {
        RestartPoint::None => None,
        _ => {
            let scratch = ScratchDir::new(scenario.name);
            site = attach_durability(site, scenario.name, &scratch.0)?;
            Some(scratch)
        }
    };

    let eval_cells: Vec<usize> = (0..world.num_cells()).step_by(scenario.eval_stride).collect();
    // Gap that guarantees one stream's samples are gone (evicted or at least
    // stale) before the next stream's verdict is read.
    let stream_gap_s = scenario.ingest.window_s + scenario.ingest.stale_after_s + 1.0;
    let mut offset_s = 0.0;

    let day0 = eval_phase(
        scenario,
        &world,
        &site,
        &eval_cells,
        0.0,
        SEED_EVAL_DAY0,
        stream_gap_s,
        &mut offset_s,
    )?;

    // Drift-day reference survey through the capture-window path.
    let ref_cells: Vec<usize> = site.load().system.reference_cells().to_vec();
    for (k, &cell) in ref_cells.iter().enumerate() {
        let raw = stream::stream_at_cell(
            &world,
            scenario.drift_day,
            cell,
            &scenario.stream,
            SEED_SURVEY + k as u64,
        );
        let faulted = scenario.survey_faults.applied(&raw);
        for batch in link_samples(&faulted).chunks(scenario.batch_size) {
            site.ingest_samples(Some(k), scenario.drift_day, batch).map_err(|e| e.to_string())?;
        }
    }

    // Crash point "after journal append, before snapshot commit": the
    // survey batches above are journaled, but the snapshot on disk predates
    // them — recovery must rebuild the whole capture round from journal
    // replay, and the post-restart ticks below must still refresh.
    if scenario.restart == RestartPoint::BeforeRefresh {
        site = simulate_crash_restart(scenario, site, &scratch.as_ref().unwrap().0, planner)?;
    }

    // Scripted maintenance: each tick promotes a finished capture round,
    // re-checks the monitor and — streak and cooldown permitting — refreshes.
    let mut refreshes = 0u64;
    for _ in 0..scenario.max_ticks {
        if site.maintenance_tick().map_err(|e| e.to_string())?.is_some() {
            refreshes += 1;
        }
    }

    // Adaptive-sensing second epoch: the first refresh published a
    // measurement plan; re-survey *only* the reference cells it names, at the
    // later drift day, and let the history window fill in the rest. The
    // budgeted refresh then runs through the same scripted ticks.
    let final_day = match &scenario.plan {
        Some(plan) => {
            // The mid-schedule kill: the first refresh committed (persisting
            // the published plan, history, costs and warm state), and the
            // daemon dies before the budgeted epoch starts. The revived site
            // must hand back the *same* measurement plan and resume it.
            if scenario.restart == RestartPoint::BetweenEpochs {
                site =
                    simulate_crash_restart(scenario, site, &scratch.as_ref().unwrap().0, planner)?;
            }
            let current = site.current_plan().ok_or_else(|| {
                "plan scenario produced no measurement plan after the first refresh".to_string()
            })?;
            for entry in &current.entries {
                let cell = ref_cells[entry.ref_slot];
                let raw = stream::stream_at_cell(
                    &world,
                    plan.second_drift_day,
                    cell,
                    &scenario.stream,
                    SEED_SURVEY_EPOCH2 + entry.ref_slot as u64,
                );
                let faulted = scenario.survey_faults.applied(&raw);
                for batch in link_samples(&faulted).chunks(scenario.batch_size) {
                    site.ingest_samples(Some(entry.ref_slot), plan.second_drift_day, batch)
                        .map_err(|e| e.to_string())?;
                }
            }
            for _ in 0..scenario.max_ticks {
                if site.maintenance_tick().map_err(|e| e.to_string())?.is_some() {
                    refreshes += 1;
                }
            }
            plan.second_drift_day
        }
        None => scenario.drift_day,
    };

    // Simulated crash/restart after the final refresh: the commit already
    // auto-persisted, so recovery comes from the snapshot alone — everything
    // below runs against the revived site, so any lossiness in the codec
    // shows up in the accuracy gates. (Pending refs and the live ingestion
    // window are deliberately *not* persisted; the stream gap already
    // guarantees the window is drained between streams.)
    if scenario.restart == RestartPoint::AfterRefresh {
        site = simulate_crash_restart(scenario, site, &scratch.as_ref().unwrap().0, planner)?;
    }

    // Primary accuracy gates: the *served* database against the drifted
    // truth. RMSE catches quality regressions; the mean signed error catches
    // systematic bias (it cannot hide inside the RMSE tolerance).
    let truth = world.fingerprint_truth(final_day);
    let snap = site.load();
    let recon_rmse_db =
        reconstruction_rmse(snap.system.db().rss(), &truth).map_err(|e| e.to_string())?;
    let recon_bias_db = {
        let diff = snap.system.db().rss().sub(&truth).map_err(|e| e.to_string())?;
        diff.iter().sum::<f64>() / (diff.rows() * diff.cols()).max(1) as f64
    };

    let drifted = eval_phase(
        scenario,
        &world,
        &site,
        &eval_cells,
        final_day,
        SEED_EVAL_DRIFTED,
        stream_gap_s,
        &mut offset_s,
    )?;

    let stats = site.stats();
    Ok(ScenarioReport {
        scenario: scenario.name.to_string(),
        seed: scenario.seed,
        drift_day: scenario.drift_day,
        eval_cells: eval_cells.len() as u64,
        day0,
        drifted,
        recon_rmse_db,
        recon_bias_db,
        refreshes,
        maintenance_checks: stats.maintenance_checks,
        snapshot_version: stats.version,
        pending_refs: stats.pending_refs,
        ingest_accepted: stats.ingest.accepted,
        ingest_dropped_late: stats.ingest.dropped_late,
        ingest_dropped_queue_batches: stats.ingest.dropped_queue_batches,
        ingest_rejected_outliers: stats.ingest.rejected_outliers,
        planned_cost: stats.planned_cost,
        actual_cost: stats.actual_cost,
        full_survey_cost: stats.full_survey_cost,
        plan_policy: stats.plan_policy.unwrap_or_default(),
    })
}

/// A unique throwaway data directory, removed on drop. Uniqueness matters:
/// the scenario tests run in parallel threads of one test binary and several
/// of them run the same restart scenario concurrently.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tafloc-testkit-{}-{name}-{id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Zero group-commit window: every admitted batch is fsynced before the
/// ingest call returns, so the scripted runs are deterministic regardless of
/// when the "kill" lands.
fn journal_config() -> JournalConfig {
    JournalConfig { flush_interval: std::time::Duration::ZERO, ..JournalConfig::default() }
}

/// Puts `site` on the real durability stack: snapshot store plus write-ahead
/// journal in `dir`, mirroring `ServerCtx::attach_durability`.
fn attach_durability(site: Site, name: &str, dir: &Path) -> Result<Site, String> {
    let store = Arc::new(SiteStore::open(dir).map_err(|e| e.to_string())?);
    let (journal, _) = Journal::open(store.dir(), &SiteStore::stem(name), journal_config(), 0)
        .map_err(|e| e.to_string())?;
    site.with_journal(Arc::new(journal)).with_persistence(store).map_err(|e| e.to_string())
}

/// The testkit's stand-in for `kill -9` + restart of the daemon: drop the
/// live site (nothing survives but the files the durability machinery
/// wrote), damage the directory per the scenario's [`CrashPoint`], then
/// recover through the same sequence `Server::recover_sites` performs —
/// snapshot, planner re-attach, journal replay from the snapshot's
/// watermark, persistence re-attach. Recovery problems (skipped snapshots, a
/// failed decode, a record that fails to replay) surface as scenario errors.
fn simulate_crash_restart(
    scenario: &Scenario,
    site: Site,
    dir: &Path,
    planner: Option<PlannerConfig>,
) -> Result<Site, String> {
    drop(site); // the kill
    inject_crash_damage(scenario.crash, scenario.name, dir)?;
    let store = SiteStore::open(dir).map_err(|e| e.to_string())?;
    let recovery = store.recover_all().map_err(|e| e.to_string())?;
    if !recovery.skipped.is_empty() {
        return Err(format!("recovery skipped snapshots: {:?}", recovery.skipped));
    }
    let persisted = recovery
        .sites
        .into_iter()
        .next()
        .ok_or_else(|| "no site recovered from the snapshot directory".to_string())?;
    let watermark = persisted.journal_watermark;
    let mut revived =
        Site::from_persisted(persisted, ClockMode::Manual).map_err(|e| e.to_string())?;
    if let Some(config) = planner {
        revived = revived.with_planning(config).map_err(|e| e.to_string())?;
    }
    let (journal, jrec) =
        Journal::open(store.dir(), &SiteStore::stem(scenario.name), journal_config(), watermark)
            .map_err(|e| e.to_string())?;
    let revived = revived.with_journal(Arc::new(journal));
    let applied = revived.replay_journal(&jrec.records);
    if applied != jrec.records.len() {
        return Err(format!("replayed only {applied} of {} journal records", jrec.records.len()));
    }
    revived.with_persistence(Arc::new(store)).map_err(|e| e.to_string())
}

/// Mutates the data directory the way a kill landing *inside* a write would
/// have left it. Every variant damages only bytes belonging to writes that
/// never completed — and were therefore never acknowledged — so recovery
/// must converge to the clean-kill state.
fn inject_crash_damage(crash: CrashPoint, name: &str, dir: &Path) -> Result<(), String> {
    let stem = SiteStore::stem(name);
    match crash {
        CrashPoint::CleanKill => Ok(()),
        CrashPoint::MidAppend => {
            // Append a partial frame to the active (newest) journal segment:
            // a header promising 96 payload bytes backed by only a handful,
            // exactly the torn tail a kill mid-`write(2)` leaves behind.
            let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
                .map_err(|e| e.to_string())?
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.extension().is_some_and(|x| x == "wal")
                        && p.file_name()
                            .and_then(|f| f.to_str())
                            .is_some_and(|f| f.starts_with(&stem))
                })
                .collect();
            segments.sort();
            let active = segments.pop().ok_or("no journal segment to tear")?;
            let mut torn = Vec::new();
            torn.extend_from_slice(&96u32.to_le_bytes());
            torn.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
            torn.extend_from_slice(&[0x5A; 11]);
            std::fs::OpenOptions::new()
                .append(true)
                .open(&active)
                .and_then(|mut f| f.write_all(&torn))
                .map_err(|e| e.to_string())
        }
        CrashPoint::MidRename => {
            // A snapshot temp file that never reached its rename. Garbage
            // contents on purpose: recovery must discard it unread.
            std::fs::write(
                dir.join(format!("{stem}.{:020}.tmp", u64::MAX)),
                b"half-written snapshot",
            )
            .map_err(|e| e.to_string())
        }
    }
}

/// One evaluation pass: stream a target at each eval cell through the live
/// ingestor (faults applied in raw stream time, then time-shifted), locate,
/// and summarize errors and stream health.
#[allow(clippy::too_many_arguments)]
fn eval_phase(
    scenario: &Scenario,
    world: &World,
    site: &Site,
    eval_cells: &[usize],
    day: f64,
    seed_base: u64,
    stream_gap_s: f64,
    offset_s: &mut f64,
) -> Result<PhaseMetrics, String> {
    let num_links = world.num_links();
    let mut errors = Vec::with_capacity(eval_cells.len());
    let mut imputed_slots = 0usize;
    let mut stale_slots = 0usize;
    for &cell in eval_cells {
        let raw =
            stream::stream_at_cell(world, day, cell, &scenario.stream, seed_base + cell as u64);
        let mut faulted = scenario.eval_faults.applied(&raw);
        for s in &mut faulted {
            s.t_s += *offset_s;
        }
        feed_with_overload(scenario, site, &faulted)?;
        site.advance_stream_clock(*offset_s + scenario.stream.duration_s);
        let (fix, assembled, _) =
            site.locate_stream().map_err(|e| format!("locate at cell {cell} (day {day}): {e}"))?;
        errors.push(localization_error(&fix.point, &world.grid().cell_center(cell)));
        imputed_slots += assembled.missing.len();
        stale_slots += assembled.stale.len();
        *offset_s += scenario.stream.duration_s + stream_gap_s;
    }
    let slots = (eval_cells.len() * num_links).max(1) as f64;
    Ok(PhaseMetrics {
        loc: ErrorSummary::from_errors(&errors).map_err(|e| e.to_string())?,
        imputation_rate: imputed_slots as f64 / slots,
        stale_rate: stale_slots as f64 / slots,
    })
}

/// Feeds one stream in batches, shedding everything beyond the scenario's
/// queue-overload cap with the same accounting the real bounded queue uses.
fn feed_with_overload(
    scenario: &Scenario,
    site: &Site,
    samples: &[RawSample],
) -> Result<(), String> {
    let batches: Vec<&[RawSample]> = samples.chunks(scenario.batch_size).collect();
    let admitted = if scenario.max_batches_per_stream == 0 {
        batches.len()
    } else {
        scenario.max_batches_per_stream.min(batches.len())
    };
    for batch in &batches[..admitted] {
        site.ingest_samples(None, 0.0, &link_samples(batch)).map_err(|e| e.to_string())?;
    }
    for batch in &batches[admitted..] {
        site.ingestor().record_queue_drop(batch.len());
    }
    Ok(())
}

fn link_samples(raw: &[RawSample]) -> Vec<LinkSample> {
    raw.iter().map(|r| LinkSample::new(r.link, r.t_s, r.rss_dbm)).collect()
}
