//! The structured outcome of one scenario run.
//!
//! A [`ScenarioReport`] carries every number the regression gates look at,
//! serialized through the crate's own canonical JSON ([`crate::json`]) so two
//! identical runs produce byte-identical files — that property *is* the
//! same-seed determinism gate.

use crate::json::{self, Json};
use tafloc_core::eval::ErrorSummary;

/// Localization + stream-health metrics for one evaluation pass (one day).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMetrics {
    /// Localization error summary (meters) over the evaluated cells.
    pub loc: ErrorSummary,
    /// Fraction of link slots imputed from the empty-room baseline,
    /// summed over all evaluated locates.
    pub imputation_rate: f64,
    /// Fraction of link slots served from a stale aggregate.
    pub stale_rate: f64,
}

impl PhaseMetrics {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("loc_mean_m".into(), Json::Num(self.loc.mean)),
            ("loc_median_m".into(), Json::Num(self.loc.median)),
            ("loc_p90_m".into(), Json::Num(self.loc.p90)),
            ("loc_max_m".into(), Json::Num(self.loc.max)),
            ("loc_count".into(), Json::Num(self.loc.count as f64)),
            ("imputation_rate".into(), Json::Num(self.imputation_rate)),
            ("stale_rate".into(), Json::Num(self.stale_rate)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(PhaseMetrics {
            loc: ErrorSummary {
                mean: v.num_field("loc_mean_m")?,
                median: v.num_field("loc_median_m")?,
                p90: v.num_field("loc_p90_m")?,
                max: v.num_field("loc_max_m")?,
                count: v.num_field("loc_count")? as usize,
            },
            imputation_rate: v.num_field("imputation_rate")?,
            stale_rate: v.num_field("stale_rate")?,
        })
    }
}

/// Everything one scenario run measured. Field order below is the golden
/// file's field order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (also the golden file stem).
    pub scenario: String,
    /// World seed the run used.
    pub seed: u64,
    /// Deployment day of the drifted phase.
    pub drift_day: f64,
    /// Number of cells evaluated per phase.
    pub eval_cells: u64,
    /// Day-0 metrics (fresh calibration).
    pub day0: PhaseMetrics,
    /// Post-drift metrics (after the survey/refresh machinery ran).
    pub drifted: PhaseMetrics,
    /// RMSE (dB) of the served fingerprint database against the drifted
    /// ground truth — the primary accuracy gate.
    pub recon_rmse_db: f64,
    /// Mean *signed* error (dB) of the served database against the drifted
    /// truth. Near zero for any honest reconstruction in any environment; a
    /// systematic output bias shifts it one-for-one, which is what makes the
    /// mutation check robust across RNG backends.
    pub recon_bias_db: f64,
    /// Auto-refreshes the maintenance ticks triggered.
    pub refreshes: u64,
    /// Maintenance ticks executed.
    pub maintenance_checks: u64,
    /// Final snapshot version.
    pub snapshot_version: u64,
    /// Whether un-applied reference measurements were still pending at exit.
    pub pending_refs: bool,
    /// Samples the live ingestor accepted.
    pub ingest_accepted: u64,
    /// Samples dropped as older than the window horizon.
    pub ingest_dropped_late: u64,
    /// Batches shed by the scenario's queue-overload cap.
    pub ingest_dropped_queue_batches: u64,
    /// Hampel gate exclusion events.
    pub ingest_rejected_outliers: u64,
    /// Link-measurements the attached planner budgeted across every survey
    /// round (full rounds count `n_refs x links`). Equals `actual_cost` for
    /// planless scenarios.
    pub planned_cost: u64,
    /// Link-measurements actually committed into the served database; the
    /// numerator of the cost-vs-accuracy gates.
    pub actual_cost: u64,
    /// What the same number of survey rounds would have cost with no
    /// planning (`rounds x n_refs x links`); the denominator of the gates.
    pub full_survey_cost: u64,
    /// Planner policy wire name, or the empty string when no planner is
    /// attached. A policy change is a shape change and demands a re-bless.
    pub plan_policy: String,
}

impl ScenarioReport {
    /// Canonical JSON text (byte-stable for identical runs).
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("drift_day".into(), Json::Num(self.drift_day)),
            ("eval_cells".into(), Json::Num(self.eval_cells as f64)),
            ("day0".into(), self.day0.to_json()),
            ("drifted".into(), self.drifted.to_json()),
            ("recon_rmse_db".into(), Json::Num(self.recon_rmse_db)),
            ("recon_bias_db".into(), Json::Num(self.recon_bias_db)),
            ("refreshes".into(), Json::Num(self.refreshes as f64)),
            ("maintenance_checks".into(), Json::Num(self.maintenance_checks as f64)),
            ("snapshot_version".into(), Json::Num(self.snapshot_version as f64)),
            ("pending_refs".into(), Json::Bool(self.pending_refs)),
            ("ingest_accepted".into(), Json::Num(self.ingest_accepted as f64)),
            ("ingest_dropped_late".into(), Json::Num(self.ingest_dropped_late as f64)),
            (
                "ingest_dropped_queue_batches".into(),
                Json::Num(self.ingest_dropped_queue_batches as f64),
            ),
            ("ingest_rejected_outliers".into(), Json::Num(self.ingest_rejected_outliers as f64)),
            ("planned_cost".into(), Json::Num(self.planned_cost as f64)),
            ("actual_cost".into(), Json::Num(self.actual_cost as f64)),
            ("full_survey_cost".into(), Json::Num(self.full_survey_cost as f64)),
            ("plan_policy".into(), Json::Str(self.plan_policy.clone())),
        ])
        .to_pretty()
    }

    /// Parses a report back from its canonical (or hand-edited) JSON form.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        Ok(ScenarioReport {
            scenario: v.str_field("scenario")?,
            seed: v.num_field("seed")? as u64,
            drift_day: v.num_field("drift_day")?,
            eval_cells: v.num_field("eval_cells")? as u64,
            day0: PhaseMetrics::from_json(
                v.get("day0").ok_or_else(|| "missing `day0` object".to_string())?,
            )?,
            drifted: PhaseMetrics::from_json(
                v.get("drifted").ok_or_else(|| "missing `drifted` object".to_string())?,
            )?,
            recon_rmse_db: v.num_field("recon_rmse_db")?,
            recon_bias_db: v.num_field("recon_bias_db")?,
            refreshes: v.num_field("refreshes")? as u64,
            maintenance_checks: v.num_field("maintenance_checks")? as u64,
            snapshot_version: v.num_field("snapshot_version")? as u64,
            pending_refs: v
                .get("pending_refs")
                .and_then(Json::as_bool)
                .ok_or_else(|| "missing or non-boolean field `pending_refs`".to_string())?,
            ingest_accepted: v.num_field("ingest_accepted")? as u64,
            ingest_dropped_late: v.num_field("ingest_dropped_late")? as u64,
            ingest_dropped_queue_batches: v.num_field("ingest_dropped_queue_batches")? as u64,
            ingest_rejected_outliers: v.num_field("ingest_rejected_outliers")? as u64,
            planned_cost: v.num_field("planned_cost")? as u64,
            actual_cost: v.num_field("actual_cost")? as u64,
            full_survey_cost: v.num_field("full_survey_cost")? as u64,
            plan_policy: v.str_field("plan_policy")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ScenarioReport {
        let phase = |m: f64| PhaseMetrics {
            loc: ErrorSummary { mean: m, median: m * 0.9, p90: m * 1.5, max: m * 2.0, count: 8 },
            imputation_rate: 0.125,
            stale_rate: 0.0,
        };
        ScenarioReport {
            scenario: "nominal".into(),
            seed: 42,
            drift_day: 60.0,
            eval_cells: 8,
            day0: phase(0.31),
            drifted: phase(0.44),
            recon_rmse_db: 1.0625,
            recon_bias_db: -0.03125,
            refreshes: 1,
            maintenance_checks: 3,
            snapshot_version: 1,
            pending_refs: false,
            ingest_accepted: 2880,
            ingest_dropped_late: 2,
            ingest_dropped_queue_batches: 0,
            ingest_rejected_outliers: 17,
            planned_cost: 36,
            actual_cost: 36,
            full_survey_cost: 36,
            plan_policy: "uncertainty-greedy".into(),
        }
    }

    #[test]
    fn report_round_trips_byte_identically() {
        let r = sample_report();
        let text = r.to_json();
        let back = ScenarioReport::from_json(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), text, "emit∘parse must be the identity on canonical text");
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = ScenarioReport::from_json("{\"scenario\": \"x\"}").unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }
}
