//! A deliberately tiny JSON layer for golden files.
//!
//! Golden baselines must be **byte-identical** across runs for the same-seed
//! determinism gate, which rules out anything whose output depends on map
//! iteration order or library version. This module owns the whole byte
//! format: objects are ordered vectors (emit order == insertion order), and
//! numbers are printed with `f64`'s `Display` (shortest round-trip form), so
//! identical bits in produce identical bytes out.
//!
//! The parser is a minimal recursive-descent reader for the same subset —
//! enough to read goldens back and to accept hand-edited files. It is not a
//! general-purpose JSON library and does not try to be.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve insertion/parse order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`; exact for integers < 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Required numeric field, with a path-bearing error.
    pub fn num_field(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
    }

    /// Required string field, with a path-bearing error.
    pub fn str_field(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the canonical golden-file form.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                // JSON has no NaN/inf; goldens must never contain them.
                assert!(v.is_finite(), "golden metrics must be finite, got {v}");
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the subset this module emits, plus arbitrary
/// whitespace). Returns the value or a position-bearing error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{token}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                c => {
                    // Re-assemble UTF-8 continuation bytes verbatim.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| "invalid UTF-8 in string".to_string())?,
                        );
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_object() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("nominal".into())),
            ("seed".into(), Json::Num(42.0)),
            ("rmse".into(), Json::Num(1.25)),
            ("nested".into(), Json::Obj(vec![("ok".into(), Json::Bool(true))])),
            ("list".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("nothing".into(), Json::Null),
        ]);
        let text = v.to_pretty();
        assert_eq!(parse(&text).unwrap(), v);
        // Emission is a pure function of the value: byte-identical on repeat.
        assert_eq!(text, parse(&text).unwrap().to_pretty());
    }

    #[test]
    fn float_formatting_is_shortest_round_trip() {
        let v = Json::Num(0.1 + 0.2);
        let text = v.to_pretty();
        assert_eq!(text.trim(), "0.30000000000000004");
        assert_eq!(parse(&text).unwrap().as_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let v = Json::Str("tab\t, quote\", backslash\\, newline\n, λ".into());
        let text = v.to_pretty();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse("\"\\u0041\\u03bb\"").unwrap(), Json::Str("Aλ".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn field_accessors() {
        let v = parse("{\"a\": 1.5, \"b\": \"x\"}").unwrap();
        assert_eq!(v.num_field("a").unwrap(), 1.5);
        assert_eq!(v.str_field("b").unwrap(), "x");
        assert!(v.num_field("missing").is_err());
        assert!(v.num_field("b").is_err());
    }
}
