//! Golden baselines and the accuracy-regression gates.
//!
//! Each built-in scenario has a committed baseline at
//! `results/golden/<name>.json` — the canonical JSON of a blessed
//! [`ScenarioReport`]. [`compare`] checks a fresh run against its golden
//! under the scenario's [`Tolerances`] and returns every violated gate;
//! `cargo test` fails on any non-empty result, and `tafloc testkit --bless`
//! rewrites the files after an intentional accuracy change.
//!
//! ## Tolerance policy
//!
//! * **Error metrics** (localization mean/p90, reconstruction RMSE) are
//!   one-sided: a run may beat its golden by any margin, but may exceed it
//!   by at most the tolerance. Goldens are generated under one RNG backend
//!   and checked under others, so the tolerance absorbs cross-backend
//!   statistical spread — while staying far below the ~3 dB shift a real
//!   reconstruction regression (or the mutation-check bias) produces.
//! * **Structural metrics** (imputation rate) are two-sided: they measure
//!   fault plumbing, not solver quality.
//! * **Counts** (refreshes, snapshot version, pending refs) are exact when
//!   the scenario says so: a fault either blocks the refresh path or it
//!   does not.

use crate::report::ScenarioReport;
use crate::runner::run_scenario;
use crate::scenario::{Scenario, Tolerances};
use std::path::{Path, PathBuf};

/// Directory holding the committed goldens, relative to the workspace root.
pub const GOLDEN_DIR: &str = "results/golden";

/// Workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/testkit sits two levels under the workspace root")
        .to_path_buf()
}

/// Path of one scenario's golden file.
pub fn golden_path(name: &str) -> PathBuf {
    workspace_root().join(GOLDEN_DIR).join(format!("{name}.json"))
}

/// Loads a committed golden.
pub fn load_golden(name: &str) -> Result<ScenarioReport, String> {
    let path = golden_path(name);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "no golden for `{name}` at {} ({e}); run `tafloc testkit --scenario {name} --bless`",
            path.display()
        )
    })?;
    ScenarioReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Writes `report` as the new golden for its scenario. Returns the path.
pub fn bless(report: &ScenarioReport) -> Result<PathBuf, String> {
    let path = golden_path(&report.scenario);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    std::fs::write(&path, report.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// Compares a run against its golden. Returns one message per violated
/// gate; empty means the run passes.
pub fn compare(report: &ScenarioReport, golden: &ScenarioReport, tol: &Tolerances) -> Vec<String> {
    let mut violations = Vec::new();
    let mut gate = |msg: String| violations.push(msg);

    if report.scenario != golden.scenario {
        gate(format!("scenario name `{}` != golden `{}`", report.scenario, golden.scenario));
    }
    if report.seed != golden.seed || report.eval_cells != golden.eval_cells {
        gate(format!(
            "run shape changed: seed {} / {} eval cells vs golden seed {} / {} — re-bless",
            report.seed, report.eval_cells, golden.seed, golden.eval_cells
        ));
    }
    if report.plan_policy != golden.plan_policy {
        gate(format!(
            "plan policy `{}` != golden `{}` — re-bless",
            report.plan_policy, golden.plan_policy
        ));
    }

    let mut upper = |label: &str, got: f64, base: f64, tol: f64| {
        if got > base + tol {
            gate(format!("{label}: {got:.4} exceeds golden {base:.4} + tolerance {tol:.4}"));
        }
    };
    upper(
        "day0 mean localization error (m)",
        report.day0.loc.mean,
        golden.day0.loc.mean,
        tol.day0_loc_mean_m,
    );
    upper(
        "drifted mean localization error (m)",
        report.drifted.loc.mean,
        golden.drifted.loc.mean,
        tol.loc_mean_m,
    );
    upper(
        "drifted p90 localization error (m)",
        report.drifted.loc.p90,
        golden.drifted.loc.p90,
        tol.loc_p90_m,
    );
    upper(
        "reconstruction RMSE (dB)",
        report.recon_rmse_db,
        golden.recon_rmse_db,
        tol.recon_rmse_db,
    );

    let mut two_sided = |label: &str, got: f64, base: f64, tol: f64| {
        if (got - base).abs() > tol {
            gate(format!("{label}: {got:.4} deviates from golden {base:.4} by more than {tol:.4}"));
        }
    };
    two_sided(
        "reconstruction bias (dB)",
        report.recon_bias_db,
        golden.recon_bias_db,
        tol.recon_bias_db,
    );
    two_sided(
        "day0 imputation rate",
        report.day0.imputation_rate,
        golden.day0.imputation_rate,
        tol.imputation_rate,
    );
    two_sided(
        "drifted imputation rate",
        report.drifted.imputation_rate,
        golden.drifted.imputation_rate,
        tol.imputation_rate,
    );
    two_sided(
        "day0 stale rate",
        report.day0.stale_rate,
        golden.day0.stale_rate,
        tol.imputation_rate,
    );
    two_sided(
        "drifted stale rate",
        report.drifted.stale_rate,
        golden.drifted.stale_rate,
        tol.imputation_rate,
    );

    if tol.exact_counts {
        if report.refreshes != golden.refreshes {
            gate(format!("refreshes: {} != golden {}", report.refreshes, golden.refreshes));
        }
        if report.snapshot_version != golden.snapshot_version {
            gate(format!(
                "snapshot version: {} != golden {}",
                report.snapshot_version, golden.snapshot_version
            ));
        }
        if report.pending_refs != golden.pending_refs {
            gate(format!(
                "pending refs: {} != golden {}",
                report.pending_refs, golden.pending_refs
            ));
        }
        // Measurement-cost accounting is a pure function of the scenario:
        // the planner is deterministic and every survey round's size is
        // scripted, so the counters must match the golden exactly. This is
        // the "budgeted refresh really cost <= 50%" gate.
        if report.planned_cost != golden.planned_cost {
            gate(format!(
                "planned cost: {} != golden {}",
                report.planned_cost, golden.planned_cost
            ));
        }
        if report.actual_cost != golden.actual_cost {
            gate(format!("actual cost: {} != golden {}", report.actual_cost, golden.actual_cost));
        }
        if report.full_survey_cost != golden.full_survey_cost {
            gate(format!(
                "full-survey cost: {} != golden {}",
                report.full_survey_cost, golden.full_survey_cost
            ));
        }
    }
    violations
}

/// Runs a scenario and gates it against its committed golden. `Ok` carries
/// the fresh report; `Err` carries the violated gates (or a run/load error).
pub fn run_and_check(scenario: &Scenario) -> Result<ScenarioReport, Vec<String>> {
    let report = run_scenario(scenario).map_err(|e| vec![e])?;
    let golden = load_golden(scenario.name).map_err(|e| vec![e])?;
    let violations = compare(&report, &golden, &scenario.tolerances);
    if violations.is_empty() {
        Ok(report)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PhaseMetrics;
    use tafloc_core::eval::ErrorSummary;

    fn report(mean: f64, rmse: f64) -> ScenarioReport {
        let phase = |m: f64| PhaseMetrics {
            loc: ErrorSummary { mean: m, median: m, p90: m * 1.5, max: m * 2.0, count: 8 },
            imputation_rate: 0.0,
            stale_rate: 0.0,
        };
        ScenarioReport {
            scenario: "x".into(),
            seed: 1,
            drift_day: 60.0,
            eval_cells: 8,
            day0: phase(mean),
            drifted: phase(mean),
            recon_rmse_db: rmse,
            recon_bias_db: 0.0,
            refreshes: 1,
            maintenance_checks: 5,
            snapshot_version: 1,
            pending_refs: false,
            ingest_accepted: 100,
            ingest_dropped_late: 0,
            ingest_dropped_queue_batches: 0,
            ingest_rejected_outliers: 0,
            planned_cost: 36,
            actual_cost: 36,
            full_survey_cost: 36,
            plan_policy: String::new(),
        }
    }

    #[test]
    fn identical_reports_pass_and_better_runs_pass() {
        let tol = Tolerances::default();
        let golden = report(0.5, 1.2);
        assert!(compare(&golden, &golden, &tol).is_empty());
        // Strictly better than the golden: still a pass (one-sided gates).
        assert!(compare(&report(0.2, 0.6), &golden, &tol).is_empty());
    }

    #[test]
    fn regressions_fail_the_matching_gate() {
        let tol = Tolerances::default();
        let golden = report(0.5, 1.2);
        let worse = report(0.5, 1.2 + tol.recon_rmse_db + 0.5);
        let violations = compare(&worse, &golden, &tol);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("reconstruction RMSE"), "{violations:?}");

        let mut blocked = report(0.5, 1.2);
        blocked.refreshes = 0;
        blocked.snapshot_version = 0;
        let violations = compare(&blocked, &golden, &tol);
        assert!(violations.iter().any(|v| v.contains("refreshes")), "{violations:?}");
    }

    #[test]
    fn shape_changes_demand_a_rebless() {
        let tol = Tolerances::default();
        let golden = report(0.5, 1.2);
        let mut reshaped = report(0.5, 1.2);
        reshaped.seed = 2;
        let violations = compare(&reshaped, &golden, &tol);
        assert!(violations.iter().any(|v| v.contains("re-bless")), "{violations:?}");
    }

    #[test]
    fn golden_path_is_under_results_golden() {
        let p = golden_path("nominal");
        assert!(p.ends_with("results/golden/nominal.json"), "{}", p.display());
    }
}
