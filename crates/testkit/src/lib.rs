//! # taf-testkit
//!
//! Deterministic simulation testing for the whole TafLoc stack: seeded,
//! declarative fault-injection scenarios driven through the real
//! ingest → assemble → LoLi-IR → locate → serve path, with committed golden
//! baselines gating accuracy regressions in `cargo test`.
//!
//! A [`Scenario`] pins everything that could make two runs differ — the
//! `taf-rfsim` world seed, per-stream seeds, a [`taf_rfsim::FaultSchedule`]
//! (loss bursts, link death/flap, drift ramps, reorder storms, clock skew,
//! queue overload), the ingest configuration and the maintenance cadence.
//! The [`runner`] executes it with **no wall-clock dependence**: the site
//! runs with a manual stream clock ([`tafloc_ingest::ClockMode::Manual`])
//! and manual maintenance ticks (`manual_tick` in
//! [`tafloc_serve::maintenance::MaintenancePolicy`]), so faults land at
//! scripted instants and the resulting [`ScenarioReport`] is a pure function
//! of the scenario — byte-identical JSON on every run.
//!
//! Reports are compared against goldens in `results/golden/*.json` with
//! explicit per-scenario [`Tolerances`] (see [`golden`] for the policy);
//! `tafloc testkit` runs any scenario from the CLI and `--bless` rewrites
//! the baselines after an intentional change.
//!
//! ```no_run
//! use taf_testkit::{find_scenario, run_scenario};
//! let scenario = find_scenario("nominal").unwrap();
//! let report = run_scenario(&scenario).unwrap();
//! assert_eq!(report.to_json(), run_scenario(&scenario).unwrap().to_json());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod golden;
pub mod json;
pub mod leaderboard;
pub mod report;
pub mod runner;
pub mod scenario;

pub use golden::{bless, compare, golden_path, load_golden, run_and_check};
pub use leaderboard::{leaderboard, render_markdown, LeaderboardRow};
pub use report::{PhaseMetrics, ScenarioReport};
pub use runner::run_scenario;
pub use scenario::{
    builtin_scenarios, find_scenario, CrashPoint, PlanSpec, RestartPoint, Scenario, Tolerances,
    WorldPreset,
};
