//! Declarative fault-injection scenarios.
//!
//! A [`Scenario`] couples a seeded `taf-rfsim` world with a
//! [`FaultSchedule`] and the knobs of the serving stack it drives. Everything
//! that could make two runs differ is pinned here — the world seed, the
//! per-stream seeds derived from it, the fault schedule, the batch cadence —
//! so a scenario is a *pure function* from its definition to a
//! [`crate::ScenarioReport`].
//!
//! Built-in scenarios live in [`builtin_scenarios`]; each has a committed
//! golden baseline under `results/golden/<name>.json` (see [`crate::golden`]
//! for the blessing workflow and tolerance policy).

use taf_plan::PlanPolicy;
use taf_rfsim::{Fault, FaultSchedule, StreamConfig};
use tafloc_ingest::IngestConfig;

/// Which simulated world a scenario runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldPreset {
    /// `WorldConfig::small_test()`: 5×6 grid, 6 links — fast enough for CI.
    SmallTest,
    /// `WorldConfig::paper_default()`: the paper's deployment (slower).
    PaperDefault,
}

impl WorldPreset {
    /// Materializes the preset.
    pub fn config(&self) -> taf_rfsim::WorldConfig {
        match self {
            WorldPreset::SmallTest => taf_rfsim::WorldConfig::small_test(),
            WorldPreset::PaperDefault => taf_rfsim::WorldConfig::paper_default(),
        }
    }
}

/// Gate tolerances for comparing a run against its golden baseline.
///
/// Error metrics are gated **one-sided** — a run may be better than its
/// golden, never `tol` worse — because the baselines are regenerated under
/// different RNG backends and a two-sided bound would reject legitimate
/// improvements. Structural metrics (imputation rate) are two-sided: they
/// reflect fault plumbing, not solver quality, and should not move at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Allowed increase (m) of day-0 mean localization error.
    pub day0_loc_mean_m: f64,
    /// Allowed increase (m) of post-drift mean localization error.
    pub loc_mean_m: f64,
    /// Allowed increase (m) of post-drift p90 localization error.
    pub loc_p90_m: f64,
    /// Allowed increase (dB) of fingerprint-reconstruction RMSE.
    pub recon_rmse_db: f64,
    /// Allowed absolute deviation (dB) of the mean signed reconstruction
    /// error. This is the bias trap: honest reconstructions sit near zero in
    /// every environment, while a systematic output bias moves this metric
    /// one-for-one and cannot hide inside the RMSE tolerance.
    pub recon_bias_db: f64,
    /// Allowed absolute deviation of the per-phase imputation rate.
    pub imputation_rate: f64,
    /// When `true`, `refreshes`, `snapshot_version` and `pending_refs` must
    /// match the golden exactly (the fault either blocks the refresh path or
    /// it does not — there is no tolerance on that).
    pub exact_counts: bool,
}

impl Default for Tolerances {
    fn default() -> Self {
        // Calibrated against a 5-world-seed sweep of the built-in suite:
        // each bound sits above the largest observed cross-world spread of
        // its metric, with margin, while staying far below the shift a
        // +3 dB reconstruction bias produces (the mutation check).
        Tolerances {
            day0_loc_mean_m: 0.9,
            loc_mean_m: 1.2,
            loc_p90_m: 1.8,
            recon_rmse_db: 1.2,
            recon_bias_db: 1.25,
            imputation_rate: 0.05,
            exact_counts: true,
        }
    }
}

/// Adaptive-sensing configuration for a scenario's *second* survey epoch.
///
/// When present, the runner attaches a [`taf_plan::Planner`] to the site,
/// runs the usual full survey + refresh at `drift_day`, then drives a second,
/// *budgeted* epoch at [`second_drift_day`](Self::second_drift_day): only the
/// reference cells named by the site's published
/// [`MeasurementPlan`](taf_plan::MeasurementPlan) are re-surveyed, the
/// history window fills in the rest, and the drifted evaluation runs against
/// the day the budgeted refresh had to track. The report's cost counters
/// (`planned_cost` / `actual_cost` / `full_survey_cost`) are what the
/// cost-vs-accuracy gates compare.
#[derive(Debug, Clone, Copy)]
pub struct PlanSpec {
    /// Measurement budget as a fraction of one full survey
    /// (`ref_count x num_links` link-measurements); `1.0` plans everything
    /// and is the accuracy twin the budgeted scenarios are gated against.
    pub budget_fraction: f64,
    /// Planner spending policy.
    pub policy: PlanPolicy,
    /// Deployment day of the second (budgeted) survey epoch; must be past
    /// `drift_day` so the monitor's cooldown has elapsed.
    pub second_drift_day: f64,
}

/// Where in the scripted run the simulated `kill -9` + restart happens.
///
/// Any value other than [`RestartPoint::None`] makes the runner attach the
/// real persistence stack — a [`tafloc_serve::store::SiteStore`] snapshot
/// directory plus a write-ahead [`tafloc_serve::journal::Journal`] with a
/// zero group-commit window — to the site for the *whole* run, exactly like
/// a daemon started with `--data-dir`. The "crash" drops the live site;
/// recovery goes snapshot → planner → journal replay, the same sequence
/// `Server::recover_sites` performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPoint {
    /// No restart; the site lives in memory for the whole run.
    None,
    /// After the drift-day survey batches are admitted (and journaled) but
    /// *before* any maintenance tick: the snapshot on disk predates the
    /// survey, so recovery must rebuild the capture round purely from
    /// journal replay for the post-restart ticks to refresh at all.
    BeforeRefresh,
    /// After the final refresh has committed (and auto-persisted): recovery
    /// comes from the snapshot alone, the journal having been pruned to the
    /// committed watermark.
    AfterRefresh,
    /// Plan scenarios only: between the first (full-survey) refresh and the
    /// second, budgeted epoch. The revived site must resume its published
    /// measurement plan mid-schedule — no forced full survey — with the
    /// same cumulative cost as the uninterrupted run.
    BetweenEpochs,
}

/// On-disk damage injected between "the process died" and "the daemon came
/// back", modeling *where inside a write* the kill landed. Applied on top of
/// whatever state the group-committed journal and snapshot store left
/// behind; every variant must recover to the same state as a clean kill,
/// because the damaged bytes belong to writes that never completed (and
/// were therefore never acknowledged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The kill landed between writes: files are exactly as the last
    /// completed fsync left them.
    CleanKill,
    /// The kill landed mid-`write(2)` of a journal append: the active
    /// segment ends in a partial frame whose header promises more bytes
    /// than exist. Recovery must truncate the torn tail and replay the
    /// intact prefix.
    MidAppend,
    /// The kill landed between `write(tmp)` and `rename(tmp, snap)` of a
    /// snapshot commit: a `.tmp` orphan sits next to the committed
    /// generations. Recovery must ignore (and clean up) the orphan and
    /// serve from the newest durable generation.
    MidRename,
}

/// One deterministic fault-injection scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique name; also the golden file stem.
    pub name: &'static str,
    /// One-line description for `tafloc testkit list`.
    pub description: &'static str,
    /// Simulated world.
    pub world: WorldPreset,
    /// World seed (all stream seeds derive from it plus fixed offsets).
    pub seed: u64,
    /// Reference-cell count `n`.
    pub ref_count: usize,
    /// Averaged samples per calibration measurement.
    pub survey_samples: usize,
    /// Deployment day of the drifted phase.
    pub drift_day: f64,
    /// Evaluate every `eval_stride`-th cell (1 = all cells).
    pub eval_stride: usize,
    /// Raw per-link sample stream shape (shared by eval and survey streams).
    pub stream: StreamConfig,
    /// Ingestion pipeline configuration for the site under test.
    pub ingest: IngestConfig,
    /// Faults applied to every *evaluation* stream (raw stream time,
    /// `0..stream.duration_s`, before the per-cell time offset).
    pub eval_faults: FaultSchedule,
    /// Faults applied to every *reference-survey* stream.
    pub survey_faults: FaultSchedule,
    /// Samples per ingest batch.
    pub batch_size: usize,
    /// Queue-overload model: at most this many batches are admitted per
    /// stream; the rest are shed and counted (`0` = unlimited).
    pub max_batches_per_stream: usize,
    /// Drift-monitor refresh threshold (dB).
    pub monitor_threshold_db: f64,
    /// Consecutive over-threshold checks before an auto-refresh.
    pub breach_streak: u32,
    /// Maintenance ticks driven after the drift-day survey.
    pub max_ticks: u32,
    /// Test-only LoLi-IR output bias (dB); `0.0` in every committed
    /// scenario. The mutation gate sets this to a non-zero value and asserts
    /// that the golden comparison fails.
    pub debug_bias_db: f64,
    /// Simulate a `kill -9` + restart at the given point: run the site on
    /// the real persistence stack (snapshot store + write-ahead journal),
    /// drop it, damage the directory per [`Scenario::crash`], and recover —
    /// everything after the restart point runs against the revived site.
    /// Accuracy metrics must be unaffected — recovery is supposed to be
    /// exact — which the restart-equivalence tests pin down.
    pub restart: RestartPoint,
    /// How the simulated kill mangles the data directory before recovery;
    /// only meaningful when [`Scenario::restart`] is not `None`.
    pub crash: CrashPoint,
    /// Adaptive-sensing second epoch; `None` runs the classic single-refresh
    /// flow with no planner attached.
    pub plan: Option<PlanSpec>,
    /// Golden-comparison tolerances.
    pub tolerances: Tolerances,
}

impl Scenario {
    /// A no-fault baseline with conservative defaults; the other builtins
    /// are deltas on this.
    fn base(name: &'static str, description: &'static str, seed: u64) -> Scenario {
        Scenario {
            name,
            description,
            world: WorldPreset::SmallTest,
            seed,
            ref_count: 6,
            survey_samples: 20,
            drift_day: 60.0,
            eval_stride: 4,
            stream: StreamConfig { duration_s: 30.0, ..Default::default() },
            ingest: IngestConfig::default(),
            eval_faults: FaultSchedule::none(),
            survey_faults: FaultSchedule::none(),
            batch_size: 16,
            max_batches_per_stream: 0,
            monitor_threshold_db: 1.0,
            breach_streak: 2,
            max_ticks: 5,
            debug_bias_db: 0.0,
            restart: RestartPoint::None,
            crash: CrashPoint::CleanKill,
            plan: None,
            tolerances: Tolerances::default(),
        }
    }

    /// Asserts internal consistency (fault links in range etc.). Called by
    /// the runner before doing any work.
    pub fn assert_valid(&self, num_links: usize) {
        assert!(self.ref_count >= 1, "ref_count must be >= 1");
        assert!(self.eval_stride >= 1, "eval_stride must be >= 1");
        assert!(self.batch_size >= 1, "batch_size must be >= 1");
        assert!(self.max_ticks >= 1, "max_ticks must be >= 1");
        if let Some(plan) = &self.plan {
            assert!(
                plan.budget_fraction > 0.0 && plan.budget_fraction <= 1.0,
                "budget_fraction must be in (0, 1]"
            );
            assert!(
                plan.second_drift_day > self.drift_day,
                "the budgeted epoch must come after the first drift day"
            );
        }
        if self.restart == RestartPoint::BetweenEpochs {
            assert!(self.plan.is_some(), "BetweenEpochs only exists in plan scenarios");
        }
        if self.crash != CrashPoint::CleanKill {
            assert!(self.restart != RestartPoint::None, "a crash point needs a restart to act on");
        }
        self.stream.assert_valid();
        for f in self.eval_faults.faults.iter().chain(self.survey_faults.faults.iter()) {
            f.assert_valid();
            let link = match f {
                Fault::LossBurst { link, .. } | Fault::DriftRamp { link, .. } => *link,
                Fault::LinkDeath { link, .. }
                | Fault::LinkFlap { link, .. }
                | Fault::ClockSkew { link, .. } => Some(*link),
                Fault::ReorderStorm { .. } => None,
            };
            if let Some(l) = link {
                assert!(l < num_links, "fault names link {l}, world has {num_links}");
            }
        }
    }
}

/// The built-in scenario suite — every entry has a committed golden under
/// `results/golden/`.
pub fn builtin_scenarios() -> Vec<Scenario> {
    let mut nominal =
        Scenario::base("nominal", "clean streams, drift at day 60, one auto-refresh expected", 42);
    nominal.tolerances = Tolerances::default();

    let mut lossy = Scenario::base(
        "lossy-eval",
        "loss burst + link flap + reorder storm on every evaluation stream",
        43,
    );
    lossy.eval_faults = FaultSchedule::new([
        Fault::LossBurst { start_s: 8.0, end_s: 14.0, link: None },
        Fault::LinkFlap { link: 3, start_s: 0.0, period_s: 5.0 },
        Fault::ReorderStorm { start_s: 15.0, end_s: 25.0, seed: 7 },
    ]);

    let mut dead =
        Scenario::base("dead-link", "link 2 dies mid-stream and link 4 runs on a skewed clock", 44);
    dead.eval_faults = FaultSchedule::new([
        Fault::LinkDeath { link: 2, at_s: 10.0 },
        Fault::ClockSkew { link: 4, offset_s: -2.0 },
    ]);
    // A dead link goes stale, then is imputed; both rates move, so give the
    // structural gate a little more slack than the clean scenarios get.
    dead.tolerances = Tolerances { imputation_rate: 0.08, ..Tolerances::default() };

    let mut outage = Scenario::base(
        "survey-outage",
        "queue overload on eval streams; a dead link blocks every ref capture, so no refresh",
        45,
    );
    outage.max_batches_per_stream = 2;
    outage.survey_faults = FaultSchedule::new([Fault::LinkDeath { link: 1, at_s: 0.0 }]);
    // The refresh never happens (that *is* the gate: exact_counts pins
    // refreshes to zero), so the served database stays at day 0 and the
    // reconstruction gap is the raw drift magnitude — which varies a lot
    // from world to world. The error gates here only catch catastrophic
    // regressions; the structural/count gates carry the scenario.
    outage.tolerances = Tolerances {
        loc_mean_m: 1.5,
        loc_p90_m: 2.2,
        recon_rmse_db: 6.0,
        recon_bias_db: 8.0,
        imputation_rate: 0.08,
        ..Tolerances::default()
    };

    let mut restart = Scenario::base(
        "restart-recovery",
        "daemon is killed right after the drift refresh; recovery from the snapshot must serve on",
        46,
    );
    restart.restart = RestartPoint::AfterRefresh;
    // The live ingestion window is deliberately not persisted, so a restart
    // is only *bit-equal* when the window state cannot leak across streams:
    // with the ring capped below a stream's per-link sample count (~30 at
    // 1 Hz x 30 s), every stream fully displaces the previous one and the
    // warm and cold ingestors converge on the same newest-16 samples.
    restart.ingest = IngestConfig { window_capacity: 16, ..IngestConfig::default() };

    // Adaptive-sensing triplet: one world (seed 47), three sensing policies.
    // `plan-full-survey` re-surveys everything in the second epoch and is the
    // accuracy twin; the two budgeted scenarios spend half that and are gated
    // on staying within tolerance of their own goldens (and, in the scenario
    // suite, of the twin). Exact cost counters are pinned by `exact_counts`.
    let mut plan_full = Scenario::base(
        "plan-full-survey",
        "planner attached with a full budget: second epoch re-surveys every reference cell",
        47,
    );
    plan_full.plan = Some(PlanSpec {
        budget_fraction: 1.0,
        policy: PlanPolicy::UncertaintyGreedy,
        second_drift_day: 90.0,
    });
    // A budgeted refresh carries the skipped reference columns from the
    // previous epoch's history, so the served database legitimately sits
    // further from the day-90 truth than a full re-survey would — and its
    // cross-backend spread is wider. The localization gates stay at their
    // defaults: the end metric is what the cost saving must not regress.
    plan_full.tolerances =
        Tolerances { recon_rmse_db: 1.5, recon_bias_db: 1.5, ..Tolerances::default() };

    let mut plan_uncertainty = plan_full.clone();
    plan_uncertainty.name = "plan-uncertainty-50";
    plan_uncertainty.description =
        "uncertainty-greedy planner at half budget: least-confident cells re-surveyed first";
    plan_uncertainty.plan = Some(PlanSpec {
        budget_fraction: 0.5,
        policy: PlanPolicy::UncertaintyGreedy,
        second_drift_day: 90.0,
    });

    let mut plan_fixed = plan_full.clone();
    plan_fixed.name = "plan-fixed-50";
    plan_fixed.description =
        "fixed-schedule planner at half budget: rotating round-robin re-survey baseline";
    plan_fixed.plan = Some(PlanSpec {
        budget_fraction: 0.5,
        policy: PlanPolicy::FixedSchedule,
        second_drift_day: 90.0,
    });

    // The durability headline for adaptive sensing: same world and budget as
    // `plan-uncertainty-50`, but the daemon is killed between the first
    // (full-survey) refresh and the budgeted epoch. The revived site must
    // resume its persisted measurement plan mid-schedule — the golden pins
    // the cumulative cost counters to the uninterrupted run's values.
    let mut plan_restart = plan_uncertainty.clone();
    plan_restart.name = "plan-restart";
    plan_restart.description =
        "daemon killed between the planned epochs; the recovered site resumes its schedule";
    plan_restart.restart = RestartPoint::BetweenEpochs;
    // Same warm/cold ingestion-window convergence argument as
    // `restart-recovery`: cap the ring below a stream's sample count so the
    // revived (empty) ingestor and the uninterrupted one agree bit-for-bit
    // by the time the drifted evaluation reads a verdict.
    plan_restart.ingest = IngestConfig { window_capacity: 16, ..IngestConfig::default() };

    vec![
        nominal,
        lossy,
        dead,
        outage,
        restart,
        plan_full,
        plan_uncertainty,
        plan_fixed,
        plan_restart,
    ]
}

/// Looks a built-in scenario up by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_are_unique_and_findable() {
        let all = builtin_scenarios();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name, b.name);
            }
            assert_eq!(find_scenario(a.name).unwrap().name, a.name);
        }
        assert!(find_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn builtins_validate_against_the_small_world() {
        let links = taf_rfsim::WorldConfig::small_test().num_links;
        for s in builtin_scenarios() {
            s.assert_valid(links);
            assert_eq!(s.debug_bias_db, 0.0, "committed scenarios must not carry a bias");
        }
    }
}
