//! Property-based tests of the per-link window invariants.
//!
//! These pin the contracts the assembly layer silently relies on: the
//! Hampel-gated aggregate never emits a non-finite value for finite input,
//! the EWMA (and median) reduction stays inside the envelope of the values
//! the window has seen, and eviction keeps the window bounded by both the
//! ring capacity and the time horizon under arbitrary arrival orderings.

use proptest::prelude::*;
use tafloc_ingest::{Aggregator, IngestConfig, LinkSample, LinkWindow};

/// Strategy: a batch of finite `(t_s, rss_dbm)` samples in arbitrary time
/// order. RSS spans the full plausible radio range; timestamps deliberately
/// interleave early/late arrivals so reordering and late-drop paths run.
fn sample_batch() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0..100.0f64, -100.0..-20.0f64), 1..64)
}

/// Strategy: an ingest configuration with both aggregators, small capacities
/// and short horizons so every bound is actually exercised.
fn config() -> impl Strategy<Value = IngestConfig> {
    (1usize..16, 1.0..40.0f64, 0.0..6.0f64, 0.0..2.0f64, 0usize..2, 0.05..1.0f64).prop_map(
        |(capacity, window_s, hampel_k, floor, kind, alpha)| IngestConfig {
            window_capacity: capacity,
            window_s,
            min_samples: 1,
            hampel_k,
            hampel_floor_db: floor,
            aggregator: if kind == 0 { Aggregator::Median } else { Aggregator::Ewma { alpha } },
            ..IngestConfig::default()
        },
    )
}

/// Feeds samples with the stream clock at the newest timestamp seen so far
/// (exactly how the pipeline drives windows). Returns the final clock.
fn feed(window: &mut LinkWindow, samples: &[(f64, f64)], cfg: &IngestConfig) -> f64 {
    let mut now = f64::NEG_INFINITY;
    for &(t, rss) in samples {
        now = now.max(t);
        window.push(&LinkSample::new(0, t, rss), now, cfg);
    }
    now
}

proptest! {
    /// The Hampel gate and both reductions are closed over finite input:
    /// no NaN or ±inf ever reaches the published aggregate, and the
    /// bookkeeping counts stay consistent with the retained window.
    #[test]
    fn aggregate_never_emits_non_finite((samples, cfg) in (sample_batch(), config())) {
        let mut w = LinkWindow::new();
        feed(&mut w, &samples, &cfg);
        if let Some(agg) = w.aggregate(&cfg) {
            prop_assert!(agg.rss_dbm.is_finite(), "rss {:?} cfg {cfg:?}", agg.rss_dbm);
            prop_assert!(agg.spread_db.is_finite() && agg.spread_db >= 0.0);
            prop_assert!(agg.last_t_s.is_finite());
            prop_assert!(agg.samples == w.len());
            prop_assert!(agg.rejected < agg.samples, "the median itself always survives");
        } else {
            prop_assert!(w.is_empty(), "only an empty window may decline to aggregate");
        }
    }

    /// The EWMA reduction is a convex combination of retained samples, so it
    /// can never leave the min/max envelope of the values offered to the
    /// window (retained ⊆ accepted ⊆ offered). The median obeys the same
    /// bound; both are checked so a future aggregator edit cannot
    /// extrapolate.
    #[test]
    fn aggregate_stays_within_observed_envelope(
        (samples, cfg, alpha) in (sample_batch(), config(), 0.05..1.0f64)
    ) {
        let lo = samples.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
        for aggregator in [Aggregator::Ewma { alpha }, Aggregator::Median] {
            let cfg = IngestConfig { aggregator, ..cfg };
            let mut w = LinkWindow::new();
            feed(&mut w, &samples, &cfg);
            if let Some(agg) = w.aggregate(&cfg) {
                prop_assert!(
                    lo - 1e-12 <= agg.rss_dbm && agg.rss_dbm <= hi + 1e-12,
                    "{:?} escaped [{lo}, {hi}] under {aggregator:?}",
                    agg.rss_dbm
                );
            }
        }
    }

    /// Under arbitrary timestamp orderings the window never exceeds its ring
    /// capacity, never retains a sample older than the horizon, and keeps
    /// its samples in non-decreasing time order (checked after every push,
    /// not just at the end).
    #[test]
    fn eviction_bounds_length_and_horizon((samples, cfg) in (sample_batch(), config())) {
        let mut w = LinkWindow::new();
        let mut now = f64::NEG_INFINITY;
        for &(t, rss) in &samples {
            now = now.max(t);
            let accepted = w.push(&LinkSample::new(0, t, rss), now, &cfg);
            prop_assert!(accepted == (t >= now - cfg.window_s));
            prop_assert!(w.len() <= cfg.window_capacity, "{} > {}", w.len(), cfg.window_capacity);
            if let Some(last) = w.last_t_s() {
                prop_assert!(last >= now - cfg.window_s && last <= now);
            }
        }
        // A clock jump far past the newest sample must drain the window.
        w.evict(now + cfg.window_s + 1.0, &cfg);
        prop_assert!(w.is_empty(), "horizon eviction must clear aged-out samples");
    }
}
