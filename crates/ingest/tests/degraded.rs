//! Degraded-input end-to-end: raw simulated radio streams, thinned and
//! mangled, through the full pipeline into `TafLoc::localize`.
//!
//! The contract under test: whatever the transport does to the sample stream
//! — heavy loss, jitter, reordering, entirely dead links — the assembled
//! fingerprint vector is always finite (imputed and flagged, never NaN), and
//! at realistic loss rates it still localizes to the same cell as a clean
//! stream.

use taf_rfsim::{campaign, stream, RawSample, StreamConfig, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_ingest::{IngestConfig, Ingestor, LinkFlag, LinkSample};

const SAMPLES: usize = 20;
const TARGET_CELL: usize = 9;

/// A calibrated small-test system; each test pins its own world seed
/// (41–43 below), and the raw-sample fixtures are hand-written, so the
/// degradation outcomes asserted here are exact, not statistical.
fn calibrated(seed: u64) -> (World, TafLoc) {
    let world = World::new(WorldConfig::small_test(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, SAMPLES);
    let e0 = campaign::empty_snapshot(&world, 0.0, SAMPLES);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let config = TafLocConfig { ref_count: 6, ..Default::default() };
    (world, TafLoc::calibrate(config, db, e0).unwrap())
}

fn ingest(world: &World, raw: &[RawSample]) -> Ingestor {
    let ing = Ingestor::new(IngestConfig::default(), world.num_links(), 2).unwrap();
    let samples: Vec<LinkSample> =
        raw.iter().map(|r| LinkSample::new(r.link, r.t_s, r.rss_dbm)).collect();
    for chunk in samples.chunks(64) {
        ing.apply_batch(chunk);
    }
    ing
}

#[test]
fn twenty_five_percent_loss_still_localizes_to_the_clean_cell() {
    let (world, sys) = calibrated(41);
    let clean_cfg = StreamConfig { duration_s: 60.0, ..Default::default() };
    let lossy_cfg =
        StreamConfig { loss_rate: 0.25, jitter_frac: 0.5, reorder_prob: 0.2, ..clean_cfg };

    let clean = ingest(&world, &stream::stream_at_cell(&world, 0.0, TARGET_CELL, &clean_cfg, 3));
    let lossy = ingest(&world, &stream::stream_at_cell(&world, 0.0, TARGET_CELL, &lossy_cfg, 3));

    let v_clean = clean.assemble(sys.empty_rss()).unwrap();
    let v_lossy = lossy.assemble(sys.empty_rss()).unwrap();
    assert!(v_clean.is_complete(), "lossless stream covers every link");
    assert!(v_lossy.missing.is_empty(), "25% loss must not kill whole links");
    assert!(
        v_lossy.y.iter().all(|v| v.is_finite()),
        "assembled vectors must never contain NaN: {:?}",
        v_lossy.y
    );
    // The loss visibly thinned the windows.
    assert!(v_lossy.window_samples < v_clean.window_samples);

    let fix_clean = sys.localize(&v_clean.y).unwrap();
    let fix_lossy = sys.localize(&v_lossy.y).unwrap();
    assert_eq!(
        fix_lossy.cell, fix_clean.cell,
        "robust aggregation must absorb 25% loss without moving the fix"
    );

    // And the clean stream agrees with the averaged campaign path the rest of
    // the repo is built on.
    let y_avg = campaign::snapshot_at_cell(&world, 0.0, TARGET_CELL, SAMPLES);
    assert_eq!(fix_clean.cell, sys.localize(&y_avg).unwrap().cell);
}

#[test]
fn dead_links_are_imputed_and_flagged_but_never_nan() {
    let (world, sys) = calibrated(42);
    let cfg = StreamConfig { duration_s: 60.0, loss_rate: 0.2, ..Default::default() };
    let raw = stream::stream_at_cell(&world, 0.0, TARGET_CELL, &cfg, 5);
    // Kill two radios outright: their links never report a single sample.
    let dead = [0usize, 3usize];
    let surviving: Vec<RawSample> = raw.into_iter().filter(|r| !dead.contains(&r.link)).collect();
    let ing = ingest(&world, &surviving);

    let v = ing.assemble(sys.empty_rss()).unwrap();
    assert_eq!(v.missing, dead, "dead links must be flagged as imputed");
    for &link in &dead {
        assert_eq!(v.flags[link], LinkFlag::Imputed);
        assert_eq!(v.y[link], sys.empty_rss()[link], "imputed from the baseline");
    }
    assert!(v.y.iter().all(|x| x.is_finite()), "no NaN even with dead links");

    // Localization still returns a valid in-range fix instead of panicking.
    let fix = sys.localize(&v.y).unwrap();
    assert!(fix.cell < world.num_cells());
    assert!(fix.best_distance.is_finite());
}

#[test]
fn heavy_degradation_never_produces_non_finite_vectors() {
    let (world, sys) = calibrated(43);
    // Brutal transport: 60% loss, full-period jitter, constant reordering.
    let cfg = StreamConfig {
        duration_s: 120.0,
        loss_rate: 0.6,
        jitter_frac: 1.0,
        reorder_prob: 0.5,
        ..Default::default()
    };
    let ing = ingest(&world, &stream::stream_at_cell(&world, 0.0, TARGET_CELL, &cfg, 7));
    let v = ing.assemble(sys.empty_rss()).unwrap();
    assert!(v.y.iter().all(|x| x.is_finite()));
    assert_eq!(v.y.len(), world.num_links());
    assert_eq!(v.flags.len(), world.num_links());
    let fix = sys.localize(&v.y).unwrap();
    assert!(fix.cell < world.num_cells());
}
