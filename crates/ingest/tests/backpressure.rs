//! Admission-control conservation under concurrent producers.
//!
//! The credit policy's contract is that **nothing is lost silently**: every
//! offered batch gets exactly one verdict, and
//! `admitted + deferred + rejected == offered` holds in batches and samples
//! even with several producers racing a deliberately tiny credit budget.
//! The legacy shed-and-count [`IngestQueue`] policy stays available for
//! radio bridges that must never block; its accounting is checked here too.

use std::sync::Arc;
use std::time::Duration;
use tafloc_ingest::{Admission, CreditQueue, IngestConfig, IngestQueue, Ingestor, LinkSample};

const PRODUCERS: usize = 4;
const ROUNDS: usize = 60;
const BATCH: usize = 8;

fn ingestor() -> Arc<Ingestor> {
    Arc::new(Ingestor::new(IngestConfig::default(), 2, 1).unwrap())
}

fn batch(producer: usize, round: usize) -> Vec<LinkSample> {
    (0..BATCH)
        .map(|k| {
            let t = (round * BATCH + k) as f64 * 0.01 + producer as f64 * 1e-4;
            LinkSample::new(k % 2, t, -50.0)
        })
        .collect()
}

#[test]
fn concurrent_offers_past_capacity_conserve_every_verdict() {
    // Capacity of three batches' worth of samples against four producers:
    // the gate is guaranteed to defer under pressure.
    let queue = Arc::new(CreditQueue::spawn(ingestor(), 3 * BATCH));

    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = Arc::clone(&queue);
            std::thread::spawn(move || {
                let (mut admitted, mut deferred, mut rejected) = (0u64, 0u64, 0u64);
                for round in 0..ROUNDS {
                    // Short deadline so contention actually produces
                    // Deferred verdicts instead of serializing the test.
                    match q.offer(batch(p, round), Duration::from_millis(2)).unwrap() {
                        Admission::Admitted => admitted += 1,
                        Admission::Deferred { retry_after_ms } => {
                            assert!(retry_after_ms >= 1, "back-off hint must be usable");
                            deferred += 1;
                        }
                        Admission::Rejected => rejected += 1,
                    }
                }
                (admitted, deferred, rejected)
            })
        })
        .collect();

    let (mut admitted, mut deferred, mut rejected) = (0u64, 0u64, 0u64);
    for h in handles {
        let (a, d, r) = h.join().unwrap();
        admitted += a;
        deferred += d;
        rejected += r;
    }

    let offered = (PRODUCERS * ROUNDS) as u64;
    assert_eq!(admitted + deferred + rejected, offered, "client-side verdicts conserve");
    assert_eq!(rejected, 0, "no batch exceeds the budget and the queue never closed");
    assert!(admitted > 0, "the drain makes progress, so offers must land");

    let stats = queue.stats();
    assert_eq!(stats.offered_batches, offered);
    assert_eq!(stats.offered_samples, offered * BATCH as u64);
    assert_eq!(stats.admitted_batches, admitted, "server-side counters match the verdicts");
    assert_eq!(stats.deferred_batches, deferred);
    assert_eq!(stats.rejected_batches, rejected);
    assert_eq!(
        stats.admitted_samples + stats.deferred_samples + stats.rejected_samples,
        stats.offered_samples,
        "sample-level conservation"
    );
    assert_eq!(stats.silent_samples(), 0, "nothing evaporated without a verdict");

    // Every admitted sample reaches the pipeline: after close() drains, the
    // pipeline's own per-sample accounting must add up to exactly the
    // admitted count (no queue-level drops on the credit path).
    let mut queue = Arc::into_inner(queue).expect("all producers joined");
    queue.close();
    let pipe = queue.ingestor().stats();
    assert_eq!(
        pipe.accepted + pipe.dropped_late + pipe.dropped_unknown_link + pipe.dropped_non_finite,
        stats.admitted_samples,
        "pipeline saw exactly the admitted samples"
    );
    assert_eq!(pipe.dropped_queue_samples, 0, "the credit path never sheds");
    assert_eq!(queue.depth_samples(), 0, "close() drained the queue");
}

#[test]
fn legacy_shed_policy_still_counts_what_it_drops() {
    // The drain thread keeps consuming, so a Dropped outcome cannot be
    // forced deterministically — but conservation must hold either way:
    // queued + dropped == pushed, and dropped samples land in the
    // pipeline's shed counters rather than vanishing.
    let mut queue = IngestQueue::spawn(ingestor(), 1);
    let pushed = 200u64;
    let mut queued = 0u64;
    for round in 0..pushed {
        match queue.push(batch(0, round as usize)).unwrap() {
            tafloc_ingest::PushOutcome::Queued => queued += 1,
            tafloc_ingest::PushOutcome::Dropped => {}
        }
    }
    queue.close();
    let pipe = queue.ingestor().stats();
    assert_eq!(pipe.dropped_queue_batches, pushed - queued, "every shed batch is counted");
    assert_eq!(pipe.dropped_queue_samples, (pushed - queued) * BATCH as u64);
    assert_eq!(
        pipe.accepted + pipe.dropped_late + pipe.dropped_unknown_link + pipe.dropped_non_finite,
        queued * BATCH as u64,
        "every queued sample reached the pipeline"
    );
}
