//! The raw unit of ingestion: one timestamped RSS reading on one link.

use serde::{Deserialize, Serialize};

/// One raw RSS sample as a radio (or the simulator) emits it.
///
/// Timestamps are seconds on the *stream clock* — any monotonic-enough clock
/// shared by the radios. The pipeline never consults wall time: staleness and
/// window horizons are measured against the newest timestamp seen so far, so
/// replaying a recorded stream is bit-for-bit reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSample {
    /// Link index in the site's deployment order (`0..M`).
    pub link: usize,
    /// Sample time in seconds on the stream clock.
    pub t_s: f64,
    /// Received signal strength in dBm.
    pub rss_dbm: f64,
}

impl LinkSample {
    /// Convenience constructor.
    pub fn new(link: usize, t_s: f64, rss_dbm: f64) -> Self {
        LinkSample { link, t_s, rss_dbm }
    }

    /// Whether the sample is usable at all: finite time and RSS.
    pub fn is_finite(&self) -> bool {
        self.t_s.is_finite() && self.rss_dbm.is_finite()
    }
}

/// Per-batch accounting returned by [`crate::Ingestor::apply_batch`].
///
/// Exactly one counter accounts for every sample in the batch:
/// `accepted + dropped_late + dropped_unknown_link + dropped_non_finite`
/// equals the batch length. Outlier rejection happens later, at aggregation
/// time, and is reported in cumulative [`crate::IngestStats`] instead —
/// a sample that looks like an outlier now may be rehabilitated once its
/// neighbors arrive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Samples admitted into a window.
    pub accepted: u64,
    /// Samples older than the window horizon on arrival.
    pub dropped_late: u64,
    /// Samples naming a link the pipeline does not know.
    pub dropped_unknown_link: u64,
    /// Samples with a NaN/infinite time or RSS.
    pub dropped_non_finite: u64,
}

impl BatchReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: &BatchReport) {
        self.accepted += other.accepted;
        self.dropped_late += other.dropped_late;
        self.dropped_unknown_link += other.dropped_unknown_link;
        self.dropped_non_finite += other.dropped_non_finite;
    }

    /// Total samples the report accounts for.
    pub fn total(&self) -> u64 {
        self.accepted + self.dropped_late + self.dropped_unknown_link + self.dropped_non_finite
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_check() {
        assert!(LinkSample::new(0, 1.0, -50.0).is_finite());
        assert!(!LinkSample::new(0, f64::NAN, -50.0).is_finite());
        assert!(!LinkSample::new(0, 1.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn report_merge_accounts_for_everything() {
        let mut a = BatchReport { accepted: 3, dropped_late: 1, ..Default::default() };
        let b = BatchReport { accepted: 2, dropped_unknown_link: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.total(), 10);
        assert_eq!(a.accepted, 5);
    }

    #[test]
    fn sample_serde_round_trip() {
        let s = LinkSample::new(3, 12.25, -48.5);
        let json = serde_json::to_string(&s).unwrap();
        let back: LinkSample = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
