//! Producer-side backpressure: a bounded batch queue in front of the
//! pipeline.
//!
//! The synchronous [`crate::Ingestor::apply_batch`] is cheap, but a radio
//! bridge must never block its receive loop behind a slow consumer — under
//! overload the correct behavior for a *measurement* stream is to shed the
//! oldest information and keep counting what was shed. `IngestQueue` wraps a
//! `std::sync::mpsc::sync_channel` of sample batches: `push` either enqueues
//! or drops-and-counts, and a single worker thread drains batches into the
//! shared [`crate::Ingestor`].

use crate::error::{IngestError, Result};
use crate::pipeline::Ingestor;
use crate::sample::LinkSample;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Outcome of a non-blocking push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The batch was queued for ingestion.
    Queued,
    /// The queue was full; the batch was dropped and counted.
    Dropped,
}

/// A bounded, drop-counting front door to an [`Ingestor`].
#[derive(Debug)]
pub struct IngestQueue {
    ingestor: Arc<Ingestor>,
    tx: Option<SyncSender<Vec<LinkSample>>>,
    worker: Option<JoinHandle<()>>,
    closed: AtomicBool,
}

impl IngestQueue {
    /// Spawns the drain worker with room for `capacity_batches` in-flight
    /// batches (clamped to at least 1).
    pub fn spawn(ingestor: Arc<Ingestor>, capacity_batches: usize) -> IngestQueue {
        let (tx, rx) = sync_channel::<Vec<LinkSample>>(capacity_batches.max(1));
        let drain = Arc::clone(&ingestor);
        let worker = std::thread::Builder::new()
            .name("tafloc-ingest-drain".to_string())
            .spawn(move || {
                while let Ok(batch) = rx.recv() {
                    drain.apply_batch(&batch);
                }
            })
            .expect("spawning the ingest drain thread cannot fail");
        IngestQueue { ingestor, tx: Some(tx), worker: Some(worker), closed: AtomicBool::new(false) }
    }

    /// The pipeline behind the queue.
    pub fn ingestor(&self) -> &Arc<Ingestor> {
        &self.ingestor
    }

    /// Non-blocking enqueue. A full queue drops the batch and records it in
    /// the pipeline's drop counters; a closed queue is an error.
    pub fn push(&self, batch: Vec<LinkSample>) -> Result<PushOutcome> {
        let tx = self.tx.as_ref().ok_or(IngestError::QueueClosed)?;
        if self.closed.load(Ordering::Acquire) {
            return Err(IngestError::QueueClosed);
        }
        let n = batch.len();
        match tx.try_send(batch) {
            Ok(()) => Ok(PushOutcome::Queued),
            Err(TrySendError::Full(_)) => {
                self.ingestor.record_queue_drop(n);
                Ok(PushOutcome::Dropped)
            }
            Err(TrySendError::Disconnected(_)) => Err(IngestError::QueueClosed),
        }
    }

    /// Closes the queue and waits for the worker to drain everything queued.
    /// Safe to call once; `drop` calls it implicitly.
    pub fn close(&mut self) {
        self.closed.store(true, Ordering::Release);
        // Dropping the sender ends the worker's recv loop after the drain.
        self.tx = None;
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for IngestQueue {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IngestConfig;

    fn ingestor() -> Arc<Ingestor> {
        Arc::new(Ingestor::new(IngestConfig::default(), 2, 1).unwrap())
    }

    fn batch(t0: f64) -> Vec<LinkSample> {
        (0..4).map(|k| LinkSample::new(k % 2, t0 + k as f64 * 0.1, -50.0)).collect()
    }

    #[test]
    fn queued_batches_reach_the_pipeline() {
        let ing = ingestor();
        // Capacity exceeds the total number of pushes, so `Full` is
        // impossible regardless of how slowly the drain thread is scheduled.
        let mut q = IngestQueue::spawn(Arc::clone(&ing), 16);
        for round in 0..10 {
            assert_eq!(q.push(batch(round as f64)).unwrap(), PushOutcome::Queued);
        }
        q.close();
        assert_eq!(ing.stats().accepted, 40);
        assert_eq!(ing.stats().dropped_queue_batches, 0);
    }

    #[test]
    fn overload_drops_are_counted_not_blocking() {
        let ing = ingestor();
        // Capacity 1 and no consumer progress guarantee: flood faster than
        // the worker can drain; at least one batch must be shed.
        let q = IngestQueue::spawn(Arc::clone(&ing), 1);
        let mut dropped = 0;
        for round in 0..200 {
            if q.push(batch(round as f64)).unwrap() == PushOutcome::Dropped {
                dropped += 1;
            }
        }
        drop(q);
        let stats = ing.stats();
        assert_eq!(stats.dropped_queue_batches, dropped);
        assert_eq!(stats.dropped_queue_samples, dropped * 4);
        // Everything not shed was ingested.
        assert_eq!(stats.accepted + stats.dropped_queue_samples, 200 * 4);
    }

    #[test]
    fn push_after_close_errors() {
        let ing = ingestor();
        let mut q = IngestQueue::spawn(ing, 2);
        q.close();
        assert!(matches!(q.push(batch(0.0)), Err(IngestError::QueueClosed)));
    }
}
