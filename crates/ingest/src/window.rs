//! Per-link sliding windows and robust aggregation.
//!
//! A [`LinkWindow`] owns the recent samples of one link, ordered by stream
//! time, bounded both by count (ring capacity) and by age (the window
//! horizon). Reducing a window to one RSS value goes through a Hampel-style
//! outlier filter first: samples farther than `k` robust standard deviations
//! (`1.4826 * MAD`) from the window median are excluded, which kills the
//! interference spikes real radios emit without biasing the estimate the way
//! a plain trimmed mean would.

use crate::config::{Aggregator, IngestConfig};
use crate::sample::LinkSample;
use std::collections::VecDeque;

/// Health classification of one link at a given stream-clock instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkStatus {
    /// Fresh samples, enough of them: the aggregate is trustworthy.
    Live,
    /// Has an aggregate but its newest sample is older than the staleness
    /// bound — usable, flagged.
    Stale,
    /// No usable aggregate (never reported, or fewer than `min_samples`
    /// retained): the link must be imputed.
    Dead,
}

/// The published per-link reduction: everything assembly needs, immutable.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkAggregate {
    /// Robust RSS estimate (dBm) over the retained window.
    pub rss_dbm: f64,
    /// Samples retained in the window (after eviction, before Hampel).
    pub samples: usize,
    /// Samples the Hampel filter excluded from this aggregate.
    pub rejected: usize,
    /// Newest sample time in the window (stream seconds).
    pub last_t_s: f64,
    /// Sample standard deviation (dB) of the retained samples (0 for n < 2).
    pub spread_db: f64,
}

/// Sliding window of one link's samples plus its health bookkeeping.
#[derive(Debug)]
pub struct LinkWindow {
    /// `(t_s, rss_dbm)` in non-decreasing `t_s` order.
    samples: VecDeque<(f64, f64)>,
    /// Hampel exclusion events over the window's lifetime; an in-window
    /// outlier is counted again on every re-aggregation.
    rejected_total: u64,
    /// Times the link went quiet (crossed the staleness bound) and came back.
    flaps: u64,
    /// Whether the link was stale/dead at its last observation instant.
    was_quiet: bool,
}

impl LinkWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        LinkWindow { samples: VecDeque::new(), rejected_total: 0, flaps: 0, was_quiet: true }
    }

    /// Retained sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Lifetime Hampel exclusion events (re-counted per aggregation).
    pub fn rejected_total(&self) -> u64 {
        self.rejected_total
    }

    /// Times the link recovered after going quiet (flapping indicator).
    pub fn flaps(&self) -> u64 {
        self.flaps
    }

    /// Newest sample time, if any.
    pub fn last_t_s(&self) -> Option<f64> {
        self.samples.back().map(|&(t, _)| t)
    }

    /// Inserts one sample, keeping time order (out-of-order arrivals within
    /// the horizon are sorted into place). Returns `false` when the sample is
    /// older than the horizon and was dropped as late. `now_s` is the stream
    /// clock (the newest timestamp the whole pipeline has seen).
    pub fn push(&mut self, sample: &LinkSample, now_s: f64, config: &IngestConfig) -> bool {
        let horizon = now_s - config.window_s;
        if sample.t_s < horizon {
            return false;
        }
        // Flap accounting: a sample arriving on a link that had gone quiet.
        if self.was_quiet && !self.is_empty() {
            self.flaps += 1;
        }
        self.was_quiet = false;

        // Typical case: append; reordered case: walk back to the slot.
        let pos =
            self.samples.iter().rposition(|&(t, _)| t <= sample.t_s).map(|p| p + 1).unwrap_or(0);
        self.samples.insert(pos, (sample.t_s, sample.rss_dbm));
        self.evict(now_s, config);
        true
    }

    /// Drops samples beyond capacity or older than the horizon.
    pub fn evict(&mut self, now_s: f64, config: &IngestConfig) {
        let horizon = now_s - config.window_s;
        while let Some(&(t, _)) = self.samples.front() {
            if t < horizon || self.samples.len() > config.window_capacity {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Health of the window at stream-clock `now_s`.
    pub fn status(&mut self, now_s: f64, config: &IngestConfig) -> LinkStatus {
        if self.samples.len() < config.min_samples {
            self.was_quiet = true;
            return LinkStatus::Dead;
        }
        let last = self.samples.back().map(|&(t, _)| t).unwrap_or(f64::NEG_INFINITY);
        if now_s - last > config.stale_after_s {
            self.was_quiet = true;
            LinkStatus::Stale
        } else {
            LinkStatus::Live
        }
    }

    /// Reduces the window to a published aggregate, or `None` when empty.
    /// Updates the lifetime rejection counter.
    pub fn aggregate(&mut self, config: &IngestConfig) -> Option<LinkAggregate> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.samples.iter().map(|&(_, v)| v).collect();
        let median = median_in_place(&mut sorted);
        let retained: Vec<(f64, f64)> = if config.hampel_k > 0.0 {
            let mut deviations: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
            let mad = median_in_place(&mut deviations);
            let scale = (1.4826 * mad).max(config.hampel_floor_db);
            let bound = config.hampel_k * scale;
            self.samples.iter().copied().filter(|&(_, v)| (v - median).abs() <= bound).collect()
        } else {
            self.samples.iter().copied().collect()
        };
        // Degenerate guard: the filter cannot reject everything because the
        // median itself always passes, but stay safe against float edge cases.
        let retained = if retained.is_empty() {
            self.samples.iter().copied().collect::<Vec<_>>()
        } else {
            retained
        };
        let rejected = self.samples.len() - retained.len();
        self.rejected_total += rejected as u64;

        let rss_dbm = match config.aggregator {
            Aggregator::Median => {
                let mut vals: Vec<f64> = retained.iter().map(|&(_, v)| v).collect();
                median_in_place(&mut vals)
            }
            Aggregator::Ewma { alpha } => {
                let mut acc = retained[0].1;
                for &(_, v) in &retained[1..] {
                    acc += alpha * (v - acc);
                }
                acc
            }
        };
        let n = retained.len();
        let mean = retained.iter().map(|&(_, v)| v).sum::<f64>() / n as f64;
        let spread_db = if n < 2 {
            0.0
        } else {
            (retained.iter().map(|&(_, v)| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0))
                .sqrt()
        };
        Some(LinkAggregate {
            rss_dbm,
            samples: self.samples.len(),
            rejected,
            last_t_s: self.samples.back().map(|&(t, _)| t).unwrap_or(0.0),
            spread_db,
        })
    }
}

impl Default for LinkWindow {
    fn default() -> Self {
        LinkWindow::new()
    }
}

/// Median by partial sort; `values` must be non-empty.
fn median_in_place(values: &mut [f64]) -> f64 {
    debug_assert!(!values.is_empty());
    let mid = values.len() / 2;
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite RSS values"));
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IngestConfig {
        IngestConfig { window_s: 10.0, stale_after_s: 3.0, min_samples: 2, ..Default::default() }
    }

    fn push_all(w: &mut LinkWindow, samples: &[(f64, f64)], cfg: &IngestConfig) {
        let mut now = f64::NEG_INFINITY;
        for &(t, v) in samples {
            now = now.max(t);
            assert!(w.push(&LinkSample::new(0, t, v), now, cfg));
        }
    }

    #[test]
    fn median_aggregation_is_exact() {
        let c = cfg();
        let mut w = LinkWindow::new();
        push_all(&mut w, &[(1.0, -50.0), (2.0, -52.0), (3.0, -51.0)], &c);
        let agg = w.aggregate(&c).unwrap();
        assert_eq!(agg.rss_dbm, -51.0);
        assert_eq!(agg.samples, 3);
        assert_eq!(agg.rejected, 0);
        assert_eq!(agg.last_t_s, 3.0);
    }

    #[test]
    fn hampel_rejects_a_spike_median_survives() {
        let c = cfg();
        let mut w = LinkWindow::new();
        // 9 well-behaved samples around -50 plus one +30 dB interference burst.
        let mut samples: Vec<(f64, f64)> =
            (0..9).map(|k| (k as f64 * 0.5, -50.0 + 0.2 * (k % 3) as f64)).collect();
        samples.push((4.5, -20.0));
        push_all(&mut w, &samples, &c);
        let agg = w.aggregate(&c).unwrap();
        assert_eq!(agg.rejected, 1, "the burst must be excluded");
        assert!((agg.rss_dbm - -50.0).abs() < 0.5);
        assert_eq!(w.rejected_total(), 1);
    }

    #[test]
    fn ewma_tracks_a_level_shift_faster_than_median() {
        let c = IngestConfig { aggregator: Aggregator::Ewma { alpha: 0.5 }, ..cfg() };
        let m = cfg();
        let mut we = LinkWindow::new();
        let mut wm = LinkWindow::new();
        let mut samples: Vec<(f64, f64)> = (0..6).map(|k| (k as f64, -60.0)).collect();
        samples.extend((6..9).map(|k| (k as f64, -50.0)));
        // A 10 dB step would Hampel-reject the new level; disable for this test.
        let c = IngestConfig { hampel_k: 0.0, ..c };
        let m = IngestConfig { hampel_k: 0.0, ..m };
        push_all(&mut we, &samples, &c);
        push_all(&mut wm, &samples, &m);
        let e = we.aggregate(&c).unwrap().rss_dbm;
        let md = wm.aggregate(&m).unwrap().rss_dbm;
        assert!(e > md, "EWMA ({e}) must react faster than the median ({md})");
    }

    #[test]
    fn horizon_and_capacity_evict() {
        let c = IngestConfig { window_capacity: 4, ..cfg() };
        let mut w = LinkWindow::new();
        push_all(&mut w, &[(0.0, -50.0), (1.0, -50.0), (2.0, -50.0)], &c);
        // Jump the clock: the horizon (10 s) evicts everything before t=5.
        assert!(w.push(&LinkSample::new(0, 15.0, -48.0), 15.0, &c));
        assert_eq!(w.len(), 1);
        // Capacity bound.
        for k in 0..10 {
            w.push(&LinkSample::new(0, 15.0 + k as f64 * 0.1, -48.0), 16.0, &c);
        }
        assert!(w.len() <= 4);
    }

    #[test]
    fn late_sample_is_dropped_reordered_sample_is_sorted_in() {
        let c = cfg();
        let mut w = LinkWindow::new();
        assert!(w.push(&LinkSample::new(0, 20.0, -50.0), 20.0, &c));
        // 15 > 20 - 10, so this reordered sample is kept, in order.
        assert!(w.push(&LinkSample::new(0, 15.0, -51.0), 20.0, &c));
        // 5 < 20 - 10: too late.
        assert!(!w.push(&LinkSample::new(0, 5.0, -52.0), 20.0, &c));
        assert_eq!(w.len(), 2);
        assert_eq!(w.last_t_s(), Some(20.0));
    }

    #[test]
    fn status_transitions_and_flaps() {
        let c = cfg();
        let mut w = LinkWindow::new();
        assert_eq!(w.status(0.0, &c), LinkStatus::Dead);
        push_all(&mut w, &[(0.0, -50.0), (0.5, -50.0), (1.0, -50.0)], &c);
        assert_eq!(w.status(1.0, &c), LinkStatus::Live);
        assert_eq!(w.status(8.0, &c), LinkStatus::Stale);
        // Recovery after quiet counts as one flap.
        assert!(w.push(&LinkSample::new(0, 9.0, -50.0), 9.0, &c));
        assert_eq!(w.status(9.0, &c), LinkStatus::Live);
        assert_eq!(w.flaps(), 1);
    }

    #[test]
    fn empty_window_has_no_aggregate() {
        let c = cfg();
        let mut w = LinkWindow::new();
        assert!(w.aggregate(&c).is_none());
    }

    #[test]
    fn median_of_even_count_averages_middle_pair() {
        let mut v = [1.0, 3.0, 2.0, 4.0];
        assert_eq!(median_in_place(&mut v), 2.5);
    }
}
