//! The ingestion pipeline: sharded per-link windows feeding wait-free
//! published aggregates.
//!
//! Writers ([`Ingestor::apply_batch`]) group a batch by shard and take each
//! shard's mutex exactly once; a shard holds the windows of every `link` with
//! `link % shards == shard_index`, so concurrent producers only contend when
//! they carry samples for the same shard. After mutating a window the writer
//! re-publishes that link's [`LinkAggregate`] behind an `RwLock<Arc<_>>`
//! whose critical section is one pointer copy — the same discipline
//! `tafloc-serve` uses for site snapshots.
//!
//! Readers ([`Ingestor::assemble`]) never touch a shard mutex: they load the
//! `M` published aggregate pointers and work on immutable data, so assembly
//! is wait-free with respect to producers for any practical purpose.

use crate::clock::ClockMode;
use crate::config::IngestConfig;
use crate::error::{IngestError, Result};
use crate::sample::{BatchReport, LinkSample};
use crate::window::{LinkAggregate, LinkStatus, LinkWindow};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Why an assembled link value is flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum LinkFlag {
    /// Fresh aggregate from enough samples.
    Live,
    /// Aggregate exists but the link has gone quiet; value may lag reality.
    Stale,
    /// No usable aggregate; the value was imputed from the fallback vector.
    Imputed,
}

/// One complete `M`-dimensional fingerprint vector with explicit quality.
#[derive(Debug, Clone, PartialEq)]
pub struct AssembledVector {
    /// Per-link RSS (dBm), imputed where flagged — never NaN.
    pub y: Vec<f64>,
    /// Per-link provenance flag, same order as `y`.
    pub flags: Vec<LinkFlag>,
    /// Indices of imputed links (convenience view of `flags`).
    pub missing: Vec<usize>,
    /// Indices of stale links.
    pub stale: Vec<usize>,
    /// Newest sample time across all links (stream seconds); `None` before
    /// any sample arrived.
    pub latest_t_s: Option<f64>,
    /// Samples currently retained across all windows.
    pub window_samples: usize,
}

impl AssembledVector {
    /// Whether every link contributed a fresh aggregate.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty() && self.stale.is_empty()
    }
}

/// Cumulative pipeline counters, cheap enough to read on every stats call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Samples admitted into windows.
    pub accepted: u64,
    /// Samples dropped as older than the window horizon.
    pub dropped_late: u64,
    /// Samples dropped for naming an unknown link.
    pub dropped_unknown_link: u64,
    /// Samples dropped for NaN/infinite fields.
    pub dropped_non_finite: u64,
    /// Batches refused by a full bounded queue (producer-side backpressure).
    pub dropped_queue_batches: u64,
    /// Samples inside those refused batches.
    pub dropped_queue_samples: u64,
    /// Hampel exclusion events summed over every aggregation pass. An
    /// outlier is re-counted each time its window re-aggregates while it
    /// remains inside it, so this gauges gate activity and can exceed
    /// `accepted`; it is not a distinct-sample count.
    pub rejected_outliers: u64,
    /// Link recoveries after going quiet, summed over links (flapping).
    pub link_flaps: u64,
    /// Links whose current status is live.
    pub live_links: usize,
    /// Links whose current status is stale.
    pub stale_links: usize,
    /// Links whose current status is dead (no usable aggregate).
    pub dead_links: usize,
    /// Vectors assembled so far.
    pub assemblies: u64,
}

/// The published, reader-visible half of one link.
#[derive(Debug, Default)]
struct PublishedLink {
    /// `None` until the first aggregate exists.
    slot: RwLock<Option<Arc<LinkAggregate>>>,
}

impl PublishedLink {
    fn load(&self) -> Option<Arc<LinkAggregate>> {
        match self.slot.read() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn store(&self, agg: Option<Arc<LinkAggregate>>) {
        let mut g = match self.slot.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *g = agg;
    }
}

/// One shard: the mutable windows of the links it owns.
#[derive(Debug)]
struct Shard {
    /// Indexed by `link / num_shards` (links are striped across shards).
    windows: Vec<LinkWindow>,
}

/// The streaming ingestion pipeline for one site.
#[derive(Debug)]
pub struct Ingestor {
    config: IngestConfig,
    num_links: usize,
    shards: Vec<Mutex<Shard>>,
    published: Vec<PublishedLink>,
    /// Stream clock: max sample time seen, in microsecond ticks (atomic max).
    clock_us: AtomicU64,
    /// Whether samples advance the clock or only `advance_clock_to` does.
    clock_mode: ClockMode,
    accepted: AtomicU64,
    dropped_late: AtomicU64,
    dropped_unknown: AtomicU64,
    dropped_non_finite: AtomicU64,
    dropped_queue_batches: AtomicU64,
    dropped_queue_samples: AtomicU64,
    assemblies: AtomicU64,
}

fn clock_ticks(t_s: f64) -> u64 {
    // Stream clocks start at 0 in practice; clamp negatives to keep the
    // atomic-max encoding simple.
    (t_s.max(0.0) * 1e6).round() as u64
}

impl Ingestor {
    /// Creates a pipeline for `num_links` links, striped over `shards`
    /// mutexes (clamped to at least 1, at most one per link). The stream
    /// clock is sample-driven (the production default).
    pub fn new(config: IngestConfig, num_links: usize, shards: usize) -> Result<Ingestor> {
        Ingestor::with_clock(config, num_links, shards, ClockMode::SampleDriven)
    }

    /// Creates a pipeline with an explicit [`ClockMode`]. Test harnesses use
    /// [`ClockMode::Manual`] so staleness and late-drop decisions stay
    /// deterministic under injected faults (see [`crate::clock`]).
    pub fn with_clock(
        config: IngestConfig,
        num_links: usize,
        shards: usize,
        clock_mode: ClockMode,
    ) -> Result<Ingestor> {
        config.validate()?;
        if num_links == 0 {
            return Err(IngestError::InvalidConfig {
                field: "num_links",
                reason: "a site has at least one link".into(),
            });
        }
        let nshards = shards.clamp(1, num_links);
        let shards = (0..nshards)
            .map(|s| {
                let owned = (s..num_links).step_by(nshards).count();
                Mutex::new(Shard { windows: (0..owned).map(|_| LinkWindow::new()).collect() })
            })
            .collect();
        Ok(Ingestor {
            config,
            num_links,
            shards,
            published: (0..num_links).map(|_| PublishedLink::default()).collect(),
            clock_us: AtomicU64::new(0),
            clock_mode,
            accepted: AtomicU64::new(0),
            dropped_late: AtomicU64::new(0),
            dropped_unknown: AtomicU64::new(0),
            dropped_non_finite: AtomicU64::new(0),
            dropped_queue_batches: AtomicU64::new(0),
            dropped_queue_samples: AtomicU64::new(0),
            assemblies: AtomicU64::new(0),
        })
    }

    /// The pipeline's link count `M`.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// The configuration in force.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Current stream clock in seconds (`0.0` before any sample).
    pub fn stream_clock_s(&self) -> f64 {
        self.clock_us.load(Ordering::Acquire) as f64 / 1e6
    }

    /// The clock discipline in force.
    pub fn clock_mode(&self) -> ClockMode {
        self.clock_mode
    }

    /// Advances the stream clock to `t_s` (monotone: earlier times are
    /// no-ops). In [`ClockMode::Manual`] this is the *only* way the clock
    /// moves; in [`ClockMode::SampleDriven`] it composes with sample-driven
    /// advancement (useful to deterministically age windows past the stale
    /// horizon when every link has gone quiet).
    pub fn advance_clock_to(&self, t_s: f64) {
        self.advance_clock(t_s);
    }

    fn advance_clock(&self, t_s: f64) {
        self.clock_us.fetch_max(clock_ticks(t_s), Ordering::AcqRel);
    }

    /// Applies one batch of samples synchronously and republishes the
    /// aggregates of every touched link. Returns per-batch accounting.
    pub fn apply_batch(&self, samples: &[LinkSample]) -> BatchReport {
        let mut report = BatchReport::default();
        // Advance the stream clock first so every window in the batch sees
        // the batch's own newest timestamp (late-drop decisions included).
        // Under a manual clock the harness owns "now"; samples don't move it.
        if self.clock_mode == ClockMode::SampleDriven {
            for s in samples {
                if s.is_finite() {
                    self.advance_clock(s.t_s);
                }
            }
        }
        let now = self.stream_clock_s();
        let nshards = self.shards.len();

        // Group by shard, lock each shard once.
        let mut by_shard: Vec<Vec<&LinkSample>> = vec![Vec::new(); nshards];
        for s in samples {
            if !s.is_finite() {
                report.dropped_non_finite += 1;
            } else if s.link >= self.num_links {
                report.dropped_unknown_link += 1;
            } else {
                by_shard[s.link % nshards].push(s);
            }
        }
        for (shard_idx, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut shard = match self.shards[shard_idx].lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let mut touched: Vec<usize> = Vec::new();
            for s in group {
                let w = &mut shard.windows[s.link / nshards];
                if w.push(s, now, &self.config) {
                    report.accepted += 1;
                    if !touched.contains(&s.link) {
                        touched.push(s.link);
                    }
                } else {
                    report.dropped_late += 1;
                }
            }
            // Republish once per touched link, not once per sample.
            for link in touched {
                let w = &mut shard.windows[link / nshards];
                w.evict(now, &self.config);
                let agg = w.aggregate(&self.config).map(Arc::new);
                self.published[link].store(agg);
            }
        }
        self.accepted.fetch_add(report.accepted, Ordering::Relaxed);
        self.dropped_late.fetch_add(report.dropped_late, Ordering::Relaxed);
        self.dropped_unknown.fetch_add(report.dropped_unknown_link, Ordering::Relaxed);
        self.dropped_non_finite.fetch_add(report.dropped_non_finite, Ordering::Relaxed);
        report
    }

    /// Records a batch refused by a bounded queue (drop accounting for
    /// producer-side backpressure; see [`crate::queue::IngestQueue`]).
    pub fn record_queue_drop(&self, samples: usize) {
        self.dropped_queue_batches.fetch_add(1, Ordering::Relaxed);
        self.dropped_queue_samples.fetch_add(samples as u64, Ordering::Relaxed);
    }

    /// Loads one link's published aggregate (wait-free read path).
    pub fn link_aggregate(&self, link: usize) -> Option<Arc<LinkAggregate>> {
        self.published.get(link).and_then(PublishedLink::load)
    }

    /// Classifies one published aggregate at stream time `now_s`.
    fn classify(&self, agg: Option<&LinkAggregate>, now_s: f64) -> LinkStatus {
        match agg {
            None => LinkStatus::Dead,
            Some(a) if a.samples < self.config.min_samples => LinkStatus::Dead,
            Some(a) if now_s - a.last_t_s > self.config.stale_after_s => LinkStatus::Stale,
            Some(_) => LinkStatus::Live,
        }
    }

    /// Assembles a complete `M`-vector from the published aggregates.
    ///
    /// Links without a usable aggregate take their value from `fallback`
    /// (typically the site's empty-room baseline — the maximum-entropy guess
    /// "nobody is shadowing this link") and are flagged [`LinkFlag::Imputed`];
    /// quiet links keep their last aggregate and are flagged
    /// [`LinkFlag::Stale`]. The result never contains NaN.
    pub fn assemble(&self, fallback: &[f64]) -> Result<AssembledVector> {
        if fallback.len() != self.num_links {
            return Err(IngestError::FallbackLength {
                expected: self.num_links,
                actual: fallback.len(),
            });
        }
        let now = self.stream_clock_s();
        let mut y = Vec::with_capacity(self.num_links);
        let mut flags = Vec::with_capacity(self.num_links);
        let mut missing = Vec::new();
        let mut stale = Vec::new();
        let mut latest: Option<f64> = None;
        let mut window_samples = 0usize;
        for (link, &fb) in fallback.iter().enumerate() {
            let agg = self.published[link].load();
            match self.classify(agg.as_deref(), now) {
                LinkStatus::Dead => {
                    y.push(fb);
                    flags.push(LinkFlag::Imputed);
                    missing.push(link);
                }
                status => {
                    let a = agg.expect("live/stale links have an aggregate");
                    y.push(a.rss_dbm);
                    window_samples += a.samples;
                    latest = Some(latest.map_or(a.last_t_s, |t: f64| t.max(a.last_t_s)));
                    if status == LinkStatus::Stale {
                        flags.push(LinkFlag::Stale);
                        stale.push(link);
                    } else {
                        flags.push(LinkFlag::Live);
                    }
                }
            }
        }
        self.assemblies.fetch_add(1, Ordering::Relaxed);
        Ok(AssembledVector { y, flags, missing, stale, latest_t_s: latest, window_samples })
    }

    /// Current per-link health, indexed by link id.
    ///
    /// The same classification [`stats`](Ingestor::stats) aggregates into
    /// counts, exposed per link so a measurement planner can exclude dead
    /// links from the re-survey budget and deprioritize stale ones.
    pub fn link_statuses(&self) -> Vec<LinkStatus> {
        let now = self.stream_clock_s();
        (0..self.num_links)
            .map(|link| {
                let agg = self.published[link].load();
                self.classify(agg.as_deref(), now)
            })
            .collect()
    }

    /// Cumulative counters plus a current link-health census.
    pub fn stats(&self) -> IngestStats {
        let now = self.stream_clock_s();
        let (mut live, mut stale, mut dead) = (0usize, 0usize, 0usize);
        let mut rejected = 0u64;
        for link in 0..self.num_links {
            let agg = self.published[link].load();
            match self.classify(agg.as_deref(), now) {
                LinkStatus::Live => live += 1,
                LinkStatus::Stale => stale += 1,
                LinkStatus::Dead => dead += 1,
            }
        }
        let mut flaps = 0u64;
        for shard in &self.shards {
            let s = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            for w in &s.windows {
                rejected += w.rejected_total();
                flaps += w.flaps();
            }
        }
        IngestStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            dropped_late: self.dropped_late.load(Ordering::Relaxed),
            dropped_unknown_link: self.dropped_unknown.load(Ordering::Relaxed),
            dropped_non_finite: self.dropped_non_finite.load(Ordering::Relaxed),
            dropped_queue_batches: self.dropped_queue_batches.load(Ordering::Relaxed),
            dropped_queue_samples: self.dropped_queue_samples.load(Ordering::Relaxed),
            rejected_outliers: rejected,
            link_flaps: flaps,
            live_links: live,
            stale_links: stale,
            dead_links: dead,
            assemblies: self.assemblies.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IngestConfig {
        IngestConfig { window_s: 10.0, stale_after_s: 3.0, min_samples: 2, ..Default::default() }
    }

    fn batch_for(link: usize, t0: f64, n: usize, rss: f64) -> Vec<LinkSample> {
        (0..n).map(|k| LinkSample::new(link, t0 + k as f64 * 0.5, rss)).collect()
    }

    #[test]
    fn accepted_samples_produce_a_live_vector() {
        let ing = Ingestor::new(cfg(), 3, 2).unwrap();
        for link in 0..3 {
            let report = ing.apply_batch(&batch_for(link, 0.0, 5, -50.0 - link as f64));
            assert_eq!(report.accepted, 5);
            assert_eq!(report.total(), 5);
        }
        let v = ing.assemble(&[-40.0; 3]).unwrap();
        assert!(v.is_complete());
        assert_eq!(v.flags, vec![LinkFlag::Live; 3]);
        assert_eq!(v.y, vec![-50.0, -51.0, -52.0]);
        assert_eq!(v.window_samples, 15);
        assert_eq!(v.latest_t_s, Some(2.0));
    }

    #[test]
    fn dead_link_is_imputed_and_flagged() {
        let ing = Ingestor::new(cfg(), 3, 1).unwrap();
        ing.apply_batch(&batch_for(0, 0.0, 5, -50.0));
        ing.apply_batch(&batch_for(2, 0.0, 5, -52.0));
        let v = ing.assemble(&[-40.0, -41.0, -42.0]).unwrap();
        assert_eq!(v.missing, vec![1]);
        assert_eq!(v.flags[1], LinkFlag::Imputed);
        assert_eq!(v.y[1], -41.0);
        assert!(v.y.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn quiet_link_turns_stale_then_value_is_retained() {
        let ing = Ingestor::new(cfg(), 2, 2).unwrap();
        ing.apply_batch(&batch_for(0, 0.0, 5, -50.0));
        ing.apply_batch(&batch_for(1, 0.0, 5, -60.0));
        // Advance the stream clock via link 0 only; link 1 goes quiet.
        ing.apply_batch(&batch_for(0, 6.0, 4, -50.0));
        let v = ing.assemble(&[-40.0; 2]).unwrap();
        assert_eq!(v.stale, vec![1]);
        assert_eq!(v.flags[1], LinkFlag::Stale);
        assert_eq!(v.y[1], -60.0, "stale links keep their last aggregate");
        let stats = ing.stats();
        assert_eq!(stats.live_links, 1);
        assert_eq!(stats.stale_links, 1);
    }

    #[test]
    fn link_statuses_mirror_the_stats_census() {
        let ing = Ingestor::new(cfg(), 3, 2).unwrap();
        ing.apply_batch(&batch_for(0, 0.0, 5, -50.0));
        ing.apply_batch(&batch_for(1, 0.0, 5, -60.0));
        // Advance the stream clock via link 0 only; link 1 goes quiet and
        // link 2 never reports.
        ing.apply_batch(&batch_for(0, 6.0, 4, -50.0));
        let statuses = ing.link_statuses();
        assert_eq!(statuses, vec![LinkStatus::Live, LinkStatus::Stale, LinkStatus::Dead]);
        let stats = ing.stats();
        assert_eq!(stats.live_links, 1);
        assert_eq!(stats.stale_links, 1);
        assert_eq!(stats.dead_links, 1);
    }

    #[test]
    fn unknown_and_non_finite_samples_are_dropped_and_counted() {
        let ing = Ingestor::new(cfg(), 2, 1).unwrap();
        let report = ing.apply_batch(&[
            LinkSample::new(0, 1.0, -50.0),
            LinkSample::new(7, 1.0, -50.0),
            LinkSample::new(1, f64::NAN, -50.0),
            LinkSample::new(1, 1.0, f64::NAN),
        ]);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.dropped_unknown_link, 1);
        assert_eq!(report.dropped_non_finite, 2);
        let stats = ing.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.dropped_unknown_link, 1);
        assert_eq!(stats.dropped_non_finite, 2);
    }

    #[test]
    fn late_samples_are_dropped_after_the_clock_advances() {
        let ing = Ingestor::new(cfg(), 1, 1).unwrap();
        ing.apply_batch(&batch_for(0, 100.0, 3, -50.0));
        let report = ing.apply_batch(&[LinkSample::new(0, 1.0, -99.0)]);
        assert_eq!(report.dropped_late, 1);
        let v = ing.assemble(&[-40.0]).unwrap();
        assert_eq!(v.y[0], -50.0, "the late straggler must not poison the aggregate");
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let ing =
            Arc::new(Ingestor::new(IngestConfig { window_capacity: 4096, ..cfg() }, 8, 4).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|link| {
                let ing = Arc::clone(&ing);
                std::thread::spawn(move || {
                    for round in 0..50 {
                        let batch = batch_for(link, round as f64 * 0.1, 10, -50.0);
                        ing.apply_batch(&batch);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ing.stats().accepted, 8 * 50 * 10);
        let v = ing.assemble(&[-40.0; 8]).unwrap();
        assert!(v.is_complete());
    }

    #[test]
    fn manual_clock_only_moves_on_explicit_advance() {
        let ing = Ingestor::with_clock(cfg(), 2, 1, ClockMode::Manual).unwrap();
        assert_eq!(ing.clock_mode(), ClockMode::Manual);
        let report = ing.apply_batch(&batch_for(0, 50.0, 3, -50.0));
        assert_eq!(report.accepted, 3);
        assert_eq!(ing.stream_clock_s(), 0.0, "samples must not move a manual clock");
        ing.advance_clock_to(10.0);
        assert_eq!(ing.stream_clock_s(), 10.0);
        ing.advance_clock_to(5.0);
        assert_eq!(ing.stream_clock_s(), 10.0, "the clock is monotone");
    }

    #[test]
    fn manual_clock_forces_staleness_without_new_samples() {
        let ing = Ingestor::with_clock(cfg(), 1, 1, ClockMode::Manual).unwrap();
        ing.apply_batch(&batch_for(0, 0.0, 3, -50.0));
        assert!(ing.assemble(&[-40.0]).unwrap().is_complete());
        // A total outage: no samples arrive, but scenario time moves on.
        ing.advance_clock_to(8.0);
        let v = ing.assemble(&[-40.0]).unwrap();
        assert_eq!(v.stale, vec![0], "aging past stale_after_s must flag the link");
    }

    #[test]
    fn sample_driven_clock_composes_with_manual_advance() {
        let ing = Ingestor::new(cfg(), 1, 1).unwrap();
        ing.apply_batch(&batch_for(0, 0.0, 3, -50.0));
        assert_eq!(ing.stream_clock_s(), 1.0);
        ing.advance_clock_to(6.0);
        assert_eq!(ing.stream_clock_s(), 6.0);
    }

    #[test]
    fn assemble_rejects_wrong_fallback_length() {
        let ing = Ingestor::new(cfg(), 4, 2).unwrap();
        assert!(matches!(
            ing.assemble(&[-40.0; 3]),
            Err(IngestError::FallbackLength { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn zero_links_rejected() {
        assert!(Ingestor::new(cfg(), 0, 2).is_err());
    }
}
