//! Error type for the ingestion layer.

use std::fmt;

/// Anything that can go wrong between a raw sample and an assembled vector.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// A configuration field is out of range.
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// An assembly fallback vector of the wrong length was supplied.
    FallbackLength {
        /// Expected length (the link count).
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// The bounded queue was closed before the call.
    QueueClosed,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::InvalidConfig { field, reason } => {
                write!(f, "invalid ingest config {field}: {reason}")
            }
            IngestError::FallbackLength { expected, actual } => {
                write!(f, "assembly fallback has length {actual}, need {expected} (one per link)")
            }
            IngestError::QueueClosed => write!(f, "ingest queue is closed"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Result alias for the ingestion layer.
pub type Result<T> = std::result::Result<T, IngestError>;
