//! Credit-based admission in front of the pipeline: blocking-with-deadline
//! instead of silent shed.
//!
//! [`crate::IngestQueue`] is the legacy front door: a full queue *drops* the
//! batch and counts it — correct for a radio bridge that must never stall its
//! receive loop, but invisible to the producer, which keeps offering at full
//! rate while 99% of its samples evaporate. [`CreditQueue`] is the
//! admission-controlled alternative the sharded daemon uses: capacity is a
//! budget of *sample credits*, and `offer` blocks (up to a caller-chosen
//! deadline) until credits free up rather than shedding. Every offered batch
//! gets exactly one verdict:
//!
//! * **Admitted** — credits reserved, the batch will reach the pipeline;
//! * **Deferred** — the deadline passed with the queue still full; the batch
//!   was *not* enqueued and the producer should retry after the returned
//!   hint;
//! * **Rejected** — the batch can never be admitted (larger than the whole
//!   credit budget, or the queue closed mid-wait).
//!
//! The three counters are conserved: `admitted + deferred + rejected ==
//! offered`, in batches and in samples — nothing is ever lost silently.
//! Credits are released only after the drain worker has *applied* the batch,
//! so the bound covers queued and in-flight work alike.

use crate::error::{IngestError, Result};
use crate::pipeline::Ingestor;
use crate::sample::LinkSample;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Verdict on one offered batch. Exactly one of these is returned (and
/// counted) per [`CreditQueue::offer`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Credits reserved; the batch is queued and will reach the pipeline.
    Admitted,
    /// The deadline elapsed with insufficient credits. The batch was **not**
    /// enqueued; retry after the hint.
    Deferred {
        /// Suggested producer back-off before retrying (ms).
        retry_after_ms: u64,
    },
    /// The batch cannot be admitted at all: it exceeds the whole credit
    /// budget, or the queue closed while the producer was waiting.
    Rejected,
}

/// Cumulative admission accounting. Conservation invariant:
/// `offered == admitted + deferred + rejected` for both batches and samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CreditStats {
    /// Batches offered (every `offer` call that got a verdict).
    pub offered_batches: u64,
    /// Samples offered.
    pub offered_samples: u64,
    /// Batches admitted.
    pub admitted_batches: u64,
    /// Samples admitted.
    pub admitted_samples: u64,
    /// Batches deferred at the deadline.
    pub deferred_batches: u64,
    /// Samples deferred at the deadline.
    pub deferred_samples: u64,
    /// Batches rejected outright.
    pub rejected_batches: u64,
    /// Samples rejected outright.
    pub rejected_samples: u64,
}

impl CreditStats {
    /// Samples that got no verdict — zero by construction; exposed so tests
    /// and benches can *assert* the no-silent-loss property instead of
    /// trusting it.
    pub fn silent_samples(&self) -> u64 {
        self.offered_samples - self.admitted_samples - self.deferred_samples - self.rejected_samples
    }
}

#[derive(Debug, Default)]
struct Counters {
    offered_batches: AtomicU64,
    offered_samples: AtomicU64,
    admitted_batches: AtomicU64,
    admitted_samples: AtomicU64,
    deferred_batches: AtomicU64,
    deferred_samples: AtomicU64,
    rejected_batches: AtomicU64,
    rejected_samples: AtomicU64,
}

#[derive(Debug)]
struct State {
    queue: VecDeque<Vec<LinkSample>>,
    /// Samples holding credits: queued plus currently being applied.
    in_flight: usize,
    closed: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Signals producers that credits were released (or the queue closed).
    space: Condvar,
    /// Signals the drain worker that work arrived (or the queue closed).
    work: Condvar,
}

/// A credit-gated, deadline-blocking front door to an [`Ingestor`].
#[derive(Debug)]
pub struct CreditQueue {
    ingestor: Arc<Ingestor>,
    shared: Arc<Shared>,
    counters: Arc<Counters>,
    capacity_samples: usize,
    worker: Option<JoinHandle<()>>,
}

impl CreditQueue {
    /// Spawns the drain worker with a budget of `capacity_samples` credits
    /// (clamped to at least 1).
    pub fn spawn(ingestor: Arc<Ingestor>, capacity_samples: usize) -> CreditQueue {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), in_flight: 0, closed: false }),
            space: Condvar::new(),
            work: Condvar::new(),
        });
        let drain = Arc::clone(&ingestor);
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("tafloc-credit-drain".to_string())
            .spawn(move || loop {
                let batch = {
                    let mut st = worker_shared.state.lock().unwrap_or_else(|p| p.into_inner());
                    loop {
                        if let Some(b) = st.queue.pop_front() {
                            break b;
                        }
                        if st.closed {
                            return;
                        }
                        st = worker_shared.work.wait(st).unwrap_or_else(|p| p.into_inner());
                    }
                };
                let n = batch.len();
                drain.apply_batch(&batch);
                let mut st = worker_shared.state.lock().unwrap_or_else(|p| p.into_inner());
                st.in_flight -= n;
                drop(st);
                worker_shared.space.notify_all();
            })
            .expect("spawning the credit drain thread cannot fail");
        CreditQueue {
            ingestor,
            shared,
            counters: Arc::new(Counters::default()),
            capacity_samples: capacity_samples.max(1),
            worker: Some(worker),
        }
    }

    /// The pipeline behind the queue.
    pub fn ingestor(&self) -> &Arc<Ingestor> {
        &self.ingestor
    }

    /// The credit budget (samples).
    pub fn capacity_samples(&self) -> usize {
        self.capacity_samples
    }

    /// Samples currently holding credits (queued + being applied).
    pub fn depth_samples(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(|p| p.into_inner()).in_flight
    }

    /// Offers one batch, blocking up to `deadline` for credits.
    ///
    /// Returns an error (without counting the batch as offered) only when the
    /// queue was already closed before the call; every counted offer gets a
    /// conserved [`Admission`] verdict.
    pub fn offer(&self, batch: Vec<LinkSample>, deadline: Duration) -> Result<Admission> {
        let n = batch.len();
        {
            let st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            if st.closed {
                return Err(IngestError::QueueClosed);
            }
        }
        self.counters.offered_batches.fetch_add(1, Ordering::Relaxed);
        self.counters.offered_samples.fetch_add(n as u64, Ordering::Relaxed);
        if n > self.capacity_samples {
            // Larger than the whole budget: can never be admitted, so
            // waiting would be a lie.
            self.counters.rejected_batches.fetch_add(1, Ordering::Relaxed);
            self.counters.rejected_samples.fetch_add(n as u64, Ordering::Relaxed);
            return Ok(Admission::Rejected);
        }
        let start = Instant::now();
        let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if st.closed {
                // Closed mid-wait: the offer was counted, so it must get a
                // verdict — a terminal rejection, not silence.
                self.counters.rejected_batches.fetch_add(1, Ordering::Relaxed);
                self.counters.rejected_samples.fetch_add(n as u64, Ordering::Relaxed);
                return Ok(Admission::Rejected);
            }
            if st.in_flight + n <= self.capacity_samples {
                st.in_flight += n;
                st.queue.push_back(batch);
                drop(st);
                self.shared.work.notify_one();
                self.counters.admitted_batches.fetch_add(1, Ordering::Relaxed);
                self.counters.admitted_samples.fetch_add(n as u64, Ordering::Relaxed);
                return Ok(Admission::Admitted);
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                drop(st);
                self.counters.deferred_batches.fetch_add(1, Ordering::Relaxed);
                self.counters.deferred_samples.fetch_add(n as u64, Ordering::Relaxed);
                return Ok(Admission::Deferred {
                    retry_after_ms: (deadline.as_millis() as u64).max(1),
                });
            }
            let (guard, _) = self
                .shared
                .space
                .wait_timeout(st, deadline - elapsed)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Snapshot of the admission counters.
    pub fn stats(&self) -> CreditStats {
        CreditStats {
            offered_batches: self.counters.offered_batches.load(Ordering::Relaxed),
            offered_samples: self.counters.offered_samples.load(Ordering::Relaxed),
            admitted_batches: self.counters.admitted_batches.load(Ordering::Relaxed),
            admitted_samples: self.counters.admitted_samples.load(Ordering::Relaxed),
            deferred_batches: self.counters.deferred_batches.load(Ordering::Relaxed),
            deferred_samples: self.counters.deferred_samples.load(Ordering::Relaxed),
            rejected_batches: self.counters.rejected_batches.load(Ordering::Relaxed),
            rejected_samples: self.counters.rejected_samples.load(Ordering::Relaxed),
        }
    }

    /// Closes the queue and waits for the worker to drain every admitted
    /// batch. Producers blocked in `offer` are woken and get `Rejected`.
    /// Safe to call once; `drop` calls it implicitly.
    pub fn close(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|p| p.into_inner());
            st.closed = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for CreditQueue {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IngestConfig;

    fn ingestor() -> Arc<Ingestor> {
        Arc::new(Ingestor::new(IngestConfig::default(), 2, 1).unwrap())
    }

    fn batch(t0: f64, len: usize) -> Vec<LinkSample> {
        (0..len).map(|k| LinkSample::new(k % 2, t0 + k as f64 * 0.01, -50.0)).collect()
    }

    #[test]
    fn admitted_batches_reach_the_pipeline_and_release_credits() {
        let ing = ingestor();
        let mut q = CreditQueue::spawn(Arc::clone(&ing), 8);
        // 20 batches of 4 through a budget of 8: producers must block on the
        // drain rather than fail, so with a generous deadline everything is
        // admitted.
        for round in 0..20 {
            let verdict = q.offer(batch(round as f64, 4), Duration::from_secs(10)).unwrap();
            assert_eq!(verdict, Admission::Admitted);
        }
        q.close();
        let stats = q.stats();
        assert_eq!(stats.admitted_batches, 20);
        assert_eq!(stats.admitted_samples, 80);
        assert_eq!(stats.silent_samples(), 0);
        assert_eq!(ing.stats().accepted, 80, "every admitted sample was applied");
        assert_eq!(q.depth_samples(), 0, "credits released after the drain");
    }

    #[test]
    fn oversized_batches_are_rejected_not_deadlocked() {
        let ing = ingestor();
        let q = CreditQueue::spawn(ing, 4);
        let start = Instant::now();
        let verdict = q.offer(batch(0.0, 5), Duration::from_secs(30)).unwrap();
        assert_eq!(verdict, Admission::Rejected);
        assert!(start.elapsed() < Duration::from_secs(5), "rejection is immediate");
        let stats = q.stats();
        assert_eq!(stats.rejected_batches, 1);
        assert_eq!(stats.rejected_samples, 5);
        assert_eq!(stats.silent_samples(), 0);
    }

    #[test]
    fn offer_after_close_errors_without_counting() {
        let ing = ingestor();
        let mut q = CreditQueue::spawn(ing, 4);
        q.close();
        assert!(matches!(q.offer(batch(0.0, 2), Duration::ZERO), Err(IngestError::QueueClosed)));
        assert_eq!(q.stats().offered_batches, 0);
    }

    #[test]
    fn zero_deadline_defers_when_full() {
        let ing = ingestor();
        let q = CreditQueue::spawn(ing, 4);
        // Fill the budget, then offer with no patience: the second offer may
        // be admitted (if the drain already freed credits) or deferred —
        // never lost.
        let mut deferred = 0u64;
        for round in 0..50 {
            match q.offer(batch(round as f64, 4), Duration::ZERO).unwrap() {
                Admission::Deferred { retry_after_ms } => {
                    assert!(retry_after_ms >= 1);
                    deferred += 1;
                }
                Admission::Admitted => {}
                Admission::Rejected => panic!("nothing here exceeds the budget"),
            }
        }
        let stats = q.stats();
        assert_eq!(stats.offered_batches, 50);
        assert_eq!(stats.deferred_batches, deferred);
        assert_eq!(stats.admitted_batches + stats.deferred_batches, 50);
        assert_eq!(stats.silent_samples(), 0);
    }
}
