//! Pipeline configuration.

use crate::error::{IngestError, Result};
use serde::{Deserialize, Serialize};

/// How a window of retained samples is reduced to one per-link RSS value.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum Aggregator {
    /// Median of the retained (outlier-filtered) samples. The most robust
    /// choice and the default.
    #[default]
    Median,
    /// Exponentially weighted moving average over the retained samples in
    /// time order — cheaper memory of old samples, faster reaction.
    Ewma {
        /// Smoothing factor in `(0, 1]`; larger = faster reaction.
        alpha: f64,
    },
}

/// Ingestion pipeline configuration.
///
/// Defaults match the paper's measurement regime: radios sampling at ~1 Hz,
/// fingerprints averaged over tens of samples, RSS quantized to 1 dBm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Maximum samples retained per link (ring capacity).
    #[serde(default = "default_window_capacity")]
    pub window_capacity: usize,
    /// Window horizon in stream-clock seconds: samples older than
    /// `newest - window_s` are evicted (and arrivals older than that are
    /// dropped as late).
    #[serde(default = "default_window_s")]
    pub window_s: f64,
    /// Minimum retained samples before a link's aggregate is trusted for
    /// assembly; below it the link is imputed and flagged.
    #[serde(default = "default_min_samples")]
    pub min_samples: usize,
    /// A link whose newest sample is older than this (vs the stream clock)
    /// is flagged stale; stale links still contribute their aggregate.
    #[serde(default = "default_stale_after_s")]
    pub stale_after_s: f64,
    /// Hampel multiplier `k`: samples farther than `k * 1.4826 * MAD` from
    /// the window median are excluded from aggregation. `0` disables
    /// rejection.
    #[serde(default = "default_hampel_k")]
    pub hampel_k: f64,
    /// Floor on the Hampel scale estimate (dB) so integer-quantized RSS
    /// (MAD frequently 0) does not reject every off-median sample.
    #[serde(default = "default_hampel_floor_db")]
    pub hampel_floor_db: f64,
    /// Window → value reduction.
    #[serde(default)]
    pub aggregator: Aggregator,
}

fn default_window_capacity() -> usize {
    128
}
fn default_window_s() -> f64 {
    30.0
}
fn default_min_samples() -> usize {
    3
}
fn default_stale_after_s() -> f64 {
    10.0
}
fn default_hampel_k() -> f64 {
    3.0
}
fn default_hampel_floor_db() -> f64 {
    0.75
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            window_capacity: default_window_capacity(),
            window_s: default_window_s(),
            min_samples: default_min_samples(),
            stale_after_s: default_stale_after_s(),
            hampel_k: default_hampel_k(),
            hampel_floor_db: default_hampel_floor_db(),
            aggregator: Aggregator::default(),
        }
    }
}

impl IngestConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.window_capacity == 0 {
            return Err(IngestError::InvalidConfig {
                field: "window_capacity",
                reason: "must retain at least one sample".into(),
            });
        }
        if !(self.window_s > 0.0) {
            return Err(IngestError::InvalidConfig {
                field: "window_s",
                reason: format!("horizon must be positive, got {}", self.window_s),
            });
        }
        if self.min_samples == 0 {
            return Err(IngestError::InvalidConfig {
                field: "min_samples",
                reason: "must require at least one sample".into(),
            });
        }
        if !(self.stale_after_s > 0.0) {
            return Err(IngestError::InvalidConfig {
                field: "stale_after_s",
                reason: format!("staleness bound must be positive, got {}", self.stale_after_s),
            });
        }
        if self.hampel_k < 0.0 || !self.hampel_k.is_finite() {
            return Err(IngestError::InvalidConfig {
                field: "hampel_k",
                reason: format!("must be finite and >= 0, got {}", self.hampel_k),
            });
        }
        if !(self.hampel_floor_db >= 0.0) {
            return Err(IngestError::InvalidConfig {
                field: "hampel_floor_db",
                reason: format!("must be >= 0, got {}", self.hampel_floor_db),
            });
        }
        if let Aggregator::Ewma { alpha } = self.aggregator {
            if !(alpha > 0.0 && alpha <= 1.0) {
                return Err(IngestError::InvalidConfig {
                    field: "aggregator.alpha",
                    reason: format!("EWMA alpha must be in (0, 1], got {alpha}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        IngestConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_fields_are_rejected() {
        let bad = [
            IngestConfig { window_capacity: 0, ..Default::default() },
            IngestConfig { window_s: 0.0, ..Default::default() },
            IngestConfig { window_s: f64::NAN, ..Default::default() },
            IngestConfig { min_samples: 0, ..Default::default() },
            IngestConfig { stale_after_s: -1.0, ..Default::default() },
            IngestConfig { hampel_k: -0.5, ..Default::default() },
            IngestConfig { hampel_floor_db: f64::NAN, ..Default::default() },
            IngestConfig { aggregator: Aggregator::Ewma { alpha: 0.0 }, ..Default::default() },
            IngestConfig { aggregator: Aggregator::Ewma { alpha: 1.5 }, ..Default::default() },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?} must be rejected");
        }
    }

    #[test]
    fn config_serde_defaults_fill_in() {
        let cfg: IngestConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(cfg, IngestConfig::default());
        let cfg: IngestConfig =
            serde_json::from_str(r#"{"aggregator":{"kind":"ewma","alpha":0.2}}"#).unwrap();
        assert_eq!(cfg.aggregator, Aggregator::Ewma { alpha: 0.2 });
    }
}
