//! # tafloc-ingest
//!
//! The streaming data plane between radios and inference: raw timestamped
//! per-link RSS samples in, robust `M`-dimensional fingerprint vectors out.
//!
//! Everything downstream of this crate — localization, drift monitoring,
//! LoLi-IR refresh — assumes clean averaged per-link vectors, but real
//! deployments emit noisy, lossy, asynchronous per-link *sample streams*.
//! This crate closes that gap:
//!
//! * [`sample`] — [`LinkSample`], the raw wire unit, plus per-batch
//!   accounting ([`BatchReport`]);
//! * [`config`] — [`IngestConfig`]: window sizes, staleness bounds, Hampel
//!   outlier rejection, median/EWMA aggregation;
//! * [`window`] — [`LinkWindow`]: one link's time-ordered sliding window with
//!   robust reduction and health (stale/dead/flapping) bookkeeping;
//! * [`pipeline`] — [`Ingestor`]: link-sharded lock-light ingestion,
//!   wait-free published aggregates, on-demand assembly of complete vectors
//!   with explicit missing-link flags, cumulative drop accounting;
//! * [`queue`] — [`IngestQueue`]: bounded producer-side backpressure that
//!   sheds and counts batches instead of blocking;
//! * [`credit`] — [`CreditQueue`]: credit-based admission with
//!   blocking-with-deadline offers and conserved
//!   admitted/deferred/rejected accounting (no silent loss).
//!
//! Std-only, mirroring the snapshot-swap discipline of `tafloc-serve`:
//! writers take one shard mutex per batch; readers only ever copy `Arc`
//! pointers.
//!
//! ## Quick tour
//!
//! ```
//! use tafloc_ingest::{IngestConfig, Ingestor, LinkSample};
//! let ing = Ingestor::new(IngestConfig::default(), 2, 1).unwrap();
//! ing.apply_batch(&[
//!     LinkSample::new(0, 0.0, -50.0),
//!     LinkSample::new(0, 1.0, -50.5),
//!     LinkSample::new(0, 2.0, -49.5),
//! ]);
//! let v = ing.assemble(&[-40.0, -40.0]).unwrap();
//! assert_eq!(v.y[0], -50.0);     // robust aggregate of link 0
//! assert_eq!(v.y[1], -40.0);     // link 1 never reported: imputed
//! assert_eq!(v.missing, vec![1]); // ... and flagged
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN along with non-positive values in
// config validation — the clippy lint suggesting `x <= 0.0` would silently
// accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod clock;
pub mod config;
pub mod credit;
mod error;
pub mod pipeline;
pub mod queue;
pub mod sample;
pub mod window;

pub use clock::ClockMode;
pub use config::{Aggregator, IngestConfig};
pub use credit::{Admission, CreditQueue, CreditStats};
pub use error::{IngestError, Result};
pub use pipeline::{AssembledVector, IngestStats, Ingestor, LinkFlag};
pub use queue::{IngestQueue, PushOutcome};
pub use sample::{BatchReport, LinkSample};
pub use window::{LinkAggregate, LinkStatus, LinkWindow};
