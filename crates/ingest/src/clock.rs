//! The pipeline's notion of "now": sample-driven by default, hand-driven in
//! tests.
//!
//! The ingestion pipeline never consults the wall clock — every decision that
//! involves time (late-sample drops, window eviction, staleness) is made
//! against a *stream clock*. [`ClockMode`] selects where that clock comes
//! from:
//!
//! * [`ClockMode::SampleDriven`] (the default, and the production behavior):
//!   the clock is the newest sample timestamp the pipeline has seen. Time
//!   advances exactly as fast as data arrives, so replaying a recorded
//!   stream reproduces every decision bit for bit.
//! * [`ClockMode::Manual`]: the clock only moves when the owner calls
//!   [`crate::Ingestor::advance_clock_to`]. A test harness injecting faults
//!   (link death, loss bursts, clock skew) uses this to pin "now" to the
//!   nominal scenario time, so a fault that silences *every* link still ages
//!   the windows deterministically — under sample-driven time a total outage
//!   would freeze the clock and mask the staleness it should cause.
//!
//! Either way the clock is monotone: it never moves backwards.

use serde::{Deserialize, Serialize};

/// Where the pipeline's stream clock comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ClockMode {
    /// "Now" is the maximum sample timestamp seen (production default).
    #[default]
    SampleDriven,
    /// "Now" only advances via [`crate::Ingestor::advance_clock_to`]
    /// (deterministic test harnesses; fault injection).
    Manual,
}
