//! RASS — Zhang et al., "RASS: a real-time, accurate, and scalable system for
//! tracking transceiver-free objects", IEEE TPDS 2013.
//!
//! RASS is the fingerprint-*dependent* comparator in the paper's Fig. 5. It
//! classifies the target into a grid cell from the pattern of **influential
//! links** — links whose RSS visibly drops when the target is present — and
//! refines the estimate to the weighted center of the best-matching cells
//! (the original paper interpolates inside its triangle cells; on TafLoc's
//! square grid we use the analogous top-`k` weighted centroid).
//!
//! Because it matches against stored per-cell signatures, RASS inherits the
//! fingerprint-aging problem: Fig. 5 evaluates it both on a 3-month-old database
//! ("RASS w/o rec.") and on a database refreshed by TafLoc's reconstruction
//! scheme ("RASS w/ rec."), demonstrating that the reconstruction transfers to
//! other fingerprint systems.

use serde::{Deserialize, Serialize};
use taf_rfsim::geometry::Point;
use tafloc_core::db::FingerprintDb;
use tafloc_core::error::TaflocError;
use tafloc_core::Result;

/// RASS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RassConfig {
    /// RSS drop (dB) below the empty-room level that makes a link "influential".
    pub influence_threshold_db: f64,
    /// Number of best-matching cells averaged into the position estimate.
    pub top_k: usize,
    /// Weight of non-influential links in the signature distance. RASS's
    /// classification is driven by the influential links; the remaining links
    /// enter at this reduced weight to disambiguate positions along a single
    /// link's ellipse.
    pub background_weight: f64,
}

impl Default for RassConfig {
    fn default() -> Self {
        RassConfig { influence_threshold_db: 2.0, top_k: 3, background_weight: 0.25 }
    }
}

/// A RASS instance bound to a fingerprint database (stale or reconstructed).
///
/// ```
/// use taf_baselines::{Rass, RassConfig};
/// use taf_rfsim::{campaign, World, WorldConfig};
/// use tafloc_core::db::FingerprintDb;
///
/// let world = World::new(WorldConfig::small_test(), 1);
/// let x = campaign::full_calibration(&world, 0.0, 20);
/// let empty = campaign::empty_snapshot(&world, 0.0, 20);
/// let db = FingerprintDb::from_world(x, &world).unwrap();
/// let rass = Rass::new(db, empty, RassConfig::default()).unwrap();
///
/// let y = campaign::snapshot_at_cell(&world, 0.0, 7, 20);
/// let fix = rass.localize(&y).unwrap();
/// assert!(fix.cell < world.num_cells());
/// ```
#[derive(Debug, Clone)]
pub struct Rass {
    config: RassConfig,
    db: FingerprintDb,
    /// Empty-room RSS measured when the database was built.
    db_empty: Vec<f64>,
}

/// One localization output.
#[derive(Debug, Clone)]
pub struct RassFix {
    /// Best-matching cell.
    pub cell: usize,
    /// Weighted centroid of the top cells.
    pub point: Point,
    /// Number of influential links used for the match.
    pub influential_links: usize,
}

impl Rass {
    /// Binds RASS to a database and the empty-room RSS vector that matches it.
    pub fn new(db: FingerprintDb, db_empty: Vec<f64>, config: RassConfig) -> Result<Self> {
        if db_empty.len() != db.num_links() {
            return Err(TaflocError::DimensionMismatch {
                op: "Rass::new",
                expected: (db.num_links(), 1),
                actual: (db_empty.len(), 1),
            });
        }
        if config.top_k == 0 || !(config.influence_threshold_db >= 0.0) {
            return Err(TaflocError::InvalidConfig {
                field: "rass",
                reason: format!(
                    "top_k ({}) must be >= 1 and influence_threshold ({}) >= 0",
                    config.top_k, config.influence_threshold_db
                ),
            });
        }
        Ok(Rass { config, db, db_empty })
    }

    /// The bound database.
    pub fn db(&self) -> &FingerprintDb {
        &self.db
    }

    /// Swaps in a refreshed database (e.g. one reconstructed by TafLoc) together
    /// with the empty-room vector measured at refresh time — the paper's
    /// "RASS w/ rec." configuration.
    pub fn with_database(&self, db: FingerprintDb, db_empty: Vec<f64>) -> Result<Self> {
        Rass::new(db, db_empty, self.config)
    }

    /// Localizes a live target measurement.
    ///
    /// The per-link drop is computed against the **stored** baseline from
    /// database-build time — a deployed device-free system cannot know when the
    /// room is currently empty (detecting the un-instrumented target is the whole
    /// point), so its baseline ages together with its fingerprints. This is
    /// exactly why Fig. 5's "RASS w/o rec." degrades after 3 months and why
    /// refreshing the database (and baseline) with TafLoc's cheap reconstruction
    /// ("RASS w/ rec.") restores it.
    pub fn localize(&self, y: &[f64]) -> Result<RassFix> {
        let m = self.db.num_links();
        if y.len() != m {
            return Err(TaflocError::DimensionMismatch {
                op: "Rass::localize",
                expected: (m, 1),
                actual: (y.len(), 1),
            });
        }
        // Per-link RSS drop relative to the stored baseline.
        let live_drop: Vec<f64> = self.db_empty.iter().zip(y).map(|(e, v)| e - v).collect();
        // Influential links: clear drop now.
        let influential: Vec<usize> =
            (0..m).filter(|&i| live_drop[i] > self.config.influence_threshold_db).collect();
        let num_influential = if influential.is_empty() { m } else { influential.len() };
        let weight: Vec<f64> = (0..m)
            .map(|i| {
                if influential.is_empty() || influential.contains(&i) {
                    1.0
                } else {
                    self.config.background_weight
                }
            })
            .collect();

        // Signature distance per cell: compare stored drops with live drops,
        // influential links dominating.
        let x = self.db.rss();
        let n = self.db.num_cells();
        let mut scores = Vec::with_capacity(n);
        for j in 0..n {
            let mut acc = 0.0;
            for i in 0..m {
                let stored_drop = self.db_empty[i] - x[(i, j)];
                let d = stored_drop - live_drop[i];
                acc += weight[i] * d * d;
            }
            scores.push(acc.sqrt());
        }
        let (best, _) = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .expect("non-empty grid");

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
        // Same spatial gate as the TafLoc matcher: only cells near the best
        // match join the centroid, so signature aliasing cannot drag the
        // estimate across the room.
        let best_center = self.db.grid().cell_center(best);
        let gate_m = 2.5 * self.db.grid().cell_size();
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for &j in order.iter().take(self.config.top_k.min(n)) {
            let c = self.db.grid().cell_center(j);
            if c.distance(&best_center) > gate_m {
                continue;
            }
            let w = 1.0 / (scores[j] + 1e-6);
            wx += w * c.x;
            wy += w * c.y;
            wsum += w;
        }
        Ok(RassFix {
            cell: best,
            point: Point::new(wx / wsum, wy / wsum),
            influential_links: num_influential,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_rfsim::{campaign, World, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig::paper_default(), 31)
    }

    fn fresh_rass(world: &World, t: f64) -> Rass {
        let x = campaign::full_calibration(world, t, 50);
        let empty = campaign::empty_snapshot(world, t, 50);
        let db = FingerprintDb::from_world(x, world).unwrap();
        Rass::new(db, empty, RassConfig::default()).unwrap()
    }

    #[test]
    fn fresh_database_localizes_well() {
        let w = world();
        let rass = fresh_rass(&w, 0.0);
        let mut errors = Vec::new();
        for cell in (0..w.num_cells()).step_by(5) {
            let y = campaign::snapshot_at_cell(&w, 0.0, cell, 50);
            let fix = rass.localize(&y).unwrap();
            errors.push(fix.point.distance(&w.grid().cell_center(cell)));
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean < 1.6, "fresh RASS mean error {mean:.2} m");
    }

    #[test]
    fn stale_database_degrades() {
        let w = world();
        let rass = fresh_rass(&w, 0.0); // calibrated at day 0
        let t = 90.0;
        let err_of = |r: &Rass| {
            let mut errors = Vec::new();
            for cell in (0..w.num_cells()).step_by(5) {
                let y = campaign::snapshot_at_cell(&w, t, cell, 50);
                let fix = r.localize(&y).unwrap();
                errors.push(fix.point.distance(&w.grid().cell_center(cell)));
            }
            errors.iter().sum::<f64>() / errors.len() as f64
        };
        let stale_err = err_of(&rass);
        let refreshed = fresh_rass(&w, t); // full re-survey at day 90
        let fresh_err = err_of(&refreshed);
        assert!(
            stale_err > fresh_err,
            "3-month-old fingerprints must hurt RASS: stale {stale_err:.2} m vs fresh {fresh_err:.2} m"
        );
    }

    #[test]
    fn with_database_swaps_fingerprints() {
        let w = world();
        let rass = fresh_rass(&w, 0.0);
        let x90 = campaign::full_calibration(&w, 90.0, 50);
        let e90 = campaign::empty_snapshot(&w, 90.0, 50);
        let db90 = FingerprintDb::from_world(x90, &w).unwrap();
        let swapped = rass.with_database(db90, e90).unwrap();
        assert!(!std::ptr::eq(rass.db(), swapped.db()));
    }

    #[test]
    fn influential_links_detected() {
        let w = world();
        let rass = fresh_rass(&w, 0.0);
        // Find a cell on some link's LoS: it must make that link influential.
        let seg = w.deployment().link(0).segment;
        let (cell, _) = (0..w.num_cells())
            .map(|c| (c, seg.distance_to_point(&w.grid().cell_center(c))))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let y = campaign::snapshot_at_cell(&w, 0.0, cell, 50);
        let fix = rass.localize(&y).unwrap();
        assert!(fix.influential_links >= 1);
        assert!(fix.influential_links <= w.num_links());
    }

    #[test]
    fn validates_inputs() {
        let w = world();
        let x = campaign::full_calibration(&w, 0.0, 10);
        let db = FingerprintDb::from_world(x, &w).unwrap();
        assert!(Rass::new(db.clone(), vec![0.0; 2], RassConfig::default()).is_err());
        let bad = RassConfig { top_k: 0, ..Default::default() };
        assert!(Rass::new(db.clone(), vec![-40.0; 10], bad).is_err());
        let bad = RassConfig { influence_threshold_db: -1.0, ..Default::default() };
        assert!(Rass::new(db.clone(), vec![-40.0; 10], bad).is_err());

        let rass = Rass::new(db, vec![-40.0; 10], RassConfig::default()).unwrap();
        assert!(rass.localize(&[0.0; 2]).is_err());
    }

    #[test]
    fn no_influential_links_falls_back_to_all() {
        let w = world();
        let rass = fresh_rass(&w, 0.0);
        // Live measurement equal to the stored baseline -> no drops anywhere.
        let baseline = campaign::empty_snapshot(&w, 0.0, 50);
        let fix = rass.localize(&baseline).unwrap();
        assert_eq!(fix.influential_links, w.num_links());
    }
}
