//! # taf-baselines
//!
//! The two device-free localization baselines TafLoc is evaluated against in
//! Fig. 5 of the paper:
//!
//! * [`rti`] — **Radio Tomographic Imaging** (Wilson & Patwari, TMC 2010): a
//!   fingerprint-free system that inverts per-link attenuation into an
//!   attenuation image. Drift-immune but coarse.
//! * [`rass`] — **RASS** (Zhang et al., TPDS 2013): a fingerprint-dependent
//!   grid-classification system. Evaluated both on stale fingerprints
//!   ("RASS w/o rec.") and on fingerprints refreshed with TafLoc's
//!   reconstruction ("RASS w/ rec."), showing the reconstruction scheme
//!   transfers to other systems.
//!
//! Both consume the same inputs as TafLoc (a [`tafloc_core::db::FingerprintDb`]
//! where applicable, plus live RSS vectors), so the Fig. 5 harness can drive all
//! four systems over identical measurements.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN along with non-positive values in
// config validation — the clippy lint suggesting `x <= 0.0` would silently
// accept NaN. Indexed loops are used where two or more parallel buffers are
// driven by one index; rewriting them as iterator chains hurts readability in
// the numerical kernels.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod rass;
pub mod rti;

pub use rass::{Rass, RassConfig, RassFix};
pub use rti::{Rti, RtiConfig, RtiFix};
