//! Radio Tomographic Imaging (RTI) — Wilson & Patwari, IEEE TMC 2010.
//!
//! RTI is the fingerprint-free comparator in the paper's Fig. 5. It never builds
//! a database: each link's *attenuation* (empty-room RSS minus live RSS) is
//! attributed to the voxels inside the link's Fresnel ellipse through a weight
//! matrix `W`, and an attenuation image `x` is recovered from `y ≈ W·x` by
//! Tikhonov-regularized least squares. The target estimate is the intensity
//! centroid of the brightest voxels.
//!
//! Because it needs no fingerprints, RTI is immune to database aging — but its
//! accuracy is bounded by the ellipse model and the link density, which is why
//! the paper shows TafLoc ahead of it.

use serde::{Deserialize, Serialize};
use taf_linalg::decomp::Cholesky;
use taf_linalg::Matrix;
use taf_rfsim::geometry::{Point, Segment};
use taf_rfsim::grid::FloorGrid;
use tafloc_core::error::TaflocError;
use tafloc_core::Result;

/// RTI configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtiConfig {
    /// Excess-path-length threshold (m) defining each link's sensitive ellipse
    /// (the `λ` parameter of Wilson & Patwari's weight model).
    pub ellipse_width_m: f64,
    /// Tikhonov regularization weight.
    pub regularization: f64,
    /// Number of brightest voxels averaged into the position estimate.
    pub top_k: usize,
}

impl Default for RtiConfig {
    fn default() -> Self {
        RtiConfig { ellipse_width_m: 0.3, regularization: 0.5, top_k: 3 }
    }
}

/// A prepared RTI instance: weight matrix and factored normal equations.
///
/// ```
/// use taf_baselines::{Rti, RtiConfig};
/// use taf_rfsim::geometry::Segment;
/// use taf_rfsim::{campaign, World, WorldConfig};
///
/// let world = World::new(WorldConfig::small_test(), 1);
/// let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
/// let rti = Rti::new(&links, world.grid(), RtiConfig::default()).unwrap();
///
/// let empty = campaign::empty_snapshot(&world, 0.0, 20);
/// let y = campaign::snapshot_at_cell(&world, 0.0, 7, 20);
/// let fix = rti.localize(&empty, &y).unwrap();
/// assert!(fix.cell < world.num_cells());
/// ```
#[derive(Debug, Clone)]
pub struct Rti {
    config: RtiConfig,
    grid: FloorGrid,
    /// `M x N` voxel weight matrix.
    weights: Matrix,
    /// Cholesky factor of `WᵀW + α(I + L)` where `L` is the grid Laplacian
    /// (difference regularization keeps the image smooth).
    normal: Cholesky,
}

/// One localization output.
#[derive(Debug, Clone)]
pub struct RtiFix {
    /// Brightest voxel index.
    pub cell: usize,
    /// Intensity-weighted centroid of the top voxels.
    pub point: Point,
    /// The full attenuation image (one value per voxel).
    pub image: Vec<f64>,
}

impl Rti {
    /// Builds the weight model and factors the regularized normal equations.
    pub fn new(links: &[Segment], grid: &FloorGrid, config: RtiConfig) -> Result<Self> {
        if links.is_empty() {
            return Err(TaflocError::InvalidConfig {
                field: "links",
                reason: "RTI needs at least one link".into(),
            });
        }
        if !(config.ellipse_width_m > 0.0) || !(config.regularization > 0.0) || config.top_k == 0 {
            return Err(TaflocError::InvalidConfig {
                field: "rti",
                reason: format!(
                    "ellipse_width ({}), regularization ({}) must be > 0 and top_k ({}) >= 1",
                    config.ellipse_width_m, config.regularization, config.top_k
                ),
            });
        }
        let m = links.len();
        let n = grid.num_cells();
        let weights = Matrix::from_fn(m, n, |i, j| {
            let seg = &links[i];
            let p = grid.cell_center(j);
            if seg.in_fresnel_ellipse(&p, config.ellipse_width_m) {
                1.0 / seg.length().max(1e-6).sqrt()
            } else {
                0.0
            }
        });

        // Regularizer: identity plus the grid Laplacian (image smoothness).
        let graph = tafloc_core::operators::NeighborGraph::locations(grid);
        let mut reg = graph.laplacian();
        reg.add_diag(1.0)?;
        let mut normal = weights.gram();
        normal.axpy(config.regularization, &reg)?;
        let normal = normal.cholesky()?;
        Ok(Rti { config, grid: grid.clone(), weights, normal })
    }

    /// The voxel weight matrix (`M x N`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Localizes from an empty-room RSS vector and a live RSS vector.
    pub fn localize(&self, empty_rss: &[f64], y: &[f64]) -> Result<RtiFix> {
        let m = self.weights.rows();
        if empty_rss.len() != m || y.len() != m {
            return Err(TaflocError::DimensionMismatch {
                op: "Rti::localize",
                expected: (m, 1),
                actual: (empty_rss.len().max(y.len()), 1),
            });
        }
        // Link attenuation: positive when the target shadows the link.
        let atten: Vec<f64> = empty_rss.iter().zip(y).map(|(e, v)| (e - v).max(0.0)).collect();
        let rhs = self.weights.tr_matvec(&atten);
        let image = self.normal.solve(&rhs)?;

        let (best, _) = image
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite image"))
            .expect("non-empty image");

        // Intensity-weighted centroid of the brightest voxels.
        let mut order: Vec<usize> = (0..image.len()).collect();
        order.sort_by(|&a, &b| image[b].partial_cmp(&image[a]).expect("finite image"));
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for &j in order.iter().take(self.config.top_k) {
            let w = image[j].max(0.0);
            let c = self.grid.cell_center(j);
            wx += w * c.x;
            wy += w * c.y;
            wsum += w;
        }
        let point = if wsum > 0.0 {
            Point::new(wx / wsum, wy / wsum)
        } else {
            // Degenerate image (no attenuation anywhere): report the brightest
            // voxel center.
            self.grid.cell_center(best)
        };
        Ok(RtiFix { cell: best, point, image })
    }

    /// Multi-target localization: extracts up to `max_targets` well-separated
    /// peaks from the attenuation image (greedy non-maximum suppression with a
    /// minimum peak separation of `min_separation_m`).
    ///
    /// Because RTI is an imaging method, several simultaneous bodies appear as
    /// several bright regions — something a single-target fingerprint matcher
    /// cannot represent. Peaks weaker than 30 % of the strongest are dropped
    /// (they are usually regularization ripple, not a body). Returns the
    /// estimated positions, strongest first.
    pub fn localize_multi(
        &self,
        empty_rss: &[f64],
        y: &[f64],
        max_targets: usize,
        min_separation_m: f64,
    ) -> Result<Vec<Point>> {
        if max_targets == 0 || !(min_separation_m > 0.0) {
            return Err(TaflocError::InvalidConfig {
                field: "localize_multi",
                reason: "need max_targets >= 1 and a positive separation".into(),
            });
        }
        let fix = self.localize(empty_rss, y)?;
        let image = fix.image;
        let mut order: Vec<usize> = (0..image.len()).collect();
        order.sort_by(|&a, &b| image[b].partial_cmp(&image[a]).expect("finite image"));
        let peak_floor = image[order[0]] * 0.3;

        let mut peaks: Vec<Point> = Vec::new();
        for &j in &order {
            if peaks.len() >= max_targets || image[j] <= peak_floor.max(0.0) {
                break;
            }
            let c = self.grid.cell_center(j);
            if peaks.iter().all(|p| p.distance(&c) >= min_separation_m) {
                peaks.push(c);
            }
        }
        Ok(peaks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_rfsim::{campaign, World, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig::paper_default(), 21)
    }

    fn rti_for(world: &World) -> Rti {
        let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
        Rti::new(&links, world.grid(), RtiConfig::default()).unwrap()
    }

    #[test]
    fn weight_matrix_shape_and_support() {
        let w = world();
        let rti = rti_for(&w);
        assert_eq!(rti.weights().shape(), (10, 96));
        // Every link covers at least one voxel; no weight is negative.
        for i in 0..10 {
            let row_sum: f64 = rti.weights().row(i).iter().sum();
            assert!(row_sum > 0.0, "link {i} covers no voxels");
        }
        assert!(rti.weights().iter().all(|v| v >= 0.0));
    }

    #[test]
    fn localizes_los_blocking_target() {
        let w = world();
        let rti = rti_for(&w);
        let empty = campaign::empty_snapshot(&w, 0.0, 100);
        // Pick a cell near the center of the area — crossed by several links.
        let center_cell = {
            let c = Point::new(
                w.grid().origin().x + w.grid().width() / 2.0,
                w.grid().origin().y + w.grid().height() / 2.0,
            );
            w.grid().cell_at(&c).unwrap()
        };
        let y = campaign::snapshot_at_cell(&w, 0.0, center_cell, 100);
        let fix = rti.localize(&empty, &y).unwrap();
        let err = fix.point.distance(&w.grid().cell_center(center_cell));
        assert!(err < 1.5, "RTI error at a well-covered cell: {err:.2} m");
    }

    #[test]
    fn image_peaks_near_target_on_average() {
        let w = world();
        let rti = rti_for(&w);
        let empty = campaign::empty_snapshot(&w, 0.0, 100);
        let mut errors = Vec::new();
        for cell in (0..w.num_cells()).step_by(7) {
            let y = campaign::snapshot_at_cell(&w, 0.0, cell, 100);
            let fix = rti.localize(&empty, &y).unwrap();
            errors.push(fix.point.distance(&w.grid().cell_center(cell)));
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        // 10 links over 96 cells is a sparse tomographic net; ~2-3 m mean error
        // (with sub-2 m medians) is the expected regime for RTI here.
        assert!(mean < 3.0, "RTI mean error {mean:.2} m too large for a 10-link net");
    }

    #[test]
    fn immune_to_drift() {
        // RTI uses only same-day empty vs live RSS, so drifting the world between
        // day 0 and day 90 must not degrade it (unlike fingerprint systems).
        let w = world();
        let rti = rti_for(&w);
        let err_at = |t: f64| {
            let empty = campaign::empty_snapshot(&w, t, 100);
            let mut errors = Vec::new();
            for cell in (0..w.num_cells()).step_by(11) {
                let y = campaign::snapshot_at_cell(&w, t, cell, 100);
                let fix = rti.localize(&empty, &y).unwrap();
                errors.push(fix.point.distance(&w.grid().cell_center(cell)));
            }
            errors.iter().sum::<f64>() / errors.len() as f64
        };
        let e0 = err_at(0.0);
        let e90 = err_at(90.0);
        assert!(
            (e90 - e0).abs() < 1.0,
            "RTI should be drift-stable: day 0 {e0:.2} m vs day 90 {e90:.2} m"
        );
    }

    #[test]
    fn no_attenuation_yields_valid_fix() {
        let w = world();
        let rti = rti_for(&w);
        let empty = campaign::empty_snapshot(&w, 0.0, 50);
        // Live == empty: no target anywhere.
        let fix = rti.localize(&empty, &empty).unwrap();
        assert!(fix.cell < w.num_cells());
        assert!(w.grid().cell_at(&fix.point).is_some() || fix.point.x.is_finite());
    }

    #[test]
    fn localize_multi_finds_two_separated_targets() {
        let w = world();
        let rti = rti_for(&w);
        let empty = campaign::empty_snapshot(&w, 0.0, 100);
        // Two people in opposite halves of the room.
        let p1 = w.grid().cell_center(20);
        let p2 = w.grid().cell_center(76);
        assert!(p1.distance(&p2) > 3.0, "test setup: targets must be well separated");
        let y = campaign::snapshot_at_points(&w, 0.0, &[p1, p2], 100);
        let peaks = rti.localize_multi(&empty, &y, 2, 2.0).unwrap();
        assert!(!peaks.is_empty());
        // Each true target has a recovered peak within 2 m.
        for truth in [p1, p2] {
            let best = peaks.iter().map(|p| p.distance(&truth)).fold(f64::INFINITY, f64::min);
            assert!(best < 2.0, "no peak near ({:.1}, {:.1}); peaks {peaks:?}", truth.x, truth.y);
        }
    }

    #[test]
    fn localize_multi_single_target_yields_one_dominant_peak() {
        // Seed-tuned: the shadowing field must not carry a shadow deeper than
        // the single target's, or the dominant-peak assertion is meaningless.
        let w = World::new(WorldConfig::paper_default(), 22);
        let rti = rti_for(&w);
        let empty = campaign::empty_snapshot(&w, 0.0, 100);
        let p = w.grid().cell_center(40);
        let y = campaign::snapshot_at_points(&w, 0.0, &[p], 100);
        let peaks = rti.localize_multi(&empty, &y, 3, 2.0).unwrap();
        assert!(!peaks.is_empty());
        assert!(peaks[0].distance(&p) < 2.0, "dominant peak off target: {peaks:?}");
    }

    #[test]
    fn localize_multi_validates_args() {
        let w = world();
        let rti = rti_for(&w);
        let empty = campaign::empty_snapshot(&w, 0.0, 10);
        assert!(rti.localize_multi(&empty, &empty, 0, 1.0).is_err());
        assert!(rti.localize_multi(&empty, &empty, 2, 0.0).is_err());
    }

    #[test]
    fn validates_inputs() {
        let w = world();
        let links: Vec<Segment> = w.deployment().links().iter().map(|l| l.segment).collect();
        assert!(Rti::new(&[], w.grid(), RtiConfig::default()).is_err());
        let bad = RtiConfig { ellipse_width_m: 0.0, ..Default::default() };
        assert!(Rti::new(&links, w.grid(), bad).is_err());
        let bad = RtiConfig { regularization: 0.0, ..Default::default() };
        assert!(Rti::new(&links, w.grid(), bad).is_err());
        let bad = RtiConfig { top_k: 0, ..Default::default() };
        assert!(Rti::new(&links, w.grid(), bad).is_err());

        let rti = rti_for(&w);
        assert!(rti.localize(&[0.0; 3], &[0.0; 10]).is_err());
        assert!(rti.localize(&[0.0; 10], &[0.0; 3]).is_err());
    }
}
