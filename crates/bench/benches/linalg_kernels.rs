//! Criterion benches for the linear-algebra kernels that dominate LoLi-IR:
//! matrix multiplication, Cholesky solves, column-pivoted QR and the Jacobi SVD,
//! all at fingerprint-matrix scale (10 x 96) and a larger stress size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use taf_linalg::Matrix;

fn dense(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17) % 23) as f64 / 7.0 - 1.5)
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &(m, k, n) in &[(10, 96, 96), (64, 64, 64), (128, 128, 128)] {
        let a = dense(m, k);
        let b = dense(k, n);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bch, (a, b)| bch.iter(|| black_box(a.matmul(b).unwrap())),
        );
    }
    g.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky_solve");
    for &n in &[8, 32, 96] {
        let b = dense(n, n);
        let mut spd = b.gram();
        spd.add_diag(n as f64).unwrap();
        let rhs = vec![1.0; n];
        g.bench_with_input(BenchmarkId::from_parameter(n), &(spd, rhs), |bch, (spd, rhs)| {
            bch.iter(|| black_box(spd.cholesky().unwrap().solve(rhs).unwrap()))
        });
    }
    g.finish();
}

fn bench_qr_pivot(c: &mut Criterion) {
    let mut g = c.benchmark_group("col_piv_qr");
    for &(m, n) in &[(10, 96), (10, 400), (32, 256)] {
        let a = dense(m, n);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{n}")), &a, |bch, a| {
            bch.iter(|| black_box(a.col_piv_qr().unwrap()))
        });
    }
    g.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi_svd");
    for &(m, n) in &[(10, 96), (32, 64)] {
        let a = dense(m, n);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{n}")), &a, |bch, a| {
            bch.iter(|| black_box(a.svd().unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_cholesky, bench_qr_pivot, bench_svd);
criterion_main!(benches);
