//! Criterion benches for online localization throughput: one live RSS vector
//! against the 96-cell database, for each matching method. Device-free
//! localization is meant to run in real time (RASS's selling point is "a
//! location update every second"), so the per-query cost matters.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::matcher::{localize, MatchMethod};

fn bench_matchers(c: &mut Criterion) {
    let world = World::new(WorldConfig::paper_default(), 7);
    let x = campaign::full_calibration(&world, 0.0, 50);
    let db = FingerprintDb::from_world(x, &world).unwrap();
    let y = campaign::snapshot_at_cell(&world, 0.0, 40, 50);

    let mut g = c.benchmark_group("localize_96_cells");
    g.bench_function("nearest_neighbor", |b| {
        b.iter(|| black_box(localize(&db, &y, MatchMethod::NearestNeighbor).unwrap()))
    });
    g.bench_function("knn3", |b| {
        b.iter(|| black_box(localize(&db, &y, MatchMethod::Knn { k: 3 }).unwrap()))
    });
    g.bench_function("probabilistic", |b| {
        b.iter(|| {
            black_box(localize(&db, &y, MatchMethod::Probabilistic { sigma_db: 2.0 }).unwrap())
        })
    });
    g.finish();
}

fn bench_large_grid(c: &mut Criterion) {
    // Fig. 4 scale: a 20x20-cell area — matching must stay fast as areas grow.
    let world = World::new(WorldConfig::square_area(12.0), 7);
    let x = world.fingerprint_truth(0.0);
    let db = FingerprintDb::from_world(x, &world).unwrap();
    let y = campaign::snapshot_at_cell(&world, 0.0, 150, 20);
    c.bench_function("localize_400_cells_knn3", |b| {
        b.iter(|| black_box(localize(&db, &y, MatchMethod::Knn { k: 3 }).unwrap()))
    });
}

criterion_group!(benches, bench_matchers, bench_large_grid);
criterion_main!(benches);
