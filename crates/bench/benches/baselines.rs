//! Criterion benches for the baseline systems: RTI model build + per-query
//! inversion, and RASS per-query classification — the comparators driven by
//! the Fig. 5 harness.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taf_baselines::{Rass, RassConfig, Rti, RtiConfig};
use taf_rfsim::geometry::Segment;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;

fn bench_rti(c: &mut Criterion) {
    let world = World::new(WorldConfig::paper_default(), 13);
    let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
    let grid = world.grid().clone();

    c.bench_function("rti_build", |b| {
        b.iter(|| black_box(Rti::new(&links, &grid, RtiConfig::default()).unwrap()))
    });

    let rti = Rti::new(&links, &grid, RtiConfig::default()).unwrap();
    let empty = campaign::empty_snapshot(&world, 0.0, 50);
    let y = campaign::snapshot_at_cell(&world, 0.0, 40, 50);
    c.bench_function("rti_localize", |b| b.iter(|| black_box(rti.localize(&empty, &y).unwrap())));
}

fn bench_rass(c: &mut Criterion) {
    let world = World::new(WorldConfig::paper_default(), 13);
    let x = campaign::full_calibration(&world, 0.0, 50);
    let empty = campaign::empty_snapshot(&world, 0.0, 50);
    let db = FingerprintDb::from_world(x, &world).unwrap();
    let rass = Rass::new(db, empty, RassConfig::default()).unwrap();
    let y = campaign::snapshot_at_cell(&world, 0.0, 40, 50);
    c.bench_function("rass_localize", |b| b.iter(|| black_box(rass.localize(&y).unwrap())));
}

criterion_group!(benches, bench_rti, bench_rass);
criterion_main!(benches);
