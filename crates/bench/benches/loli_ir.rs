//! Criterion benches for the LoLi-IR reconstruction pipeline at paper scale
//! (10 links x 96 cells, 10 reference columns): the full solver, the
//! graph-free variant, and the SVT completion baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use taf_linalg::Matrix;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::mask::Mask;
use tafloc_core::svt::{soft_impute, SvtConfig};
use tafloc_core::system::{TafLoc, TafLocConfig};

struct Setup {
    sys: TafLoc,
    sys_no_graphs: TafLoc,
    fresh: Matrix,
    fresh_empty: Vec<f64>,
    observed: Matrix,
    mask: Mask,
}

fn setup() -> Setup {
    let world = World::new(WorldConfig::paper_default(), 42);
    let x0 = campaign::full_calibration(&world, 0.0, 50);
    let e0 = campaign::empty_snapshot(&world, 0.0, 50);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let sys = TafLoc::calibrate(TafLocConfig::default(), db.clone(), e0.clone()).unwrap();
    let mut cfg = TafLocConfig::default();
    cfg.loli.alpha = 0.0;
    cfg.loli.beta = 0.0;
    let sys_no_graphs = TafLoc::calibrate(cfg, db, e0).unwrap();

    let fresh = campaign::measure_columns(&world, 90.0, sys.reference_cells(), 50);
    let fresh_empty = campaign::empty_snapshot(&world, 90.0, 50);

    let (m, n) = (world.num_links(), world.num_cells());
    let mut observed = Matrix::zeros(m, n);
    for (k, &cell) in sys.reference_cells().iter().enumerate() {
        observed.set_col(cell, &fresh.col(k)).unwrap();
    }
    let mask = Mask::from_columns(m, n, sys.reference_cells()).unwrap();
    Setup { sys, sys_no_graphs, fresh, fresh_empty, observed, mask }
}

fn bench_reconstruction(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("reconstruction_90d");
    g.bench_function("loli_ir_full", |b| {
        b.iter(|| black_box(s.sys.reconstruct_db(&s.fresh, &s.fresh_empty).unwrap()))
    });
    g.bench_function("loli_ir_no_graphs", |b| {
        b.iter(|| black_box(s.sys_no_graphs.reconstruct_db(&s.fresh, &s.fresh_empty).unwrap()))
    });
    g.bench_function("svt_baseline", |b| {
        let cfg = SvtConfig { tau: 0.5, max_iters: 100, tol: 1e-6 };
        b.iter(|| black_box(soft_impute(&s.observed, &s.mask, &cfg).unwrap()))
    });
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let world = World::new(WorldConfig::paper_default(), 42);
    let x0 = campaign::full_calibration(&world, 0.0, 50);
    let e0 = campaign::empty_snapshot(&world, 0.0, 50);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    c.bench_function("tafloc_calibrate", |b| {
        b.iter(|| {
            black_box(TafLoc::calibrate(TafLocConfig::default(), db.clone(), e0.clone()).unwrap())
        })
    });
}

criterion_group!(benches, bench_reconstruction, bench_calibration);
criterion_main!(benches);
