//! Fig. 4 driver: fingerprint update time cost vs monitored-area size.
//!
//! The paper's cost model: surveying one grid cell takes 100 RSS samples at
//! 1 Hz = 100 s. A manual update of an `edge x edge` area with 0.6 m cells
//! therefore costs `100·(edge/0.6)²` seconds, while TafLoc only visits its `n`
//! reference cells: `100·n` seconds (plus a negligible empty-room snapshot).
//!
//! The paper plots both against the edge length (6-36 m) and annotates the gap
//! (the text works the 6 m x 6 m case: 2.78 h vs 0.28 h). We additionally
//! *verify* per area size that `n` reference locations actually suffice — the
//! numerical rank of the simulated fingerprint matrix stays near the link count
//! regardless of area, which is exactly why TafLoc's cost curve stays flat.

use taf_rfsim::{World, WorldConfig};

/// Seconds of surveying per visited grid cell (100 samples at 1 Hz).
pub const SECONDS_PER_CELL: f64 = 100.0;

/// One row of the Fig. 4 table.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Edge length of the square monitored area (m).
    pub edge_m: f64,
    /// Number of 0.6 m grid cells in the area.
    pub cells: usize,
    /// Manual (existing systems) update cost in hours.
    pub manual_hours: f64,
    /// TafLoc update cost in hours (visiting `ref_count` cells).
    pub tafloc_hours: f64,
    /// Numerical rank of the simulated fingerprint matrix for this area — the
    /// number of reference locations actually needed.
    pub numerical_rank: usize,
}

/// Computes one row of the Fig. 4 sweep.
pub fn row(edge_m: f64, ref_count: usize, seed: u64) -> Fig4Row {
    let config = WorldConfig::square_area(edge_m);
    let world = World::new(config, seed);
    let cells = world.num_cells();
    let manual_hours = SECONDS_PER_CELL * cells as f64 / 3600.0;
    let tafloc_hours = SECONDS_PER_CELL * ref_count as f64 / 3600.0;

    // Rank check on the noise-free matrix: how many linearly independent
    // columns does the area's fingerprint matrix actually have?
    let x = world.fingerprint_truth(0.0);
    let numerical_rank = x.col_piv_qr().expect("non-empty matrix").rank(1e-6);

    Fig4Row { edge_m, cells, manual_hours, tafloc_hours, numerical_rank }
}

/// The paper's sweep: edge lengths 6..36 m.
pub fn sweep(ref_count: usize, seed: u64) -> Vec<Fig4Row> {
    [6.0, 12.0, 18.0, 24.0, 30.0, 36.0].iter().map(|&edge| row(edge, ref_count, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example_6m() {
        // In-text: 6 m x 6 m => 100·(6/0.6)²/3600 ≈ 2.78 h manual, 0.28 h TafLoc.
        let r = row(6.0, 10, 1);
        assert_eq!(r.cells, 100);
        assert!((r.manual_hours - 2.78).abs() < 0.01, "{}", r.manual_hours);
        assert!((r.tafloc_hours - 0.28).abs() < 0.01, "{}", r.tafloc_hours);
    }

    #[test]
    fn manual_cost_quadratic_tafloc_flat() {
        let rows = sweep(10, 2);
        for w in rows.windows(2) {
            assert!(w[1].manual_hours > w[0].manual_hours);
            assert_eq!(w[0].tafloc_hours, w[1].tafloc_hours);
        }
        // 36 m manual cost is (36/6)² = 36x the 6 m cost.
        assert!((rows[5].manual_hours / rows[0].manual_hours - 36.0).abs() < 1e-9);
    }

    #[test]
    fn rank_stays_bounded_by_link_count() {
        // The reason TafLoc's curve is flat: the fingerprint matrix rank is
        // bounded by the number of links (10), not the number of cells.
        let small = row(6.0, 10, 3);
        let large = row(18.0, 10, 3);
        assert!(small.numerical_rank <= 10);
        assert!(large.numerical_rank <= 10);
        assert!(large.cells > 8 * small.cells / 2, "area grew");
    }
}
