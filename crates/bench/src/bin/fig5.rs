//! Regenerates **Fig. 5**: localization error CDFs at 3 months for TafLoc, RTI,
//! RASS with reconstruction, and RASS without reconstruction.
//!
//! Usage: `cargo run --release -p taf-bench --bin fig5 [seeds] [samples] [cell_step]`

use taf_bench::fig5::run;
use taf_bench::report::{print_cdf_table, print_summaries};
use taf_linalg::stats::Ecdf;

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let cell_step: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let seeds: Vec<u64> = (1..=num_seeds).collect();
    eprintln!(
        "fig5: {} seeds, {} samples, every {} cell(s), horizon 90 days ...",
        seeds.len(),
        samples,
        cell_step
    );
    let result = run(&seeds, samples, cell_step);

    let series: Vec<(String, Ecdf)> = [
        ("TafLoc", &result.tafloc),
        ("RTI", &result.rti),
        ("RASS w/ rec.", &result.rass_with_rec),
        ("RASS w/o rec.", &result.rass_without_rec),
    ]
    .iter()
    .map(|(name, errs)| (name.to_string(), Ecdf::new(errs).expect("non-empty errors")))
    .collect();

    print_cdf_table("Fig. 5 — localization error CDF at 3 months", "error [m]", 6.0, 13, &series);
    println!();
    print_summaries(&series);
    println!(
        "\nPaper's qualitative claims: TafLoc performs best; RASS w/ rec. median is significantly \
         improved over RASS w/o rec. (the reconstruction transfers to other systems)."
    );
}
