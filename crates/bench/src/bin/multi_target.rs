//! Multi-target extension experiment (`multi` row in DESIGN.md).
//!
//! Two people stand in the monitored area simultaneously. A single-target
//! fingerprint matcher (TafLoc's) can at best lock onto one of them — its
//! database columns describe exactly one body. RTI, being an imaging method,
//! renders both as separate peaks. This experiment quantifies that boundary of
//! the paper's design (and is why RASS/RTI-style methods remain relevant
//! alongside fingerprints):
//!
//! * **RTI (2 peaks)** — both-found rate (each true position has a peak within
//!   1.5 m) and per-target error;
//! * **TafLoc (single fix)** — distance from its one estimate to the *nearest*
//!   of the two true positions (its best case).
//!
//! Usage: `cargo run --release -p taf-bench --bin multi_target [seeds] [samples]`

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use taf_baselines::{Rti, RtiConfig};
use taf_rfsim::geometry::Segment;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};

struct SeedOutcome {
    both_found: usize,
    trials: usize,
    rti_errors: Vec<f64>,
    tafloc_nearest_errors: Vec<f64>,
}

fn run_seed(seed: u64, samples: usize) -> SeedOutcome {
    let world = World::new(WorldConfig::paper_default(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    let tafloc =
        TafLoc::calibrate(TafLocConfig::default(), db, e0.clone()).expect("calibration succeeds");
    let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
    let rti = Rti::new(&links, world.grid(), RtiConfig::default()).expect("rti builds");

    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut out = SeedOutcome {
        both_found: 0,
        trials: 0,
        rti_errors: Vec::new(),
        tafloc_nearest_errors: Vec::new(),
    };
    let n = world.num_cells();
    for _ in 0..12 {
        // Draw two cells at least 3 m apart.
        let (c1, c2) = loop {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if world.grid().cell_distance(a, b) >= 3.0 {
                break (a, b);
            }
        };
        let p1 = world.grid().cell_center(c1);
        let p2 = world.grid().cell_center(c2);
        let y = campaign::snapshot_at_points(&world, 0.0, &[p1, p2], samples);
        out.trials += 1;

        // RTI two-peak extraction.
        let peaks = rti.localize_multi(&e0, &y, 2, 2.0).expect("rti localizes");
        let mut found = 0;
        for truth in [p1, p2] {
            let best = peaks.iter().map(|p| p.distance(&truth)).fold(f64::INFINITY, f64::min);
            if best < 1.5 {
                found += 1;
            }
            if best.is_finite() {
                out.rti_errors.push(best);
            }
        }
        if found == 2 {
            out.both_found += 1;
        }

        // TafLoc single-target matcher: its one fix vs the nearest truth.
        let fix = tafloc.localize(&y).expect("tafloc localizes");
        let nearest = fix.point.distance(&p1).min(fix.point.distance(&p2));
        out.tafloc_nearest_errors.push(nearest);
    }
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    eprintln!("multi_target: two simultaneous targets, {} seeds x 12 trials ...", seeds.len());
    let outs = taf_bench::run_seeds(&seeds, |s| run_seed(s, samples));

    let trials: usize = outs.iter().map(|o| o.trials).sum();
    let both: usize = outs.iter().map(|o| o.both_found).sum();
    let rti_errs: Vec<f64> = outs.iter().flat_map(|o| o.rti_errors.clone()).collect();
    let taf_errs: Vec<f64> = outs.iter().flat_map(|o| o.tafloc_nearest_errors.clone()).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    println!("\n== Two simultaneous device-free targets ==");
    println!("trials: {trials}");
    println!(
        "RTI (2-peak extraction):   both targets found in {:.0}% of trials; mean per-target error {:.2} m",
        100.0 * both as f64 / trials as f64,
        mean(&rti_errs)
    );
    println!(
        "TafLoc (single-target DB): one fix only; distance to NEAREST target {:.2} m mean",
        mean(&taf_errs)
    );
    println!(
        "\nA single-target fingerprint database cannot represent two bodies — the matcher locks \
         onto one (or a blend); imaging methods keep both. Multi-target fingerprinting is the \
         natural future-work direction."
    );
}
