//! Ablation `abl-ref`: number of reference locations x selection strategy.
//!
//! The paper picks `n = 10` "maximum linearly independent" columns (QR
//! pivoting). This sweep shows (a) how reconstruction degrades when fewer
//! references are surveyed, (b) the saturation beyond the matrix rank, and
//! (c) what the QR selection buys over random or leverage-score selection.
//!
//! Usage: `cargo run --release -p taf-bench --bin ablation_refs [seeds] [samples]`

use taf_bench::ablation::evaluate_seeds;
use tafloc_core::reference::ReferenceStrategy;
use tafloc_core::system::TafLocConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    let strategies: [(&str, ReferenceStrategy); 3] = [
        ("qr-pivot", ReferenceStrategy::QrPivot),
        ("random", ReferenceStrategy::Random { seed: 99 }),
        ("leverage", ReferenceStrategy::LeverageScore),
    ];

    println!("== Ablation: reference count x selection strategy (90-day update) ==");
    println!("{:>6} {:>12} {:>22} {:>22}", "n", "strategy", "recon mean [dBm]", "loc median [m]");
    for n in [4, 6, 8, 10, 14, 20] {
        for (name, strategy) in strategies {
            let cfg = TafLocConfig { ref_count: n, ref_strategy: strategy, ..Default::default() };
            let out = evaluate_seeds(cfg, &seeds, samples, 2);
            println!(
                "{:>6} {:>12} {:>22.3} {:>22.3}",
                n, name, out.recon_mean_dbm, out.loc_median_m
            );
        }
    }
    println!("\nUpdate cost scales linearly in n (100 s per reference location): n=10 is 0.28 h.");
}
