//! Update-policy experiment (`policy` row in DESIGN.md): quantify the
//! "time-adaptive" part of TafLoc's name. Four maintenance policies run over a
//! 120-day deployment with weekly accuracy checkpoints:
//!
//! * **never** — day-0 fingerprints age in place;
//! * **fixed-30d / fixed-7d** — reference-only updates on a fixed schedule;
//! * **monitor** — a [`tafloc_core::monitor::DriftMonitor`] spot-checks two
//!   reference cells weekly and triggers an update only when the estimated
//!   database error crosses 3 dB.
//!
//! The output table reports mean localization error and total labor hours —
//! the adaptive policy should sit on the Pareto front.
//!
//! Usage: `cargo run --release -p taf-bench --bin update_policy [seeds] [samples]`

use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::monitor::{MonitorConfig, Recommendation};
use tafloc_core::system::{TafLoc, TafLocConfig};

const HORIZON_DAYS: f64 = 120.0;
const CHECK_EVERY_DAYS: f64 = 7.0;
/// Labor: 100 s per surveyed cell.
const HOURS_PER_CELL: f64 = 100.0 / 3600.0;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Policy {
    Never,
    Fixed { interval_days: f64 },
    Monitored { threshold_db: f64, spot_cells: usize },
}

#[derive(Debug, Clone, Copy)]
struct Outcome {
    mean_err_m: f64,
    updates: usize,
    labor_hours: f64,
}

fn eval_errors(world: &World, sys: &TafLoc, t: f64, samples: usize) -> Vec<f64> {
    (0..world.num_cells())
        .step_by(4)
        .map(|cell| {
            let y = campaign::snapshot_at_cell(world, t, cell, samples);
            sys.localize(&y)
                .expect("localization succeeds")
                .point
                .distance(&world.grid().cell_center(cell))
        })
        .collect()
}

fn run_policy(policy: Policy, seed: u64, samples: usize) -> Outcome {
    let world = World::new(WorldConfig::paper_default(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    let mut sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).expect("calibration succeeds");

    let mut monitor = match policy {
        Policy::Monitored { threshold_db, spot_cells } => Some(
            sys.monitor(
                spot_cells,
                0.0,
                MonitorConfig {
                    error_threshold_db: threshold_db,
                    min_interval_days: CHECK_EVERY_DAYS,
                },
            )
            .expect("monitor builds"),
        ),
        _ => None,
    };

    let mut updates = 0;
    let mut labor_hours = 0.0;
    let mut errs = Vec::new();
    let mut day = CHECK_EVERY_DAYS;
    let mut last_fixed_update = 0.0;
    while day <= HORIZON_DAYS + 1e-9 {
        // Maintenance step.
        let do_update = match policy {
            Policy::Never => false,
            Policy::Fixed { interval_days } => day - last_fixed_update >= interval_days - 1e-9,
            Policy::Monitored { spot_cells, .. } => {
                let m = monitor.as_ref().expect("monitored policy has a monitor");
                let spot = campaign::measure_columns(&world, day, m.cells(), samples);
                labor_hours += spot_cells as f64 * HOURS_PER_CELL;
                matches!(
                    m.check(day, &spot).expect("spot check"),
                    Recommendation::UpdateRecommended { .. }
                )
            }
        };
        if do_update {
            let fresh = campaign::measure_columns(&world, day, sys.reference_cells(), samples);
            let empty = campaign::empty_snapshot(&world, day, samples);
            sys.update(&fresh, &empty).expect("update succeeds");
            labor_hours += sys.reference_cells().len() as f64 * HOURS_PER_CELL;
            updates += 1;
            last_fixed_update = day;
            if let Some(m) = monitor.as_mut() {
                let refreshed = sys.db().rss().select_cols(m.cells()).expect("cells exist");
                m.record_update(day, refreshed).expect("baseline refresh");
            }
        }
        // Accuracy checkpoint.
        errs.extend(eval_errors(&world, &sys, day, samples));
        day += CHECK_EVERY_DAYS;
    }
    Outcome { mean_err_m: errs.iter().sum::<f64>() / errs.len() as f64, updates, labor_hours }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    let policies: [(&str, Policy); 4] = [
        ("never", Policy::Never),
        ("fixed-30d", Policy::Fixed { interval_days: 30.0 }),
        ("fixed-7d", Policy::Fixed { interval_days: 7.0 }),
        ("monitor-3dB", Policy::Monitored { threshold_db: 3.0, spot_cells: 2 }),
    ];

    println!("== Update policies over {HORIZON_DAYS:.0} days (weekly accuracy checkpoints) ==");
    println!("{:>14} {:>16} {:>10} {:>14}", "policy", "mean error [m]", "updates", "labor [hours]");
    for (name, policy) in policies {
        let outs = taf_bench::run_seeds(&seeds, |s| run_policy(policy, s, samples));
        let n = outs.len() as f64;
        let mean_err = outs.iter().map(|o| o.mean_err_m).sum::<f64>() / n;
        let updates = outs.iter().map(|o| o.updates).sum::<usize>() as f64 / n;
        let labor = outs.iter().map(|o| o.labor_hours).sum::<f64>() / n;
        println!("{name:>14} {mean_err:>16.2} {updates:>10.1} {labor:>14.2}");
    }
    println!(
        "\n(for scale: ONE full re-survey of the 96-cell area costs {:.2} h)",
        96.0 * HOURS_PER_CELL
    );
}
