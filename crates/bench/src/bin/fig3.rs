//! Regenerates **Fig. 3**: fingerprint reconstruction error CDFs after
//! 3 days / 5 days / 15 days / 45 days / 3 months, plus the paper's in-text
//! mean errors (2.7 / 3.3 / 3.6 / 4.1 dBm at 3 d / 15 d / 45 d / 3 mo).
//!
//! Usage: `cargo run --release -p taf-bench --bin fig3 [seeds] [samples]`

use taf_bench::fig3::{run, HORIZONS, PAPER_MEANS};
use taf_bench::report::{compare_row, print_cdf_table, print_summaries};
use taf_linalg::stats::Ecdf;

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);

    let seeds: Vec<u64> = (1..=num_seeds).collect();
    eprintln!("fig3: {} seeds x {} samples per survey ...", seeds.len(), samples);
    let result = run(&seeds, samples);

    let labels = ["3 days", "5 days", "15 days", "45 days", "3 months"];
    let series: Vec<(String, Ecdf)> = result
        .errors
        .iter()
        .zip(labels)
        .map(|(errs, label)| (label.to_string(), Ecdf::new(errs).expect("non-empty errors")))
        .collect();

    print_cdf_table(
        "Fig. 3 — fingerprint reconstruction error CDF",
        "error [dBm]",
        15.0,
        16,
        &series,
    );
    println!();
    print_summaries(&series);

    println!("\nPaper vs measured (mean reconstruction error, dBm):");
    for &(t, paper) in &PAPER_MEANS {
        let idx = HORIZONS.iter().position(|&h| h == t).expect("known horizon");
        println!("{}", compare_row(labels[idx], paper, series[idx].1.mean()));
    }
}
