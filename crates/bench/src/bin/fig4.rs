//! Regenerates **Fig. 4**: fingerprint update time cost vs monitored-area edge
//! length (6-36 m), for manual re-surveying (existing systems) vs TafLoc's
//! reference-only update — including the paper's worked 6 m x 6 m example
//! (2.78 h vs 0.28 h) and a per-area verification that the fingerprint matrix
//! rank (= reference locations actually needed) stays flat.
//!
//! Usage: `cargo run --release -p taf-bench --bin fig4 [ref_count] [seed]`

use taf_bench::fig4::sweep;
use taf_bench::report::compare_row;

fn main() {
    let mut args = std::env::args().skip(1);
    let ref_count: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    eprintln!("fig4: sweeping area edge 6..36 m with {ref_count} reference locations ...");
    let rows = sweep(ref_count, seed);

    println!("\n== Fig. 4 — fingerprint update time cost vs area size ==");
    println!(
        "{:>10} {:>8} {:>18} {:>14} {:>16}",
        "edge [m]", "cells", "existing [hours]", "TafLoc [hours]", "matrix rank"
    );
    for r in &rows {
        println!(
            "{:>10.0} {:>8} {:>18.2} {:>14.2} {:>16}",
            r.edge_m, r.cells, r.manual_hours, r.tafloc_hours, r.numerical_rank
        );
    }

    let six = &rows[0];
    println!("\nPaper's worked example (6 m x 6 m):");
    println!("{}", compare_row("manual hours", 2.78, six.manual_hours));
    println!("{}", compare_row("TafLoc hours", 0.28, six.tafloc_hours));
    println!(
        "\nTafLoc saves {:.1}x at 6 m and {:.1}x at 36 m; the matrix rank stays at {} (<= link count), which is why {} references keep sufficing.",
        six.manual_hours / six.tafloc_hours,
        rows[5].manual_hours / rows[5].tafloc_hours,
        rows[5].numerical_rank,
        ref_count
    );
}
