//! LoLi-IR solver throughput: wall time per reconstruction at paper scale,
//! across thread counts, with the numbers recorded to `BENCH_solver.json`.
//!
//! The problem is the rank-8 reconstruction the serving path runs on every
//! database refresh, scaled up to M=48 links x N=400 cells so the colored
//! Gauss-Seidel classes clear the parallel fan-out threshold. Each thread
//! count runs in its own scoped rayon pool; the output is bit-identical
//! across counts (that contract is enforced by the determinism tests, and
//! cross-checked here), so the only thing that may change is the clock.
//!
//! Reported per thread count: median wall time over the repeat runs,
//! iterations to converge, and speedup versus the 1-thread pool. Process-wide:
//! peak RSS. On a single-core container the speedup is honestly ~1.0x — the
//! JSON records `threads_available` so readers can tell a solver regression
//! from a small machine.
//!
//! Usage: `cargo run --release -p taf-bench --bin solver_bench [--quick]`

use std::time::Instant;
use taf_bench::perf;
use taf_linalg::Matrix;
use taf_testkit::json::Json;
use tafloc_core::loli_ir::{
    reconstruct_with, LoliIrConfig, ReconstructionProblem, SolverWorkspace,
};
use tafloc_core::mask::Mask;
use tafloc_core::operators::NeighborGraph;

/// Deterministic pseudo-random matrix in RSS range (xorshift).
fn pseudo(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        -70.0 + (state % 4000) as f64 / 100.0
    })
}

struct Timing {
    threads: usize,
    median_ms: f64,
    iterations: usize,
    converged: bool,
    objective: f64,
    /// Relative objective decrease over the final iteration, in the same
    /// normalization the solver's stopping rule uses.
    final_rel_delta: f64,
    stop_reason: &'static str,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (m, n, repeats) = if quick { (48, 400, 2) } else { (48, 400, 5) };
    let rank = 8;
    let cfg = LoliIrConfig { rank, max_iters: if quick { 10 } else { 30 }, ..Default::default() };

    let truth = pseudo(m, n, 7);
    let prior = pseudo(m, n, 11);
    let cols: Vec<usize> = (0..n).step_by(3).collect();
    let mask = Mask::from_columns(m, n, &cols).expect("in-range reference columns");
    let g = NeighborGraph::new(n, (0..n - 1).map(|j| (j, j + 1)));
    let h = NeighborGraph::new(m, (0..m - 1).map(|i| (i, i + 1)));
    let problem = ReconstructionProblem {
        observed: &truth,
        mask: &mask,
        lrr_prior: Some(&prior),
        location_graph: Some(&g),
        link_graph: Some(&h),
        empty_rss: None,
        distortion: None,
    };

    println!(
        "solver_bench: {m} links x {n} cells, rank {rank}, max {} iters, {repeats} repeats/pool",
        cfg.max_iters
    );

    // One timed solve on a warm workspace: steady-state iterations allocate
    // nothing, so the clock measures arithmetic, not the allocator.
    let solve = |ws: &mut SolverWorkspace| {
        let t0 = Instant::now();
        let rec = reconstruct_with(&problem, &cfg, ws).expect("reconstruction succeeds");
        (t0.elapsed().as_secs_f64() * 1e3, rec)
    };

    let thread_counts: &[usize] = if cfg!(feature = "parallel") { &[1, 2, 4] } else { &[1] };
    let mut timings: Vec<Timing> = Vec::new();
    let mut reference: Option<Vec<f64>> = None;
    for &threads in thread_counts {
        let mut ws = SolverWorkspace::new();
        let mut run = || {
            let mut samples = Vec::with_capacity(repeats + 1);
            let (_, _warmup) = solve(&mut ws);
            let mut last = None;
            for _ in 0..repeats {
                let (ms, rec) = solve(&mut ws);
                samples.push(ms);
                last = Some(rec);
            }
            (samples, last.expect("at least one repeat"))
        };
        #[cfg(feature = "parallel")]
        let (mut samples, rec) = {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool builds");
            pool.install(&mut run)
        };
        #[cfg(not(feature = "parallel"))]
        let (mut samples, rec) = run();

        // The determinism contract, cross-checked where the numbers are made:
        // every pool must produce the same bits.
        match &reference {
            None => reference = Some(rec.matrix.as_slice().to_vec()),
            Some(want) => assert_eq!(
                want,
                &rec.matrix.as_slice().to_vec(),
                "thread count {threads} changed the reconstruction"
            ),
        }

        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ms = samples[samples.len() / 2];
        let trace = &rec.objective_trace;
        let objective = *trace.last().expect("non-empty trace");
        // The solver stops when (prev - f).abs() <= tol * prev.abs().max(1);
        // report the same normalized delta so readers can see how far from
        // the tolerance a max-iters run ended.
        let final_rel_delta = if trace.len() >= 2 {
            let prev = trace[trace.len() - 2];
            (prev - objective).abs() / prev.abs().max(1.0)
        } else {
            0.0
        };
        let stop_reason = if rec.converged { "converged" } else { "max_iters" };
        println!(
            "  {threads} thread(s): median {median_ms:.3} ms, {} iters (stop: {stop_reason}), objective {objective:.3}, final rel delta {final_rel_delta:.2e}",
            rec.iterations
        );
        timings.push(Timing {
            threads,
            median_ms,
            iterations: rec.iterations,
            converged: rec.converged,
            objective,
            final_rel_delta,
            stop_reason,
        });
    }

    let base_ms = timings[0].median_ms;
    let results: Vec<Json> = timings
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("threads".into(), Json::Num(t.threads as f64)),
                ("wall_ms".into(), Json::Num(perf::round_ms(t.median_ms))),
                ("iterations".into(), Json::Num(t.iterations as f64)),
                ("converged".into(), Json::Bool(t.converged)),
                ("stop_reason".into(), Json::Str(t.stop_reason.into())),
                ("objective".into(), Json::Num(t.objective)),
                ("final_rel_delta".into(), Json::Num(t.final_rel_delta)),
                ("speedup_vs_1_thread".into(), Json::Num(perf::round_ms(base_ms / t.median_ms))),
            ])
        })
        .collect();
    for (t, r) in timings.iter().zip(&results) {
        if t.threads > 1 {
            println!(
                "  speedup at {} threads: {:.2}x",
                t.threads,
                r.num_field("speedup_vs_1_thread").expect("field just written")
            );
        }
    }

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("solver".into())),
        ("quick".into(), Json::Bool(quick)),
        (
            "threads_available".into(),
            Json::Num(std::thread::available_parallelism().map_or(1, |p| p.get()) as f64),
        ),
        (
            "problem".into(),
            Json::Obj(vec![
                ("links".into(), Json::Num(m as f64)),
                ("cells".into(), Json::Num(n as f64)),
                ("rank".into(), Json::Num(rank as f64)),
                ("max_iters".into(), Json::Num(cfg.max_iters as f64)),
                ("repeats".into(), Json::Num(repeats as f64)),
            ]),
        ),
        ("peak_rss_kb".into(), perf::peak_rss_json()),
        ("results".into(), Json::Arr(results)),
    ]);
    let path = perf::write_bench_json("solver", &report);
    println!("wrote {}", path.display());
}
