//! LoLi-IR solver throughput: wall time per reconstruction at paper scale,
//! across thread counts, cold-started and warm-started, with the numbers
//! recorded to `BENCH_solver.json`.
//!
//! The problem is the rank-8 reconstruction the serving path runs on every
//! database refresh, scaled up to M=48 links x N=400 cells so the colored
//! Gauss-Seidel classes clear the parallel fan-out threshold. Two phases per
//! thread count:
//!
//! * **cold** — the refresh a site runs after a restart or rollback: SVD
//!   initialization, full descent to the tolerance.
//! * **warm** — the steady-state refresh: the same problem solved again after
//!   a small drift, seeded from the previous solution exactly as the daemon's
//!   `SolverCache` does it.
//!
//! Each thread count runs in its own scoped rayon pool; within a phase the
//! output is bit-identical across counts (enforced by the determinism tests,
//! cross-checked here), so the only thing that may change is the clock. The
//! iteration budget is high enough that every phase stops on the tolerance,
//! not the cap — `converged` is part of the recorded contract.
//!
//! Honesty notes: `threads_available` records what the machine actually has,
//! and any phase asked to run more threads than that is flagged
//! `oversubscribed` — its "speedup" is a scheduling artifact, not solver
//! scaling. `gflops` is an estimate from counted work (dense products, data
//! terms, per-block Cholesky), good for comparing runs of this bench, not an
//! absolute measure.
//!
//! Usage: `cargo run --release -p taf-bench --bin solver_bench [--quick]`

use std::time::Instant;
use taf_bench::perf;
use taf_linalg::Matrix;
use taf_testkit::json::Json;
use tafloc_core::loli_ir::{
    reconstruct_warm, LoliIrConfig, Reconstruction, ReconstructionProblem, SolverWorkspace,
    WarmState,
};
use tafloc_core::mask::Mask;
use tafloc_core::operators::NeighborGraph;

/// Deterministic pseudo-random matrix in RSS range (xorshift).
fn pseudo(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        -70.0 + (state % 4000) as f64 / 100.0
    })
}

/// Smooth low-amplitude drift — the change between two refreshes of one site.
fn drifted(base: &Matrix, amplitude_db: f64) -> Matrix {
    Matrix::from_fn(base.rows(), base.cols(), |i, j| {
        base[(i, j)] + amplitude_db * (i as f64 * 0.7 + j as f64 * 0.13).sin()
    })
}

/// Estimated floating-point operations for one solve (see module doc).
fn estimated_flops(m: usize, n: usize, r: usize, observed: usize, iterations: usize) -> f64 {
    let dense = 3.0 * 2.0 * (m * n * r) as f64; // prior_l, prior_r, objective
    let grams = 2.0 * 2.0 * ((m + n) * r * r) as f64; // RᵀR then LᵀL
    let data = 2.0 * 2.0 * (observed * r * r) as f64; // rank-1 lhs terms, both sweeps
    let chol = (m + n) as f64 * (2.0 * (r * r * r) as f64 / 3.0 + 4.0 * (r * r) as f64);
    iterations as f64 * (dense + grams + data + chol)
}

struct Phase {
    mode: &'static str,
    threads: usize,
    median_ms: f64,
    iterations: usize,
    converged: bool,
    objective: f64,
    /// Relative objective decrease over the final iteration, in the same
    /// normalization the solver's stopping rule uses.
    final_rel_delta: f64,
    stop_reason: &'static str,
    oversubscribed: bool,
    gflops: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (m, n, repeats) = if quick { (48, 400, 2) } else { (48, 400, 5) };
    let rank = 8;
    let cfg = LoliIrConfig { rank, max_iters: if quick { 150 } else { 300 }, ..Default::default() };

    // Yesterday's problem produces the warm seed; today's (small drift) is
    // what both phases actually solve — cold from scratch, warm from the seed.
    let yesterday_truth = pseudo(m, n, 7);
    let yesterday_prior = pseudo(m, n, 11);
    let truth = drifted(&yesterday_truth, 0.25);
    let prior = drifted(&yesterday_prior, 0.25);
    let cols: Vec<usize> = (0..n).step_by(3).collect();
    let mask = Mask::from_columns(m, n, &cols).expect("in-range reference columns");
    let observed = mask.count();
    let g = NeighborGraph::new(n, (0..n - 1).map(|j| (j, j + 1)));
    let h = NeighborGraph::new(m, (0..m - 1).map(|i| (i, i + 1)));
    let yesterday = ReconstructionProblem {
        observed: &yesterday_truth,
        mask: &mask,
        lrr_prior: Some(&yesterday_prior),
        location_graph: Some(&g),
        link_graph: Some(&h),
        empty_rss: None,
        distortion: None,
    };
    let problem = ReconstructionProblem {
        observed: &truth,
        mask: &mask,
        lrr_prior: Some(&prior),
        location_graph: Some(&g),
        link_graph: Some(&h),
        empty_rss: None,
        distortion: None,
    };

    let threads_available = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "solver_bench: {m} links x {n} cells, rank {rank}, max {} iters, {repeats} repeats/pool, \
         {threads_available} hardware thread(s)",
        cfg.max_iters
    );

    // The warm seed: yesterday's converged solution, adopted the way the
    // daemon adopts a guard-accepted refresh. Not timed.
    let seed_rec = reconstruct_warm(&yesterday, &cfg, &mut SolverWorkspace::new(), None)
        .expect("seed reconstruction succeeds");
    assert!(seed_rec.converged, "seed solve must converge before it may seed anything");
    let warm = WarmState::from_reconstruction(&seed_rec);

    // One timed solve on a reused workspace: steady-state iterations allocate
    // nothing, so the clock measures arithmetic, not the allocator.
    let solve = |ws: &mut SolverWorkspace, warm: Option<&WarmState>| {
        let t0 = Instant::now();
        let rec = reconstruct_warm(&problem, &cfg, ws, warm).expect("reconstruction succeeds");
        (t0.elapsed().as_secs_f64() * 1e3, rec)
    };

    let thread_counts: &[usize] = if cfg!(feature = "parallel") { &[1, 2, 4] } else { &[1] };
    let modes: &[(&'static str, Option<&WarmState>)] = &[("cold", None), ("warm", Some(&warm))];
    let mut phases: Vec<Phase> = Vec::new();
    // `results` must stay ordered cold-1-thread first: downstream tooling
    // (scripts/bench_gate.sh) reads the first entry as the canonical number.
    for &(mode, warm_opt) in modes {
        let mut reference: Option<(Vec<f64>, usize)> = None;
        for &threads in thread_counts {
            let mut ws = SolverWorkspace::new();
            let mut run = || {
                let mut samples = Vec::with_capacity(repeats + 1);
                let _warmup = solve(&mut ws, warm_opt);
                let mut last: Option<Reconstruction> = None;
                for _ in 0..repeats {
                    let (ms, rec) = solve(&mut ws, warm_opt);
                    samples.push(ms);
                    last = Some(rec);
                }
                (samples, last.expect("at least one repeat"))
            };
            #[cfg(feature = "parallel")]
            let (mut samples, rec) = {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool builds");
                pool.install(&mut run)
            };
            #[cfg(not(feature = "parallel"))]
            let (mut samples, rec) = run();

            // The determinism contract, cross-checked where the numbers are
            // made: within a mode, every pool must produce the same bits.
            let got = (rec.matrix.as_slice().to_vec(), rec.iterations);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    want, &got,
                    "thread count {threads} changed the {mode} reconstruction"
                ),
            }
            assert_eq!(rec.warm_start, warm_opt.is_some(), "{mode} phase used the wrong seed");

            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            let median_ms = samples[samples.len() / 2];
            let trace = &rec.objective_trace;
            let objective = *trace.last().expect("non-empty trace");
            // The solver stops when (prev - f).abs() <= tol * prev.abs().max(1);
            // report the same normalized delta so readers can see how far from
            // the tolerance a max-iters run ended.
            let final_rel_delta = if trace.len() >= 2 {
                let prev = trace[trace.len() - 2];
                (prev - objective).abs() / prev.abs().max(1.0)
            } else {
                0.0
            };
            let stop_reason = if rec.converged { "converged" } else { "max_iters" };
            let oversubscribed = threads > threads_available;
            let gflops =
                estimated_flops(m, n, rank, observed, rec.iterations) / (median_ms * 1e-3) / 1e9;
            println!(
                "  {mode:>4} @ {threads} thread(s): median {median_ms:.3} ms, {} iters \
                 (stop: {stop_reason}), objective {objective:.3}, ~{gflops:.2} GFLOP/s{}",
                rec.iterations,
                if oversubscribed { "  [oversubscribed]" } else { "" }
            );
            phases.push(Phase {
                mode,
                threads,
                median_ms,
                iterations: rec.iterations,
                converged: rec.converged,
                objective,
                final_rel_delta,
                stop_reason,
                oversubscribed,
                gflops,
            });
        }
    }

    let cold_1t = phases.iter().find(|p| p.mode == "cold" && p.threads == 1).expect("cold@1 ran");
    let warm_1t = phases.iter().find(|p| p.mode == "warm" && p.threads == 1).expect("warm@1 ran");
    let (cold_iterations, warm_iterations) = (cold_1t.iterations, warm_1t.iterations);
    let base_ms = cold_1t.median_ms;
    let max_thread_speedup = phases
        .iter()
        .filter(|p| p.mode == "cold" && p.threads == *thread_counts.last().expect("non-empty"))
        .map(|p| base_ms / p.median_ms)
        .next()
        .expect("max-thread cold phase ran");

    let results: Vec<Json> = phases
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("mode".into(), Json::Str(p.mode.into())),
                ("threads".into(), Json::Num(p.threads as f64)),
                ("oversubscribed".into(), Json::Bool(p.oversubscribed)),
                ("wall_ms".into(), Json::Num(perf::round_ms(p.median_ms))),
                ("iterations".into(), Json::Num(p.iterations as f64)),
                ("converged".into(), Json::Bool(p.converged)),
                ("stop_reason".into(), Json::Str(p.stop_reason.into())),
                ("objective".into(), Json::Num(p.objective)),
                ("final_rel_delta".into(), Json::Num(p.final_rel_delta)),
                ("gflops".into(), Json::Num(perf::round_ms(p.gflops))),
                ("speedup_vs_1_thread".into(), {
                    let same_mode_1t =
                        phases.iter().find(|q| q.mode == p.mode && q.threads == 1).expect("1t ran");
                    Json::Num(perf::round_ms(same_mode_1t.median_ms / p.median_ms))
                }),
            ])
        })
        .collect();
    for p in &phases {
        if p.threads > 1 && p.mode == "cold" {
            println!("  cold speedup at {} threads: {:.2}x", p.threads, base_ms / p.median_ms);
        }
    }
    println!(
        "  warm refresh: {warm_iterations} iters vs {cold_iterations} cold \
         ({:.1}% of the cold descent)",
        100.0 * warm_iterations as f64 / cold_iterations.max(1) as f64
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("solver".into())),
        ("quick".into(), Json::Bool(quick)),
        ("threads_available".into(), Json::Num(threads_available as f64)),
        (
            "problem".into(),
            Json::Obj(vec![
                ("links".into(), Json::Num(m as f64)),
                ("cells".into(), Json::Num(n as f64)),
                ("rank".into(), Json::Num(rank as f64)),
                ("max_iters".into(), Json::Num(cfg.max_iters as f64)),
                ("repeats".into(), Json::Num(repeats as f64)),
                ("drift_db".into(), Json::Num(0.25)),
            ]),
        ),
        ("cold_iterations".into(), Json::Num(cold_iterations as f64)),
        ("warm_iterations".into(), Json::Num(warm_iterations as f64)),
        ("max_thread_speedup".into(), Json::Num(perf::round_ms(max_thread_speedup))),
        ("peak_rss_kb".into(), perf::peak_rss_json()),
        ("results".into(), Json::Arr(results)),
    ]);
    let path = perf::write_bench_json("solver", &report);
    println!("wrote {}", path.display());
}
