//! Environment-change experiment (`event` row in DESIGN.md): the paper's
//! introduction names "movement of furniture, door opening and closing" as
//! fingerprint-expiry causes. This binary moves a cabinet into the room on
//! day 30 and shows (a) the stale database breaks immediately, and (b) one
//! reference-only TafLoc update the next day restores accuracy — no full
//! re-survey needed.
//!
//! Usage: `cargo run --release -p taf-bench --bin event_recovery [seeds] [samples]`

use taf_rfsim::events::EnvironmentEvent;
use taf_rfsim::geometry::Point;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn loc_median(world: &World, sys: &TafLoc, t: f64, samples: usize) -> f64 {
    let errs: Vec<f64> = (0..world.num_cells())
        .step_by(2)
        .map(|cell| {
            let y = campaign::snapshot_at_cell(world, t, cell, samples);
            sys.localize(&y)
                .expect("localization succeeds")
                .point
                .distance(&world.grid().cell_center(cell))
        })
        .collect();
    median(errs)
}

fn run_seed(seed: u64, samples: usize) -> [f64; 4] {
    let mut config = WorldConfig::paper_default();
    // A cabinet moves near the middle of the room on day 30.
    let center = Point::new(
        config.grid.origin().x + config.grid.width() * 0.45,
        config.grid.origin().y + config.grid.height() * 0.55,
    );
    config.events.push(EnvironmentEvent {
        day: 30.0,
        location: center,
        radius_m: 1.5,
        link_delta_db: -4.0,
        entry_delta_db: 2.5,
    });
    let world = World::new(config, seed);

    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    let mut sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).expect("calibration succeeds");

    let before = loc_median(&world, &sys, 29.0, samples);
    let after_event = loc_median(&world, &sys, 31.0, samples);

    // One reference-only update on day 31.
    let fresh = campaign::measure_columns(&world, 31.0, sys.reference_cells(), samples);
    let empty = campaign::empty_snapshot(&world, 31.0, samples);
    sys.update(&fresh, &empty).expect("update succeeds");
    let after_update = loc_median(&world, &sys, 31.0, samples);

    // Reconstruction error against the post-event truth.
    let truth = world.fingerprint_truth(31.0);
    let recon_err = sys.db().mean_abs_error(&truth).expect("shapes agree");

    [before, after_event, after_update, recon_err]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    eprintln!("event_recovery: cabinet moves on day 30; {} seeds ...", seeds.len());
    let per_seed = taf_bench::run_seeds(&seeds, |s| run_seed(s, samples));
    let mut avg = [0.0; 4];
    for r in &per_seed {
        for (a, v) in avg.iter_mut().zip(r) {
            *a += v / per_seed.len() as f64;
        }
    }

    println!("\n== Environment change: furniture moved on day 30 ==");
    println!("{:>44} {:>12}", "", "median [m]");
    println!("{:>44} {:>12.2}", "day 29 (drift only, stale day-0 DB)", avg[0]);
    println!("{:>44} {:>12.2}", "day 31 (cabinet moved, stale day-0 DB)", avg[1]);
    println!("{:>44} {:>12.2}", "day 31 after reference-only update (0.28 h)", avg[2]);
    println!("\nreconstructed-DB error vs post-event truth: {:.2} dBm", avg[3]);
    println!(
        "the update must recover most of the event-induced degradation: {:.2} -> {:.2} -> {:.2}",
        avg[0], avg[1], avg[2]
    );
}
