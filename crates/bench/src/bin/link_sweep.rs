//! Link-density sweep (`links` row in DESIGN.md): the paper fixes `M = 10`
//! links for its 96-cell area; this experiment varies the deployment density
//! and reruns the 90-day update + localization pipeline, showing
//!
//! * how localization accuracy scales with the number of links,
//! * that the fingerprint-matrix rank (= reference locations needed) grows
//!   with `M`, coupling deployment cost to update cost, and
//! * where the paper's 10-link choice sits on that curve.
//!
//! Usage: `cargo run --release -p taf-bench --bin link_sweep [seeds] [samples]`

use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};

const HORIZON: f64 = 90.0;

struct Row {
    rank: usize,
    recon_dbm: f64,
    loc_median_m: f64,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn run(links: usize, seed: u64, samples: usize) -> Row {
    let mut config = WorldConfig::paper_default();
    config.num_links = links;
    let world = World::new(config, seed);

    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let rank = x0.col_piv_qr().expect("non-empty").rank(1e-6);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    // Reference count follows the matrix rank (capped by the cell count).
    let cfg = TafLocConfig { ref_count: rank.clamp(1, world.num_cells()), ..Default::default() };
    let mut sys = TafLoc::calibrate(cfg, db, e0).expect("calibration succeeds");

    let fresh = campaign::measure_columns(&world, HORIZON, sys.reference_cells(), samples);
    let empty = campaign::empty_snapshot(&world, HORIZON, samples);
    sys.update(&fresh, &empty).expect("update succeeds");

    let truth = world.fingerprint_truth(HORIZON);
    let recon_dbm = sys.db().mean_abs_error(&truth).expect("shapes agree");
    let errs: Vec<f64> = (0..world.num_cells())
        .step_by(2)
        .map(|cell| {
            let y = campaign::snapshot_at_cell(&world, HORIZON, cell, samples);
            sys.localize(&y)
                .expect("localization succeeds")
                .point
                .distance(&world.grid().cell_center(cell))
        })
        .collect();
    Row { rank, recon_dbm, loc_median_m: median(errs) }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    eprintln!("link_sweep: M in {{4..20}}, 90-day update, {} seeds ...", seeds.len());
    println!("== Link-density sweep (90-day update; reference count = matrix rank) ==");
    println!(
        "{:>8} {:>12} {:>18} {:>16} {:>18}",
        "links", "rank (=n)", "recon [dBm]", "loc median [m]", "update cost [h]"
    );
    for links in [4, 6, 8, 10, 14, 20] {
        let rows = taf_bench::run_seeds(&seeds, |s| run(links, s, samples));
        let n = rows.len() as f64;
        let rank = rows.iter().map(|r| r.rank).sum::<usize>() as f64 / n;
        let recon = rows.iter().map(|r| r.recon_dbm).sum::<f64>() / n;
        let locm = rows.iter().map(|r| r.loc_median_m).sum::<f64>() / n;
        println!(
            "{:>8} {:>12.1} {:>18.2} {:>16.2} {:>18.2}",
            links,
            rank,
            recon,
            locm,
            rank * 100.0 / 3600.0
        );
    }
    println!(
        "\nMore links buy accuracy but raise the fingerprint-matrix rank, i.e. the number of \
         reference cells every update must visit — the paper's M = 10 balances the two."
    );
}
