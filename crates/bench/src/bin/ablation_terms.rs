//! Ablation `abl-terms`: which parts of the LoLi-IR objective matter?
//!
//! Compares four reconstruction schemes on the same 90-day update data:
//!
//! 1. **SVT only** — rank-minimization completion from the observed reference
//!    columns (the poster's property-(i)-only formulation). Whole unobserved
//!    columns are badly under-determined, so this is the floor.
//! 2. **LRR only** — `X̂ = X_R(t)·Z` with `Z` learned at day 0 (property (ii)).
//! 3. **LoLi-IR w/o graphs** — low-rank factors + data + LRR prior, `α = β = 0`.
//! 4. **Full LoLi-IR** — everything, including the continuity/similarity terms
//!    (property (iii)).
//!
//! Usage: `cargo run --release -p taf-bench --bin ablation_terms [seeds] [samples]`

use taf_linalg::Matrix;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::eval::reconstruction_errors;
use tafloc_core::mask::Mask;
use tafloc_core::svt::{soft_impute, SvtConfig};
use tafloc_core::system::{TafLoc, TafLocConfig};

const HORIZON: f64 = 90.0;

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn run_seed(seed: u64, samples: usize) -> [f64; 4] {
    let world = World::new(WorldConfig::paper_default(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");

    // Full system (provides reference cells and the fitted Z).
    let full_cfg = TafLocConfig::default();
    let sys = TafLoc::calibrate(full_cfg, db.clone(), e0).expect("calibration succeeds");
    let refs = sys.reference_cells().to_vec();

    let fresh = campaign::measure_columns(&world, HORIZON, &refs, samples);
    let fresh_empty = campaign::empty_snapshot(&world, HORIZON, samples);
    let truth = world.fingerprint_truth(HORIZON);
    let err_of = |m: &Matrix| mean(&reconstruction_errors(m, &truth).expect("shapes agree"));

    // 1. SVT-only completion from the observed columns.
    let (m, n) = (world.num_links(), world.num_cells());
    let mut observed = Matrix::zeros(m, n);
    for (k, &cell) in refs.iter().enumerate() {
        observed.set_col(cell, &fresh.col(k)).expect("in range");
    }
    let mask = Mask::from_columns(m, n, &refs).expect("valid columns");
    let svt = soft_impute(&observed, &mask, &SvtConfig { tau: 0.5, max_iters: 300, tol: 1e-7 })
        .expect("svt completes");
    let e_svt = err_of(&svt.matrix);

    // 2. LRR prediction alone.
    let lrr = sys.lrr().predict(&fresh).expect("prediction succeeds");
    let e_lrr = err_of(&lrr);

    // 3. LoLi-IR without the structure graphs.
    let mut no_graph_cfg = TafLocConfig::default();
    no_graph_cfg.loli.alpha = 0.0;
    no_graph_cfg.loli.beta = 0.0;
    let sys_ng = TafLoc::calibrate(no_graph_cfg, db.clone(), sys.empty_rss().to_vec())
        .expect("calibration succeeds");
    let rec_ng = sys_ng.reconstruct_db(&fresh, &fresh_empty).expect("reconstruction succeeds");
    let e_ng = err_of(&rec_ng.matrix);

    // 4. Full LoLi-IR.
    let rec_full = sys.reconstruct_db(&fresh, &fresh_empty).expect("reconstruction succeeds");
    let e_full = err_of(&rec_full.matrix);

    [e_svt, e_lrr, e_ng, e_full]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    eprintln!("ablation_terms: {} seeds x {} samples at 90 days ...", seeds.len(), samples);
    let per_seed = taf_bench::run_seeds(&seeds, |s| run_seed(s, samples));
    let mut avg = [0.0; 4];
    for r in &per_seed {
        for (a, v) in avg.iter_mut().zip(r) {
            *a += v / per_seed.len() as f64;
        }
    }

    println!("\n== Ablation: objective-term contributions (mean recon error at 90 days) ==");
    let labels = [
        "SVT completion only (P1)",
        "LRR prediction only (P2)",
        "LoLi-IR w/o graphs",
        "full LoLi-IR (P1+P2+P3)",
    ];
    for (label, v) in labels.iter().zip(avg) {
        println!("{label:>28}: {v:>8.3} dBm");
    }
}
