//! Ingestion-throughput baseline: raw samples/sec through the streaming
//! pipeline, plus fingerprint-assembly latency percentiles.
//!
//! Three phases, each on the paper-scale link count:
//!
//! 1. **Direct pipeline** — `threads` producers call
//!    [`Ingestor::apply_batch`] concurrently on disjoint time epochs of a
//!    simulated radio stream; reported as aggregate samples/sec.
//! 2. **Assembly** — repeated [`Ingestor::assemble`] calls on the loaded
//!    pipeline; reported as p50/p95/p99/max latency and assemblies/sec.
//! 3. **Bounded queue** — the same producers push through an [`IngestQueue`]
//!    sized to be a bottleneck, demonstrating shed-and-count backpressure;
//!    reported as delivered samples/sec plus the drop fraction.
//!
//! Usage: `cargo run --release -p taf-bench --bin ingest_bench [threads] [epochs_per_thread] [batch]`

use std::sync::Arc;
use std::time::Instant;
use taf_rfsim::{stream, StreamConfig, World, WorldConfig};
use tafloc_ingest::{IngestConfig, IngestQueue, Ingestor, LinkSample};

/// One epoch of the base stream, shifted so its timestamps continue the
/// stream clock instead of arriving "late" and being dropped.
fn shifted(base: &[LinkSample], offset_s: f64) -> Vec<LinkSample> {
    base.iter().map(|s| LinkSample::new(s.link, s.t_s + offset_s, s.rss_dbm)).collect()
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    let idx = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[idx - 1]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().map_or(4, |v| v.parse().expect("threads"));
    let epochs: usize = args.next().map_or(50, |v| v.parse().expect("epochs"));
    let batch: usize = args.next().map_or(256, |v| v.parse().expect("batch"));
    assert!(batch > 0, "batch must be > 0");

    // The paper-scale deployment, streaming fast enough to be a load test.
    let world = World::new(WorldConfig::paper_default(), 7);
    let cfg = StreamConfig {
        rate_hz: 50.0,
        duration_s: 20.0,
        jitter_frac: 0.05,
        loss_rate: 0.02,
        reorder_prob: 0.01,
    };
    let cell = world.num_cells() / 2;
    let base = stream::stream_at_cell(&world, 0.0, cell, &cfg, 1);
    let base: Vec<LinkSample> =
        base.iter().map(|r| LinkSample::new(r.link, r.t_s, r.rss_dbm)).collect();
    let m = world.num_links();
    let total_samples = (base.len() * threads * epochs) as f64;
    println!(
        "ingest_bench: {m} links, {} samples/epoch x {threads} threads x {epochs} epochs, batch {batch}",
        base.len()
    );

    // Phase 1: direct pipeline throughput.
    let ing = Arc::new(Ingestor::new(IngestConfig::default(), m, m.min(8)).expect("ingestor"));
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|_| {
            let ing = Arc::clone(&ing);
            let base = base.clone();
            std::thread::spawn(move || {
                // Every producer replays the same epoch window concurrently —
                // parallel radio bridges reporting the same interval — so the
                // shared stream clock stays coherent across threads.
                for e in 0..epochs {
                    let epoch = shifted(&base, e as f64 * cfg.duration_s);
                    for chunk in epoch.chunks(batch) {
                        ing.apply_batch(chunk);
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("producer thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = ing.stats();
    println!(
        "apply_batch: {total_samples:.0} samples in {elapsed:.3} s  ->  {:.0} samples/s \
         ({} accepted, {} late, {} outlier exclusions)",
        total_samples / elapsed,
        stats.accepted,
        stats.dropped_late,
        stats.rejected_outliers,
    );

    // Phase 2: assembly latency on the loaded pipeline.
    let fallback = vec![-60.0; m];
    let rounds = 10_000;
    let mut lat_us = Vec::with_capacity(rounds);
    let start = Instant::now();
    for _ in 0..rounds {
        let t0 = Instant::now();
        let v = ing.assemble(&fallback).expect("assemble");
        lat_us.push(t0.elapsed().as_micros() as u64);
        assert_eq!(v.y.len(), m);
    }
    let elapsed = start.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    println!(
        "assemble: {rounds} vectors in {elapsed:.3} s  ->  {:.0} assemblies/s; \
         latency p50 {} us, p95 {} us, p99 {} us, max {} us",
        rounds as f64 / elapsed,
        quantile(&lat_us, 0.50),
        quantile(&lat_us, 0.95),
        quantile(&lat_us, 0.99),
        lat_us[lat_us.len() - 1],
    );

    // Phase 3: the bounded queue as the front door, sized to shed under
    // this producer pressure.
    let ing = Arc::new(Ingestor::new(IngestConfig::default(), m, m.min(8)).expect("ingestor"));
    let queue = Arc::new(IngestQueue::spawn(Arc::clone(&ing), 4));
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let base = base.clone();
            std::thread::spawn(move || {
                for e in 0..epochs {
                    let epoch = shifted(&base, e as f64 * cfg.duration_s);
                    for chunk in epoch.chunks(batch) {
                        queue.push(chunk.to_vec()).expect("queue open");
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("producer thread");
    }
    drop(queue); // close + drain
    let elapsed = start.elapsed().as_secs_f64();
    let stats = ing.stats();
    let offered = total_samples;
    let shed = stats.dropped_queue_samples as f64;
    println!(
        "queue(cap 4): {offered:.0} samples offered in {elapsed:.3} s  ->  {:.0} samples/s \
         delivered; {:.1}% shed in {} batches (never blocking the producers)",
        (offered - shed) / elapsed,
        100.0 * shed / offered,
        stats.dropped_queue_batches,
    );
}
