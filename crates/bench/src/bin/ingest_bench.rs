//! Ingestion-throughput baseline: raw samples/sec through the streaming
//! pipeline, plus fingerprint-assembly latency percentiles.
//!
//! Three phases, each on the paper-scale link count:
//!
//! 1. **Direct pipeline** — `threads` producers call
//!    [`Ingestor::apply_batch`] concurrently on disjoint time epochs of a
//!    simulated radio stream; reported as aggregate samples/sec.
//! 2. **Assembly** — repeated [`Ingestor::assemble`] calls on the loaded
//!    pipeline; reported as p50/p95/p99/max latency and assemblies/sec.
//! 3. **Bounded queue (overload)** — the same producers push through an
//!    [`IngestQueue`] sized to be a bottleneck, demonstrating shed-and-count
//!    backpressure; reported as offered and delivered samples/sec plus the
//!    drop fraction. The offered rate is measured over the *push* phase only
//!    (the drain tail is excluded) and capped at one sample per producer per
//!    clock tick — a spin loop shoving batches into a full `try_send` can
//!    "offer" at memory speed, which is an artifact of the loop, not a rate
//!    any timestamping producer could sustain (see EXPERIMENTS.md).
//! 4. **Bounded queue (paced)** — producers throttled to ~70% of the drain
//!    capacity measured in phase 3: the non-overload regime the daemon
//!    actually runs in, where the shed fraction should be ~0.
//! 5. **Sharded credit queues (overload)** — the same pressure against four
//!    [`CreditQueue`]s behind a consistent-hash [`ShardRing`], the admission
//!    path the sharded daemon uses: every batch gets an explicit
//!    admitted/deferred/rejected verdict and the *silent* shed fraction must
//!    be ~0 by construction.
//! 6. **Journaled admission (overload)** — phase 5 with the write-ahead
//!    ingest journal on the admitted path: every admitted batch is appended
//!    to a per-shard segment-rotated WAL under the default group-commit
//!    config before it counts, pricing the durability the daemon pays with
//!    `--data-dir`. The gate watches the admitted-rate ratio vs phase 5.
//!
//! The headline numbers land in `BENCH_ingest.json` at the repo root in the
//! canonical golden-file JSON form; CI's bench-smoke job re-generates the file
//! in `--quick` mode and uploads it as an artifact.
//!
//! Usage: `cargo run --release -p taf-bench --bin ingest_bench [--quick] [threads] [epochs_per_thread] [batch]`

use std::sync::Arc;
use std::time::{Duration, Instant};
use taf_bench::perf;
use taf_rfsim::{stream, StreamConfig, World, WorldConfig};
use taf_testkit::json::Json;
use tafloc_ingest::{Admission, CreditQueue, IngestConfig, IngestQueue, Ingestor, LinkSample};
use tafloc_serve::journal::{Journal, JournalConfig, JournalRecord};
use tafloc_serve::shard::{ShardRing, DEFAULT_SHARD_SEED};

/// One epoch of the base stream, shifted so its timestamps continue the
/// stream clock instead of arriving "late" and being dropped.
fn shifted(base: &[LinkSample], offset_s: f64) -> Vec<LinkSample> {
    base.iter().map(|s| LinkSample::new(s.link, s.t_s + offset_s, s.rss_dbm)).collect()
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    let idx = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[idx - 1]
}

/// Median observable tick of the producer clock, in seconds. A producer that
/// timestamps its samples cannot meaningfully offer more than one sample per
/// tick, so this bounds any honest offered-rate claim.
fn clock_resolution_s() -> f64 {
    let mut deltas = Vec::with_capacity(1024);
    let mut last = Instant::now();
    while deltas.len() < 1024 {
        let now = Instant::now();
        let d = now.duration_since(last);
        if !d.is_zero() {
            deltas.push(d.as_secs_f64());
        }
        last = now;
    }
    deltas.sort_by(f64::total_cmp);
    deltas[deltas.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let threads: usize = args.next().map_or(4, |v| v.parse().expect("threads"));
    let epochs: usize =
        args.next().map_or(if quick { 5 } else { 50 }, |v| v.parse().expect("epochs"));
    let batch: usize = args.next().map_or(256, |v| v.parse().expect("batch"));
    assert!(batch > 0, "batch must be > 0");

    // The paper-scale deployment, streaming fast enough to be a load test.
    let world = World::new(WorldConfig::paper_default(), 7);
    let cfg = StreamConfig {
        rate_hz: 50.0,
        duration_s: 20.0,
        jitter_frac: 0.05,
        loss_rate: 0.02,
        reorder_prob: 0.01,
    };
    let cell = world.num_cells() / 2;
    let base = stream::stream_at_cell(&world, 0.0, cell, &cfg, 1);
    let base: Vec<LinkSample> =
        base.iter().map(|r| LinkSample::new(r.link, r.t_s, r.rss_dbm)).collect();
    let m = world.num_links();
    let total_samples = (base.len() * threads * epochs) as f64;
    println!(
        "ingest_bench: {m} links, {} samples/epoch x {threads} threads x {epochs} epochs, batch {batch}",
        base.len()
    );

    // Phase 1: direct pipeline throughput.
    let ing = Arc::new(Ingestor::new(IngestConfig::default(), m, m.min(8)).expect("ingestor"));
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|_| {
            let ing = Arc::clone(&ing);
            let base = base.clone();
            std::thread::spawn(move || {
                // Every producer replays the same epoch window concurrently —
                // parallel radio bridges reporting the same interval — so the
                // shared stream clock stays coherent across threads.
                for e in 0..epochs {
                    let epoch = shifted(&base, e as f64 * cfg.duration_s);
                    for chunk in epoch.chunks(batch) {
                        ing.apply_batch(chunk);
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("producer thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = ing.stats();
    let apply_sps = total_samples / elapsed;
    println!(
        "apply_batch: {total_samples:.0} samples in {elapsed:.3} s  ->  {apply_sps:.0} samples/s \
         ({} accepted, {} late, {} outlier exclusions)",
        stats.accepted, stats.dropped_late, stats.rejected_outliers,
    );

    // Phase 2: assembly latency on the loaded pipeline.
    let fallback = vec![-60.0; m];
    let rounds = if quick { 1_000 } else { 10_000 };
    let mut lat_us = Vec::with_capacity(rounds);
    let start = Instant::now();
    for _ in 0..rounds {
        let t0 = Instant::now();
        let v = ing.assemble(&fallback).expect("assemble");
        lat_us.push(t0.elapsed().as_micros() as u64);
        assert_eq!(v.y.len(), m);
    }
    let elapsed = start.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    let assemble_per_s = rounds as f64 / elapsed;
    println!(
        "assemble: {rounds} vectors in {elapsed:.3} s  ->  {assemble_per_s:.0} assemblies/s; \
         latency p50 {} us, p95 {} us, p99 {} us, max {} us",
        quantile(&lat_us, 0.50),
        quantile(&lat_us, 0.95),
        quantile(&lat_us, 0.99),
        lat_us[lat_us.len() - 1],
    );

    // Phase 3: the bounded queue as the front door, sized to shed under
    // this producer pressure.
    let ing = Arc::new(Ingestor::new(IngestConfig::default(), m, m.min(8)).expect("ingestor"));
    let queue = Arc::new(IngestQueue::spawn(Arc::clone(&ing), 4));
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let base = base.clone();
            std::thread::spawn(move || {
                for e in 0..epochs {
                    let epoch = shifted(&base, e as f64 * cfg.duration_s);
                    for chunk in epoch.chunks(batch) {
                        queue.push(chunk.to_vec()).expect("queue open");
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("producer thread");
    }
    // Push phase done; the drain tail is *delivery* time, not offer time.
    let push_elapsed = start.elapsed().as_secs_f64();
    drop(queue); // close + drain
    let elapsed = start.elapsed().as_secs_f64();
    let stats = ing.stats();
    let offered = total_samples;
    let shed = stats.dropped_queue_samples as f64;
    // Honesty cap: a spin loop hammering a full `try_send` "offers" at
    // memory speed. No producer that timestamps samples can offer faster
    // than one sample per clock tick, so anything above that is reported as
    // a loop artifact rather than a throughput claim.
    let clock_res_s = clock_resolution_s();
    let offered_sps_raw = offered / push_elapsed;
    let offered_cap_sps = threads as f64 / clock_res_s;
    let offered_capped = offered_sps_raw > offered_cap_sps;
    let offered_sps = offered_sps_raw.min(offered_cap_sps);
    let delivered_sps = (offered - shed) / elapsed;
    let shed_frac = shed / offered;
    println!(
        "queue(cap 4): {offered:.0} samples offered in {push_elapsed:.3} s ({offered_sps:.0} samples/s{}) \
         ->  {delivered_sps:.0} samples/s delivered; {:.1}% shed in {} batches \
         (never blocking the producers)",
        if offered_capped {
            format!(", capped from {offered_sps_raw:.0} at producer clock resolution")
        } else {
            String::new()
        },
        100.0 * shed_frac,
        stats.dropped_queue_batches,
    );

    // Phase 4: same front door, but producers paced to ~70% of the drain
    // capacity just measured. A healthy deployment runs below capacity; this
    // phase records what the queue does there (it should shed ~nothing).
    let paced_target_frac = 0.7;
    let per_thread_sps = (paced_target_frac * delivered_sps / threads as f64).max(1.0);
    let paced_duration_s = if quick { 2.0 } else { 5.0 };
    let chunks_per_thread = (((per_thread_sps * paced_duration_s) / batch as f64).ceil() as usize)
        .clamp(1, base.len() * epochs / batch + 1);
    let ing = Arc::new(Ingestor::new(IngestConfig::default(), m, m.min(8)).expect("ingestor"));
    let queue = Arc::new(IngestQueue::spawn(Arc::clone(&ing), 4));
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let base = base.clone();
            std::thread::spawn(move || {
                let interval = std::time::Duration::from_secs_f64(batch as f64 / per_thread_sps);
                let mut next = Instant::now();
                let mut pushed = 0usize;
                let mut offered = 0usize;
                let mut epoch_idx = 0u32;
                while pushed < chunks_per_thread {
                    let epoch = shifted(&base, f64::from(epoch_idx) * cfg.duration_s);
                    epoch_idx += 1;
                    for chunk in epoch.chunks(batch) {
                        if pushed >= chunks_per_thread {
                            break;
                        }
                        if let Some(wait) = next.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        offered += chunk.len();
                        queue.push(chunk.to_vec()).expect("queue open");
                        next += interval;
                        pushed += 1;
                    }
                }
                offered
            })
        })
        .collect();
    let mut paced_offered = 0.0;
    for j in joins {
        paced_offered += j.join().expect("producer thread") as f64;
    }
    drop(queue); // close + drain
    let paced_elapsed = start.elapsed().as_secs_f64();
    let stats = ing.stats();
    let paced_shed = stats.dropped_queue_samples as f64;
    let paced_offered_sps = paced_offered / paced_elapsed;
    let paced_delivered_sps = (paced_offered - paced_shed) / paced_elapsed;
    let paced_shed_frac = if paced_offered > 0.0 { paced_shed / paced_offered } else { 0.0 };
    println!(
        "queue paced @ {:.0}% capacity: {paced_offered:.0} samples offered in {paced_elapsed:.3} s \
         ({paced_offered_sps:.0} samples/s)  ->  {paced_delivered_sps:.0} samples/s delivered; \
         {:.2}% shed",
        100.0 * paced_target_frac,
        100.0 * paced_shed_frac,
    );

    // Phase 5: the sharded admission path. Four credit queues behind the
    // daemon's consistent-hash ring, each deliberately undersized, with every
    // producer spraying batches across eight "sites". Unlike phase 3 nothing
    // may vanish silently: every batch gets a verdict, and the silent shed
    // fraction is asserted ~0 by CI's bench gate.
    let num_shards = 4usize;
    let num_sites = 8usize;
    let ring = ShardRing::new(num_shards, DEFAULT_SHARD_SEED);
    let site_shard: Vec<usize> =
        (0..num_sites).map(|i| ring.shard_of(&format!("site-{i}"))).collect();
    let shard_ings: Vec<Arc<Ingestor>> = (0..num_shards)
        .map(|_| Arc::new(Ingestor::new(IngestConfig::default(), m, m.min(8)).expect("ingestor")))
        .collect();
    let shard_queues: Vec<Arc<CreditQueue>> = shard_ings
        .iter()
        .map(|ing| Arc::new(CreditQueue::spawn(Arc::clone(ing), 4 * batch)))
        .collect();
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let queues = shard_queues.clone();
            let site_shard = site_shard.clone();
            let base = base.clone();
            std::thread::spawn(move || {
                let mut admitted = 0u64;
                for e in 0..epochs {
                    let epoch = shifted(&base, e as f64 * cfg.duration_s);
                    for (c, chunk) in epoch.chunks(batch).enumerate() {
                        // Round-robin the sites; the ring picks the shard.
                        let site = (t + c) % site_shard.len();
                        let q = &queues[site_shard[site]];
                        match q.offer(chunk.to_vec(), Duration::from_millis(1)).expect("queue open")
                        {
                            Admission::Admitted => admitted += chunk.len() as u64,
                            Admission::Deferred { .. } | Admission::Rejected => {}
                        }
                    }
                }
                admitted
            })
        })
        .collect();
    for j in joins {
        j.join().expect("producer thread");
    }
    let sharded_push_elapsed = start.elapsed().as_secs_f64();
    let mut credit = tafloc_ingest::CreditStats::default();
    for q in &shard_queues {
        let s = q.stats();
        credit.offered_batches += s.offered_batches;
        credit.offered_samples += s.offered_samples;
        credit.admitted_batches += s.admitted_batches;
        credit.admitted_samples += s.admitted_samples;
        credit.deferred_batches += s.deferred_batches;
        credit.deferred_samples += s.deferred_samples;
        credit.rejected_batches += s.rejected_batches;
        credit.rejected_samples += s.rejected_samples;
    }
    drop(shard_queues); // close + drain every shard
    let sharded_offered = credit.offered_samples as f64;
    let sharded_offered_sps =
        (sharded_offered / sharded_push_elapsed).min(threads as f64 / clock_res_s);
    let sharded_admitted_sps = credit.admitted_samples as f64 / start.elapsed().as_secs_f64();
    let deferred_frac = credit.deferred_samples as f64 / sharded_offered;
    let silent_frac = credit.silent_samples() as f64 / sharded_offered;
    println!(
        "sharded credit ({num_shards} shards x cap {}): {sharded_offered:.0} samples offered \
         ({sharded_offered_sps:.0} samples/s)  ->  {sharded_admitted_sps:.0} samples/s admitted; \
         {:.1}% deferred with explicit verdicts, {:.4}% shed silently",
        4 * batch,
        100.0 * deferred_frac,
        100.0 * silent_frac,
    );

    // Phase 6: the same admission path, now paying for durability — every
    // admitted batch is appended to its shard's write-ahead journal (default
    // group-commit config, the same one `taflocd --data-dir` runs with)
    // before it counts as admitted. The delta against phase 5 is the whole
    // price of crash-safe ingest at this batch size.
    let wal_dir = std::env::temp_dir().join(format!("ingest-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("wal dir");
    let shard_ings: Vec<Arc<Ingestor>> = (0..num_shards)
        .map(|_| Arc::new(Ingestor::new(IngestConfig::default(), m, m.min(8)).expect("ingestor")))
        .collect();
    let shard_queues: Vec<Arc<CreditQueue>> = shard_ings
        .iter()
        .map(|ing| Arc::new(CreditQueue::spawn(Arc::clone(ing), 4 * batch)))
        .collect();
    let journals: Vec<Arc<Journal>> = (0..num_shards)
        .map(|i| {
            let (j, _) =
                Journal::open(&wal_dir, &format!("shard-{i}"), JournalConfig::default(), 0)
                    .expect("journal");
            Arc::new(j)
        })
        .collect();
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let queues = shard_queues.clone();
            let journals = journals.clone();
            let site_shard = site_shard.clone();
            let base = base.clone();
            std::thread::spawn(move || {
                for e in 0..epochs {
                    let epoch = shifted(&base, e as f64 * cfg.duration_s);
                    for (c, chunk) in epoch.chunks(batch).enumerate() {
                        let site = (t + c) % site_shard.len();
                        let shard = site_shard[site];
                        match queues[shard]
                            .offer(chunk.to_vec(), Duration::from_millis(1))
                            .expect("queue open")
                        {
                            Admission::Admitted => {
                                journals[shard]
                                    .append(&JournalRecord::RefBatch {
                                        ref_slot: site,
                                        day: e as f64,
                                        samples: chunk.to_vec(),
                                    })
                                    .expect("wal append");
                            }
                            Admission::Deferred { .. } | Admission::Rejected => {}
                        }
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("producer thread");
    }
    let wal_push_elapsed = start.elapsed().as_secs_f64();
    let mut wal_credit = tafloc_ingest::CreditStats::default();
    for q in &shard_queues {
        let s = q.stats();
        wal_credit.offered_samples += s.offered_samples;
        wal_credit.admitted_samples += s.admitted_samples;
        wal_credit.deferred_samples += s.deferred_samples;
        wal_credit.rejected_samples += s.rejected_samples;
    }
    drop(shard_queues); // close + drain every shard
    for j in &journals {
        j.sync().expect("wal sync"); // clean-shutdown flush, like the daemon's
    }
    let wal_appended_bytes: u64 = std::fs::read_dir(&wal_dir)
        .expect("wal dir")
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .map(|md| md.len())
        .sum();
    drop(journals);
    let _ = std::fs::remove_dir_all(&wal_dir);
    let wal_admitted_sps = wal_credit.admitted_samples as f64 / start.elapsed().as_secs_f64();
    let wal_offered_sps =
        (wal_credit.offered_samples as f64 / wal_push_elapsed).min(threads as f64 / clock_res_s);
    let wal_vs_sharded =
        if sharded_admitted_sps > 0.0 { wal_admitted_sps / sharded_admitted_sps } else { 0.0 };
    println!(
        "journaled admission ({num_shards} WALs, group commit {:?}): \
         {:.0} samples offered ({wal_offered_sps:.0} samples/s)  ->  \
         {wal_admitted_sps:.0} samples/s admitted+journaled \
         ({:.0}% of the unjournaled rate, {:.1} MiB appended)",
        JournalConfig::default().flush_interval,
        wal_credit.offered_samples as f64,
        100.0 * wal_vs_sharded,
        wal_appended_bytes as f64 / (1024.0 * 1024.0),
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("ingest".into())),
        ("quick".into(), Json::Bool(quick)),
        (
            "threads_available".into(),
            Json::Num(std::thread::available_parallelism().map_or(1, |p| p.get()) as f64),
        ),
        (
            "load".into(),
            Json::Obj(vec![
                ("links".into(), Json::Num(m as f64)),
                ("producer_threads".into(), Json::Num(threads as f64)),
                ("epochs_per_thread".into(), Json::Num(epochs as f64)),
                ("batch".into(), Json::Num(batch as f64)),
            ]),
        ),
        ("peak_rss_kb".into(), perf::peak_rss_json()),
        ("apply_samples_per_s".into(), Json::Num(perf::round_ms(apply_sps))),
        (
            "assemble".into(),
            Json::Obj(vec![
                ("per_s".into(), Json::Num(perf::round_ms(assemble_per_s))),
                ("p50_us".into(), Json::Num(quantile(&lat_us, 0.50) as f64)),
                ("p95_us".into(), Json::Num(quantile(&lat_us, 0.95) as f64)),
                ("p99_us".into(), Json::Num(quantile(&lat_us, 0.99) as f64)),
                ("max_us".into(), Json::Num(lat_us[lat_us.len() - 1] as f64)),
            ]),
        ),
        (
            "queue".into(),
            Json::Obj(vec![
                ("offered_samples_per_s".into(), Json::Num(perf::round_ms(offered_sps))),
                ("offered_samples_per_s_raw".into(), Json::Num(perf::round_ms(offered_sps_raw))),
                ("offered_rate_capped".into(), Json::Bool(offered_capped)),
                (
                    "producer_clock_resolution_ns".into(),
                    Json::Num(perf::round_ms(clock_res_s * 1e9)),
                ),
                ("delivered_samples_per_s".into(), Json::Num(perf::round_ms(delivered_sps))),
                ("shed_fraction".into(), Json::Num(perf::round_ms(shed_frac))),
            ]),
        ),
        (
            "queue_paced".into(),
            Json::Obj(vec![
                ("target_fraction_of_capacity".into(), Json::Num(paced_target_frac)),
                ("offered_samples_per_s".into(), Json::Num(perf::round_ms(paced_offered_sps))),
                ("delivered_samples_per_s".into(), Json::Num(perf::round_ms(paced_delivered_sps))),
                ("shed_fraction".into(), Json::Num(perf::round_ms(paced_shed_frac))),
            ]),
        ),
        (
            "sharded_credit".into(),
            Json::Obj(vec![
                ("shards".into(), Json::Num(num_shards as f64)),
                ("sites".into(), Json::Num(num_sites as f64)),
                ("capacity_samples_per_shard".into(), Json::Num((4 * batch) as f64)),
                ("offered_samples_per_s".into(), Json::Num(perf::round_ms(sharded_offered_sps))),
                ("admitted_samples_per_s".into(), Json::Num(perf::round_ms(sharded_admitted_sps))),
                ("deferred_fraction".into(), Json::Num(perf::round_ms(deferred_frac))),
                ("silent_shed_fraction".into(), Json::Num(perf::round_ms(silent_frac))),
            ]),
        ),
        (
            "journaled".into(),
            Json::Obj(vec![
                ("wal_shards".into(), Json::Num(num_shards as f64)),
                (
                    "wal_group_commit_ms".into(),
                    Json::Num(JournalConfig::default().flush_interval.as_secs_f64() * 1e3),
                ),
                ("wal_offered_samples_per_s".into(), Json::Num(perf::round_ms(wal_offered_sps))),
                ("wal_admitted_samples_per_s".into(), Json::Num(perf::round_ms(wal_admitted_sps))),
                ("wal_admitted_ratio_vs_sharded".into(), Json::Num(perf::round_ms(wal_vs_sharded))),
                ("wal_appended_bytes".into(), Json::Num(wal_appended_bytes as f64)),
            ]),
        ),
    ]);
    let path = perf::write_bench_json("ingest", &report);
    println!("wrote {}", path.display());
}
