//! Verifies the paper's in-text environment numbers against the simulator:
//!
//! * "the RSS values change 2.5 dBm and 6 dBm respectively after 5 and 45 days"
//! * "the noise is usually within 1~4 dBm"
//!
//! Usage: `cargo run --release -p taf-bench --bin drift_check [seeds]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use taf_bench::report::compare_row;
use taf_rfsim::noise::NoiseConfig;
use taf_rfsim::{World, WorldConfig};

fn main() {
    let num_seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    eprintln!("drift_check: {} world realizations ...", seeds.len());

    // Mean |ΔRSS| between day 0 and each horizon: link-level (empty-room RSS,
    // what the paper's in-text anchors describe) and entry-level (fingerprint
    // entries, which additionally age through the per-entry components).
    let horizons = [3.0, 5.0, 15.0, 45.0, 90.0];
    let per_seed = taf_bench::run_seeds(&seeds, |seed| {
        let w = World::new(WorldConfig::paper_default(), seed);
        let e0 = w.empty_truth(0.0);
        let x0 = w.fingerprint_truth(0.0);
        horizons
            .map(|t| {
                let et = w.empty_truth(t);
                let link: f64 =
                    e0.iter().zip(&et).map(|(a, b)| (a - b).abs()).sum::<f64>() / e0.len() as f64;
                let xt = w.fingerprint_truth(t);
                let entry = x0.sub(&xt).expect("same shape").map(f64::abs).mean();
                (link, entry)
            })
            .to_vec()
    });
    let mut link_means = vec![0.0; horizons.len()];
    let mut entry_means = vec![0.0; horizons.len()];
    for s in &per_seed {
        for (k, (l, e)) in s.iter().enumerate() {
            link_means[k] += l / per_seed.len() as f64;
            entry_means[k] += e / per_seed.len() as f64;
        }
    }

    println!("\n== In-text drift magnitudes ==");
    println!("{:>10} {:>22} {:>24}", "days", "link |ΔRSS| [dBm]", "entry |ΔRSS| [dBm]");
    for ((t, l), e) in horizons.iter().zip(&link_means).zip(&entry_means) {
        println!("{t:>10.0} {l:>22.2} {e:>24.2}");
    }
    println!("\nPaper vs measured (link-level, the paper's anchors):");
    println!("{}", compare_row("5 days", 2.5, link_means[1]));
    println!("{}", compare_row("45 days", 6.0, link_means[3]));

    // Per-sample measurement-noise spread under the default model.
    let cfg = NoiseConfig::default();
    let mut rng = StdRng::seed_from_u64(7);
    let n = 100_000;
    let samples: Vec<f64> = (0..n).map(|_| cfg.observe(-50.0, &mut rng)).collect();
    let mean: f64 = samples.iter().sum::<f64>() / n as f64;
    let sd = (samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64).sqrt();
    println!("\n== In-text noise band ==");
    println!("per-sample RSS noise std: {sd:.2} dBm (paper: 'usually within 1~4 dBm')");
    assert!((1.0..=4.0).contains(&sd), "noise model fell outside the paper's band");
}
