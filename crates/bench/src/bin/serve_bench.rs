//! Serving-throughput baseline: `locate` requests/sec against an in-process
//! `taflocd` over loopback TCP.
//!
//! This is the number later serving-performance PRs must beat. The setup is
//! the paper-scale site (10 links, 96 cells), one persistent connection per
//! client thread, every request a full `locate` round trip (JSON encode →
//! TCP → dispatch → fingerprint match → JSON decode). A second phase sends
//! the same fixes as `locate-batch` requests (16 vectors per round trip) to
//! expose the protocol overhead amortized away by batching. Reported at the
//! end: aggregate requests/sec plus the server's own latency histogram.
//!
//! Usage: `cargo run --release -p taf-bench --bin serve_bench [threads] [requests_per_thread] [workers]`

use std::time::Instant;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_serve::client::Client;
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::protocol::{Request, Response};
use tafloc_serve::server::{Server, ServerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().map_or(4, |v| v.parse().expect("threads"));
    let per_thread: usize = args.next().map_or(2000, |v| v.parse().expect("requests"));
    let workers: usize = args.next().map_or(threads, |v| v.parse().expect("workers"));

    let world = World::new(WorldConfig::paper_default(), 7);
    let x0 = campaign::full_calibration(&world, 0.0, 50);
    let e0 = campaign::empty_snapshot(&world, 0.0, 50);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    let sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).expect("calibration succeeds");

    // Pre-generate one query per cell; threads cycle through them.
    let queries: Vec<Vec<f64>> =
        (0..world.num_cells()).map(|c| campaign::snapshot_at_cell(&world, 0.0, c, 50)).collect();

    let policy = MaintenancePolicy { auto_refresh: false, ..Default::default() };
    // Keep a worker free for the stats/shutdown connection.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: workers.max(threads + 1),
            default_policy: policy,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    server.add_site("bench", sys, 0.0).expect("add site");
    let handle = server.spawn();

    println!(
        "serve_bench: {} links x {} cells, {threads} client threads x {per_thread} locates",
        world.num_links(),
        world.num_cells()
    );

    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for k in 0..per_thread {
                    let y = &queries[(t + k) % queries.len()];
                    client.locate("bench", y).expect("locate");
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    let total = (threads * per_thread) as f64;
    println!(
        "{total:.0} requests in {:.3} s  ->  {:.0} req/s aggregate ({:.0} req/s/thread)",
        elapsed.as_secs_f64(),
        total / elapsed.as_secs_f64(),
        total / elapsed.as_secs_f64() / threads as f64,
    );

    // Phase 2: the same number of fixes, 16 vectors per round trip.
    const BATCH: usize = 16;
    let rounds = per_thread.div_ceil(BATCH);
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for k in 0..rounds {
                    let ys: Vec<Vec<f64>> = (0..BATCH)
                        .map(|j| queries[(t + k * BATCH + j) % queries.len()].clone())
                        .collect();
                    let (fixes, _) = client.locate_batch("bench", ys).expect("locate-batch");
                    assert_eq!(fixes.len(), BATCH);
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    let fixes = (threads * rounds * BATCH) as f64;
    println!(
        "locate-batch({BATCH}): {fixes:.0} fixes in {:.3} s  ->  {:.0} fixes/s aggregate \
         ({:.0} round trips/s)",
        elapsed.as_secs_f64(),
        fixes / elapsed.as_secs_f64(),
        fixes / elapsed.as_secs_f64() / BATCH as f64,
    );

    let mut admin = Client::connect(addr).expect("connect admin");
    if let Response::Stats { report } = admin.call_ok(&Request::Stats).expect("stats") {
        for e in &report.endpoints {
            if e.endpoint == "locate" || e.endpoint == "locate-batch" {
                println!(
                    "server-side {} latency: p50 <= {} us, p95 <= {} us, p99 <= {} us, max {} us ({} reqs, {} errors)",
                    e.endpoint, e.p50_us, e.p95_us, e.p99_us, e.max_us, e.requests, e.errors
                );
            }
        }
    }
    admin.call_ok(&Request::Shutdown).expect("shutdown");
    handle.join();
}
