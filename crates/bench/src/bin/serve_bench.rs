//! Serving-throughput baseline: `locate` requests/sec against an in-process
//! `taflocd` over loopback TCP.
//!
//! This is the number later serving-performance PRs must beat. The setup is
//! the paper-scale site (10 links, 96 cells), one persistent connection per
//! client thread, every request a full `locate` round trip (JSON encode →
//! TCP → dispatch → fingerprint match → JSON decode). A second phase sends
//! the same fixes as `locate-batch` requests (16 vectors per round trip) to
//! expose the protocol overhead amortized away by batching. Reported at the
//! end: aggregate requests/sec plus the server's own latency histogram.
//!
//! The headline numbers land in `BENCH_serve.json` at the repo root in the
//! canonical golden-file JSON form; CI's bench-smoke job re-generates the file
//! in `--quick` mode and uploads it as an artifact.
//!
//! Usage: `cargo run --release -p taf-bench --bin serve_bench [--quick] [threads] [requests_per_thread] [workers]`

use std::time::Instant;
use taf_bench::perf;
use taf_rfsim::{campaign, World, WorldConfig};
use taf_testkit::json::Json;
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_serve::client::Client;
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::protocol::{Request, Response};
use tafloc_serve::server::{Server, ServerConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let default_per_thread = if quick { 200 } else { 2000 };
    let threads: usize = args.next().map_or(4, |v| v.parse().expect("threads"));
    let per_thread: usize =
        args.next().map_or(default_per_thread, |v| v.parse().expect("requests"));
    let workers: usize = args.next().map_or(threads, |v| v.parse().expect("workers"));

    let world = World::new(WorldConfig::paper_default(), 7);
    let x0 = campaign::full_calibration(&world, 0.0, 50);
    let e0 = campaign::empty_snapshot(&world, 0.0, 50);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    let sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).expect("calibration succeeds");

    // Pre-generate one query per cell; threads cycle through them.
    let queries: Vec<Vec<f64>> =
        (0..world.num_cells()).map(|c| campaign::snapshot_at_cell(&world, 0.0, c, 50)).collect();

    let policy = MaintenancePolicy { auto_refresh: false, ..Default::default() };
    // Keep a worker free for the stats/shutdown connection.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: workers.max(threads + 1),
            default_policy: policy,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    server.add_site("bench", sys, 0.0).expect("add site");
    let handle = server.spawn();

    // Offline stub builds of serde_json cannot serialize the wire protocol at
    // all; probe once and record an honest skip instead of timing nothing.
    {
        let mut probe = Client::connect(addr).expect("connect probe");
        if let Err(e) = probe.locate("bench", &queries[0]) {
            println!("serve_bench: skipped — the JSON layer is unusable here ({e})");
            let report = Json::Obj(vec![
                ("bench".into(), Json::Str("serve".into())),
                ("skipped".into(), Json::Str(format!("wire protocol unavailable: {e}"))),
            ]);
            let path = perf::write_bench_json("serve", &report);
            println!("wrote {}", path.display());
            // The wire is unusable, so shut down in-process.
            handle.shutdown();
            handle.join();
            return;
        }
    }

    println!(
        "serve_bench: {} links x {} cells, {threads} client threads x {per_thread} locates",
        world.num_links(),
        world.num_cells()
    );

    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for k in 0..per_thread {
                    let y = &queries[(t + k) % queries.len()];
                    client.locate("bench", y).expect("locate");
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    let total = (threads * per_thread) as f64;
    let locate_rps = total / elapsed.as_secs_f64();
    println!(
        "{total:.0} requests in {:.3} s  ->  {locate_rps:.0} req/s aggregate ({:.0} req/s/thread)",
        elapsed.as_secs_f64(),
        locate_rps / threads as f64,
    );

    // Phase 2: the same number of fixes, 16 vectors per round trip.
    const BATCH: usize = 16;
    let rounds = per_thread.div_ceil(BATCH);
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for k in 0..rounds {
                    let ys: Vec<Vec<f64>> = (0..BATCH)
                        .map(|j| queries[(t + k * BATCH + j) % queries.len()].clone())
                        .collect();
                    let (fixes, _) = client.locate_batch("bench", ys).expect("locate-batch");
                    assert_eq!(fixes.len(), BATCH);
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    let fixes = (threads * rounds * BATCH) as f64;
    let batch_fps = fixes / elapsed.as_secs_f64();
    println!(
        "locate-batch({BATCH}): {fixes:.0} fixes in {:.3} s  ->  {batch_fps:.0} fixes/s aggregate \
         ({:.0} round trips/s)",
        elapsed.as_secs_f64(),
        batch_fps / BATCH as f64,
    );

    let mut latency = Vec::new();
    let mut admin = Client::connect(addr).expect("connect admin");
    if let Response::Stats { report } = admin.call_ok(&Request::Stats).expect("stats") {
        for e in &report.endpoints {
            if e.endpoint == "locate" || e.endpoint == "locate-batch" {
                println!(
                    "server-side {} latency: p50 <= {} us, p95 <= {} us, p99 <= {} us, max {} us ({} reqs, {} errors)",
                    e.endpoint, e.p50_us, e.p95_us, e.p99_us, e.max_us, e.requests, e.errors
                );
                latency.push(Json::Obj(vec![
                    ("endpoint".into(), Json::Str(e.endpoint.clone())),
                    ("p50_us".into(), Json::Num(e.p50_us as f64)),
                    ("p95_us".into(), Json::Num(e.p95_us as f64)),
                    ("p99_us".into(), Json::Num(e.p99_us as f64)),
                    ("max_us".into(), Json::Num(e.max_us as f64)),
                    ("requests".into(), Json::Num(e.requests as f64)),
                    ("errors".into(), Json::Num(e.errors as f64)),
                ]));
            }
        }
    }
    admin.call_ok(&Request::Shutdown).expect("shutdown");
    handle.join();

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("serve".into())),
        ("quick".into(), Json::Bool(quick)),
        (
            "threads_available".into(),
            Json::Num(std::thread::available_parallelism().map_or(1, |p| p.get()) as f64),
        ),
        (
            "load".into(),
            Json::Obj(vec![
                ("client_threads".into(), Json::Num(threads as f64)),
                ("requests_per_thread".into(), Json::Num(per_thread as f64)),
                ("workers".into(), Json::Num(workers.max(threads + 1) as f64)),
                ("batch".into(), Json::Num(BATCH as f64)),
            ]),
        ),
        ("peak_rss_kb".into(), perf::peak_rss_json()),
        ("locate_req_per_s".into(), Json::Num(perf::round_ms(locate_rps))),
        ("batch_fixes_per_s".into(), Json::Num(perf::round_ms(batch_fps))),
        ("server_latency".into(), Json::Arr(latency)),
    ]);
    let path = perf::write_bench_json("serve", &report);
    println!("wrote {}", path.display());
}
