//! Serving-throughput baseline: `locate` requests/sec against an in-process
//! `taflocd` over loopback TCP, measured for **both wire protocols**.
//!
//! These are the numbers later serving-performance PRs must beat. The setup
//! is the paper-scale site (10 links, 96 cells), one persistent connection
//! per client thread, every request a full `locate` round trip (encode → TCP
//! → dispatch → fingerprint match → decode). Phases:
//!
//! 1. `locate` over v1 (newline-delimited JSON) and over v2 (length-prefixed
//!    checksummed binary), with client-side per-request p50/p99;
//! 2. `locate-batch` (16 vectors per round trip) over each protocol, to
//!    expose the framing overhead amortized away by batching;
//! 3. a mixed many-client phase — `4 x threads` concurrent connections,
//!    alternating v1/v2 — exercising version sniffing under contention;
//! 4. a sharded many-site phase — a second daemon at `--shards 4` owning
//!    eight clones of the calibrated site, with `2 x threads` clients
//!    spraying locates (plus a trickle of ingest) across all sites; reported
//!    as aggregate and per-shard req/s, so shard skew is visible.
//!
//! The wire codecs are hand-rolled in `taf-wire`, so this bench produces
//! real numbers even in builds where serde_json is a compile-only stub (it
//! used to skip itself there). The headline numbers land in
//! `BENCH_serve.json` at the repo root in the canonical golden-file JSON
//! form; CI's bench-smoke job re-generates the file in `--quick` mode.
//!
//! Usage: `cargo run --release -p taf-bench --bin serve_bench [--quick] [threads] [requests_per_thread] [workers]`

use std::time::Instant;
use taf_bench::perf;
use taf_rfsim::{campaign, World, WorldConfig};
use taf_testkit::json::Json;
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};
use tafloc_ingest::LinkSample;
use tafloc_serve::client::{Client, IngestOutcome};
use tafloc_serve::maintenance::MaintenancePolicy;
use tafloc_serve::protocol::{Request, Response};
use tafloc_serve::server::{Server, ServerConfig};
use tafloc_serve::shard::{ShardRing, DEFAULT_SHARD_SEED};
use tafloc_serve::wire::WireVersion;

const BATCH: usize = 16;

fn label(version: WireVersion) -> &'static str {
    match version {
        WireVersion::V1Json => "v1",
        WireVersion::V2Binary => "v2",
    }
}

/// Sorted-micros quantile (client-side, whole round trip).
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One `locate` phase: `threads` persistent connections in `version`, each
/// issuing `per_thread` round trips. Returns (req/s, p50 µs, p99 µs).
fn locate_phase(
    addr: std::net::SocketAddr,
    version: WireVersion,
    threads: usize,
    per_thread: usize,
    queries: &[Vec<f64>],
) -> (f64, u64, u64) {
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let queries = queries.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect_with(addr, version).expect("connect");
                let mut micros = Vec::with_capacity(per_thread);
                for k in 0..per_thread {
                    let y = &queries[(t + k) % queries.len()];
                    let t0 = Instant::now();
                    client.locate("bench", y).expect("locate");
                    micros.push(t0.elapsed().as_micros() as u64);
                }
                micros
            })
        })
        .collect();
    let mut micros: Vec<u64> = Vec::with_capacity(threads * per_thread);
    for j in joins {
        micros.extend(j.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    micros.sort_unstable();
    let total = (threads * per_thread) as f64;
    (total / elapsed, quantile_us(&micros, 0.50), quantile_us(&micros, 0.99))
}

/// One `locate-batch` phase (16 vectors per round trip). Returns fixes/s.
fn batch_phase(
    addr: std::net::SocketAddr,
    version: WireVersion,
    threads: usize,
    per_thread: usize,
    queries: &[Vec<f64>],
) -> f64 {
    let rounds = per_thread.div_ceil(BATCH);
    let start = Instant::now();
    let joins: Vec<_> = (0..threads)
        .map(|t| {
            let queries = queries.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect_with(addr, version).expect("connect");
                for k in 0..rounds {
                    let ys: Vec<Vec<f64>> = (0..BATCH)
                        .map(|j| queries[(t + k * BATCH + j) % queries.len()].clone())
                        .collect();
                    let (fixes, _) = client.locate_batch("bench", ys).expect("locate-batch");
                    assert_eq!(fixes.len(), BATCH);
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    (threads * rounds * BATCH) as f64 / elapsed
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let default_per_thread = if quick { 200 } else { 2000 };
    let threads: usize = args.next().map_or(4, |v| v.parse().expect("threads"));
    let per_thread: usize =
        args.next().map_or(default_per_thread, |v| v.parse().expect("requests"));
    let workers: usize = args.next().map_or(threads, |v| v.parse().expect("workers"));

    let world = World::new(WorldConfig::paper_default(), 7);
    let x0 = campaign::full_calibration(&world, 0.0, 50);
    let e0 = campaign::empty_snapshot(&world, 0.0, 50);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    let sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).expect("calibration succeeds");
    // The sharded phase clones this into eight sites on a second daemon.
    let snapshot = sys.snapshot();

    // Pre-generate one query per cell; threads cycle through them.
    let queries: Vec<Vec<f64>> =
        (0..world.num_cells()).map(|c| campaign::snapshot_at_cell(&world, 0.0, c, 50)).collect();

    // The mixed phase opens many persistent connections at once; the server
    // needs a worker per connection (plus one for the admin client) so nobody
    // starves.
    let mixed_clients = (threads * 4).max(8);
    let policy = MaintenancePolicy { auto_refresh: false, ..Default::default() };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: workers.max(mixed_clients + 1),
            default_policy: policy,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    server.add_site("bench", sys, 0.0).expect("add site");
    let handle = server.spawn();

    println!(
        "serve_bench: {} links x {} cells, {threads} client threads x {per_thread} locates",
        world.num_links(),
        world.num_cells()
    );

    let mut results: Vec<(String, Json)> = Vec::new();
    for version in [WireVersion::V1Json, WireVersion::V2Binary] {
        let tag = label(version);
        let (rps, p50, p99) = locate_phase(addr, version, threads, per_thread, &queries);
        println!(
            "{tag} locate: {:.0} requests  ->  {rps:.0} req/s, client p50 {p50} us, p99 {p99} us",
            (threads * per_thread) as f64,
        );
        results.push((format!("{tag}_locate_req_per_s"), Json::Num(perf::round_ms(rps))));
        results.push((format!("{tag}_locate_p50_us"), Json::Num(p50 as f64)));
        results.push((format!("{tag}_locate_p99_us"), Json::Num(p99 as f64)));

        let fps = batch_phase(addr, version, threads, per_thread, &queries);
        println!(
            "{tag} locate-batch({BATCH}): {fps:.0} fixes/s aggregate ({:.0} round trips/s)",
            fps / BATCH as f64,
        );
        results.push((format!("{tag}_batch_fixes_per_s"), Json::Num(perf::round_ms(fps))));
    }

    // Mixed phase: many clients, alternating versions on one server, so the
    // per-message sniffing path is exercised under real contention.
    let mixed_per_client = per_thread.div_ceil(2).max(1);
    let start = Instant::now();
    let joins: Vec<_> = (0..mixed_clients)
        .map(|t| {
            let queries = queries.clone();
            let version = if t % 2 == 0 { WireVersion::V1Json } else { WireVersion::V2Binary };
            std::thread::spawn(move || {
                let mut client = Client::connect_with(addr, version).expect("connect");
                let mut micros = Vec::with_capacity(mixed_per_client);
                for k in 0..mixed_per_client {
                    let y = &queries[(t + k) % queries.len()];
                    let t0 = Instant::now();
                    client.locate("bench", y).expect("locate");
                    micros.push(t0.elapsed().as_micros() as u64);
                }
                (version, micros)
            })
        })
        .collect();
    let mut micros: Vec<u64> = Vec::new();
    let (mut v1_reqs, mut v2_reqs) = (0usize, 0usize);
    for j in joins {
        let (version, m) = j.join().expect("mixed client thread");
        match version {
            WireVersion::V1Json => v1_reqs += m.len(),
            WireVersion::V2Binary => v2_reqs += m.len(),
        }
        micros.extend(m);
    }
    let elapsed = start.elapsed().as_secs_f64();
    micros.sort_unstable();
    let mixed_rps = micros.len() as f64 / elapsed;
    let (mp50, mp99) = (quantile_us(&micros, 0.50), quantile_us(&micros, 0.99));
    println!(
        "mixed ({mixed_clients} clients, alternating v1/v2): {mixed_rps:.0} req/s, \
         client p50 {mp50} us, p99 {mp99} us",
    );
    results.push(("mixed_clients".into(), Json::Num(mixed_clients as f64)));
    results.push(("mixed_req_per_s".into(), Json::Num(perf::round_ms(mixed_rps))));
    results
        .push(("mixed_v1_req_per_s".into(), Json::Num(perf::round_ms(v1_reqs as f64 / elapsed))));
    results
        .push(("mixed_v2_req_per_s".into(), Json::Num(perf::round_ms(v2_reqs as f64 / elapsed))));
    results.push(("mixed_p50_us".into(), Json::Num(mp50 as f64)));
    results.push(("mixed_p99_us".into(), Json::Num(mp99 as f64)));

    let mut latency = Vec::new();
    let mut admin = Client::connect(addr).expect("connect admin");
    if let Response::Stats { report } = admin.call_ok(&Request::Stats).expect("stats") {
        for e in &report.endpoints {
            if e.endpoint == "locate" || e.endpoint == "locate-batch" {
                println!(
                    "server-side {} latency: p50 <= {} us, p95 <= {} us, p99 <= {} us, max {} us ({} reqs, {} errors)",
                    e.endpoint, e.p50_us, e.p95_us, e.p99_us, e.max_us, e.requests, e.errors
                );
                latency.push(Json::Obj(vec![
                    ("endpoint".into(), Json::Str(e.endpoint.clone())),
                    ("p50_us".into(), Json::Num(e.p50_us as f64)),
                    ("p95_us".into(), Json::Num(e.p95_us as f64)),
                    ("p99_us".into(), Json::Num(e.p99_us as f64)),
                    ("max_us".into(), Json::Num(e.max_us as f64)),
                    ("requests".into(), Json::Num(e.requests as f64)),
                    ("errors".into(), Json::Num(e.errors as f64)),
                ]));
            }
        }
    }
    admin.call_ok(&Request::Shutdown).expect("shutdown");
    handle.join();

    // Sharded many-site phase: a fresh daemon at --shards 4 owning eight
    // clones of the calibrated site, hammered by 2x threads clients that
    // spray locates across every site (so every shard sees traffic) plus a
    // trickle of ingest through the admission gate.
    let num_shards = 4usize;
    let num_sites = 8usize;
    let sharded_clients = (threads * 2).max(8);
    let ring = ShardRing::new(num_shards, DEFAULT_SHARD_SEED);
    let site_names: Vec<String> = (0..num_sites).map(|i| format!("s-{i}")).collect();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: sharded_clients + 1,
            shards: num_shards,
            default_policy: policy,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    for name in &site_names {
        let clone = TafLoc::from_snapshot(snapshot.clone()).expect("snapshot round-trips");
        server.add_site(name, clone, 0.0).expect("add site");
    }
    let handle = server.spawn();

    let sharded_per_client = per_thread.div_ceil(2).max(num_sites);
    let start = Instant::now();
    let joins: Vec<_> = (0..sharded_clients)
        .map(|t| {
            let queries = queries.clone();
            let site_names = site_names.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut per_site = vec![0u64; site_names.len()];
                let mut overloaded = 0u64;
                for k in 0..sharded_per_client {
                    let site = (t + k) % site_names.len();
                    let name = &site_names[site];
                    client.locate(name, &queries[(t + k) % queries.len()]).expect("locate");
                    per_site[site] += 1;
                    if k % 8 == 0 {
                        let batch: Vec<LinkSample> =
                            (0..16).map(|j| LinkSample::new(j % 10, k as f64, -55.0)).collect();
                        match client.try_ingest(name, None, 0.0, batch).expect("ingest") {
                            IngestOutcome::Ingested(_) => {}
                            IngestOutcome::Overloaded { .. } => overloaded += 1,
                        }
                    }
                }
                (per_site, overloaded)
            })
        })
        .collect();
    let mut per_site = vec![0u64; num_sites];
    let mut overloaded = 0u64;
    for j in joins {
        let (p, o) = j.join().expect("sharded client thread");
        for (a, b) in per_site.iter_mut().zip(&p) {
            *a += b;
        }
        overloaded += o;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let mut per_shard = vec![0u64; num_shards];
    for (i, name) in site_names.iter().enumerate() {
        per_shard[ring.shard_of(name)] += per_site[i];
    }
    let sharded_rps = per_site.iter().sum::<u64>() as f64 / elapsed;
    let per_shard_rps: Vec<f64> = per_shard.iter().map(|&n| n as f64 / elapsed).collect();
    println!(
        "sharded ({num_shards} shards, {num_sites} sites, {sharded_clients} clients): \
         {sharded_rps:.0} locate req/s; per-shard {:?} req/s; {overloaded} overloaded ingest replies",
        per_shard_rps.iter().map(|r| r.round()).collect::<Vec<_>>(),
    );
    let mut admin = Client::connect(addr).expect("connect admin");
    if let Response::Stats { report } = admin.call_ok(&Request::Stats).expect("stats") {
        for s in &report.shards {
            println!(
                "shard {}: {} sites, {} batches offered -> {} admitted / {} deferred / {} rejected",
                s.shard,
                s.sites,
                s.offered_batches,
                s.admitted_batches,
                s.deferred_batches,
                s.rejected_batches,
            );
        }
    }
    admin.call_ok(&Request::Shutdown).expect("shutdown");
    handle.join();
    results.push((
        "sharded".into(),
        Json::Obj(vec![
            ("shards".into(), Json::Num(num_shards as f64)),
            ("sites".into(), Json::Num(num_sites as f64)),
            ("clients".into(), Json::Num(sharded_clients as f64)),
            ("locate_req_per_s".into(), Json::Num(perf::round_ms(sharded_rps))),
            (
                "per_shard_req_per_s".into(),
                Json::Arr(per_shard_rps.iter().map(|&r| Json::Num(perf::round_ms(r))).collect()),
            ),
            ("overloaded_ingest_replies".into(), Json::Num(overloaded as f64)),
        ]),
    ));

    let mut report = vec![
        ("bench".into(), Json::Str("serve".into())),
        ("quick".into(), Json::Bool(quick)),
        (
            "threads_available".into(),
            Json::Num(std::thread::available_parallelism().map_or(1, |p| p.get()) as f64),
        ),
        (
            "load".into(),
            Json::Obj(vec![
                ("client_threads".into(), Json::Num(threads as f64)),
                ("requests_per_thread".into(), Json::Num(per_thread as f64)),
                ("workers".into(), Json::Num(workers.max(mixed_clients + 1) as f64)),
                ("batch".into(), Json::Num(BATCH as f64)),
            ]),
        ),
        ("peak_rss_kb".into(), perf::peak_rss_json()),
    ];
    report.extend(results);
    report.push(("server_latency".into(), Json::Arr(latency)));
    let path = perf::write_bench_json("serve", &Json::Obj(report));
    println!("wrote {}", path.display());
}
