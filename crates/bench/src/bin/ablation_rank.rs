//! Ablation `abl-rank`: sweep the LoLi-IR factor rank `r`.
//!
//! The factor rank trades expressiveness (too small a rank cannot represent the
//! fingerprint structure) against noise fitting and cost. The default of 8 is
//! validated here against the 90-day update.
//!
//! Usage: `cargo run --release -p taf-bench --bin ablation_rank [seeds] [samples]`

use taf_bench::ablation::evaluate_seeds;
use tafloc_core::system::TafLocConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    println!("== Ablation: LoLi-IR factor rank (90-day update) ==");
    println!("{:>6} {:>22} {:>22}", "rank", "recon mean [dBm]", "loc median [m]");
    for rank in [2, 3, 4, 6, 8, 10] {
        let mut cfg = TafLocConfig::default();
        cfg.loli.rank = rank;
        let out = evaluate_seeds(cfg, &seeds, samples, 2);
        println!("{:>6} {:>22.3} {:>22.3}", rank, out.recon_mean_dbm, out.loc_median_m);
    }
}
