//! Ablation `abl-z`: is the correlation matrix `Z` really better left fixed?
//!
//! The paper's core assumption is that `Z` (learned once, at full-calibration
//! time) encodes *stable* spatial structure, while the raw RSS drifts. The
//! alternative — refit `Z` on each reconstructed database — creates a feedback
//! loop where reconstruction errors contaminate the correlation structure of
//! every later update. This experiment runs monthly updates for half a year
//! under both policies and tracks the database error after each update.
//!
//! Usage: `cargo run --release -p taf-bench --bin ablation_zpolicy [seeds] [samples]`

use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig, ZRefreshPolicy};

const UPDATE_DAYS: [f64; 6] = [30.0, 60.0, 90.0, 120.0, 150.0, 180.0];

fn run_seed(policy: ZRefreshPolicy, seed: u64, samples: usize) -> Vec<f64> {
    let world = World::new(WorldConfig::paper_default(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    let cfg = TafLocConfig { z_policy: policy, ..Default::default() };
    let mut sys = TafLoc::calibrate(cfg, db, e0).expect("calibration succeeds");

    UPDATE_DAYS
        .iter()
        .map(|&t| {
            let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), samples);
            let empty = campaign::empty_snapshot(&world, t, samples);
            sys.update(&fresh, &empty).expect("update succeeds");
            let truth = world.fingerprint_truth(t);
            sys.db().mean_abs_error(&truth).expect("shapes agree")
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let num_seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    eprintln!("ablation_zpolicy: monthly updates for 180 days, {} seeds ...", seeds.len());
    let mut rows = Vec::new();
    for (name, policy) in [
        ("Z fixed (paper)", ZRefreshPolicy::Fixed),
        ("Z refit each update", ZRefreshPolicy::RefitAfterUpdate),
    ] {
        let per_seed = taf_bench::run_seeds(&seeds, |s| run_seed(policy, s, samples));
        let mut avg = vec![0.0; UPDATE_DAYS.len()];
        for r in &per_seed {
            for (a, v) in avg.iter_mut().zip(r) {
                *a += v / per_seed.len() as f64;
            }
        }
        rows.push((name, avg));
    }

    println!("\n== Ablation: Z lifecycle (mean DB error in dBm after each monthly update) ==");
    print!("{:>24}", "day");
    for d in UPDATE_DAYS {
        print!(" {:>8.0}", d);
    }
    println!();
    for (name, avg) in &rows {
        print!("{name:>24}");
        for v in avg {
            print!(" {v:>8.2}");
        }
        println!();
    }
}
