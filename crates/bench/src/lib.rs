//! # taf-bench
//!
//! Shared experiment drivers for the figure-regeneration binaries and the
//! Criterion benches. Each paper artifact (Fig. 3, Fig. 4, Fig. 5, the in-text
//! drift/cost/noise numbers, and the design-choice ablations) has a driver here;
//! the binaries in `src/bin/` are thin wrappers that run a driver at full scale
//! and print the same rows/series the paper reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN along with non-positive values in
// config validation — the clippy lint suggesting `x <= 0.0` would silently
// accept NaN. Indexed loops are used where two or more parallel buffers are
// driven by one index; rewriting them as iterator chains hurts readability in
// the numerical kernels.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod perf;
pub mod report;

use parking_lot::Mutex;

/// Runs `f(seed)` for every seed, in parallel across OS threads (one per seed,
/// capped by the machine), returning results in seed order.
///
/// The figure experiments average over independent world realizations; each
/// realization is CPU-bound and embarrassingly parallel.
pub fn run_seeds<R: Send>(seeds: &[u64], f: impl Fn(u64) -> R + Sync) -> Vec<R> {
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(seeds.len()));
    crossbeam::thread::scope(|scope| {
        for (idx, &seed) in seeds.iter().enumerate() {
            let results = &results;
            let f = &f;
            scope.spawn(move |_| {
                let r = f(seed);
                results.lock().push((idx, r));
            });
        }
    })
    .expect("seed worker panicked");
    let mut collected = results.into_inner();
    collected.sort_by_key(|(idx, _)| *idx);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_seeds_preserves_order() {
        let out = run_seeds(&[5, 1, 9, 3], |s| s * 2);
        assert_eq!(out, vec![10, 2, 18, 6]);
    }

    #[test]
    fn run_seeds_empty() {
        let out: Vec<u64> = run_seeds(&[], |s| s);
        assert!(out.is_empty());
    }
}
