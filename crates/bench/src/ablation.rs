//! Shared driver for the design-choice ablations (DESIGN.md rows `abl-rank`,
//! `abl-ref`, `abl-terms`): run the 90-day update under a modified
//! configuration and report reconstruction error plus localization quality.

use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::eval::reconstruction_errors;
use tafloc_core::system::{TafLoc, TafLocConfig};

/// Evaluation horizon shared by all ablations (the paper's 3-month point).
pub const HORIZON_DAYS: f64 = 90.0;

/// Outcome of one ablation cell.
#[derive(Debug, Clone, Copy)]
pub struct AblationOutcome {
    /// Mean absolute reconstruction error (dBm) against the drifted truth.
    pub recon_mean_dbm: f64,
    /// Median localization error (m) over the sampled test cells.
    pub loc_median_m: f64,
}

/// Runs calibrate -> 90-day reference update -> localize for one seed under
/// `config`, testing every `cell_step`-th cell.
pub fn evaluate(
    config: TafLocConfig,
    seed: u64,
    samples: usize,
    cell_step: usize,
) -> AblationOutcome {
    let world = World::new(WorldConfig::paper_default(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    let mut sys = TafLoc::calibrate(config, db, e0).expect("calibration succeeds");

    let t = HORIZON_DAYS;
    let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), samples);
    let empty = campaign::empty_snapshot(&world, t, samples);
    sys.update(&fresh, &empty).expect("update succeeds");

    let truth = world.fingerprint_truth(t);
    let errs = reconstruction_errors(sys.db().rss(), &truth).expect("shapes agree");
    let recon_mean_dbm = errs.iter().sum::<f64>() / errs.len() as f64;

    let mut loc_errs: Vec<f64> = Vec::new();
    for cell in (0..world.num_cells()).step_by(cell_step.max(1)) {
        let y = campaign::snapshot_at_cell(&world, t, cell, samples);
        let fix = sys.localize(&y).expect("localization succeeds");
        loc_errs.push(fix.point.distance(&world.grid().cell_center(cell)));
    }
    let loc_median_m = taf_linalg::stats::median(&loc_errs).expect("non-empty");
    AblationOutcome { recon_mean_dbm, loc_median_m }
}

/// Averages [`evaluate`] over several seeds (parallel).
pub fn evaluate_seeds(
    config: TafLocConfig,
    seeds: &[u64],
    samples: usize,
    cell_step: usize,
) -> AblationOutcome {
    let outs = crate::run_seeds(seeds, |s| evaluate(config, s, samples, cell_step));
    let n = outs.len() as f64;
    AblationOutcome {
        recon_mean_dbm: outs.iter().map(|o| o.recon_mean_dbm).sum::<f64>() / n,
        loc_median_m: outs.iter().map(|o| o.loc_median_m).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_produces_sane_numbers() {
        let out = evaluate(TafLocConfig::default(), 3, 20, 8);
        assert!(out.recon_mean_dbm > 0.0 && out.recon_mean_dbm < 10.0, "{out:?}");
        assert!(out.loc_median_m >= 0.0 && out.loc_median_m < 5.0, "{out:?}");
    }
}
