//! Fig. 3 driver: fingerprint reconstruction error CDFs after different time
//! periods.
//!
//! Protocol (matching the paper's): a full site survey at day 0 calibrates
//! TafLoc; at each horizon `t ∈ {3, 5, 15, 45, 90}` days only the `n = 10`
//! reference cells (plus one empty-room snapshot) are re-measured; LoLi-IR
//! reconstructs the full matrix; the per-entry absolute error against the
//! drifted ground-truth matrix `X(t)` forms one CDF curve per horizon.

use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::eval::reconstruction_errors;
use tafloc_core::system::{TafLoc, TafLocConfig};

/// The paper's horizons, in days (3 d, 5 d, 15 d, 45 d, 3 months).
pub const HORIZONS: [f64; 5] = [3.0, 5.0, 15.0, 45.0, 90.0];

/// Paper-reported mean reconstruction errors (dBm) for 3 d / 15 d / 45 d / 3 mo.
pub const PAPER_MEANS: [(f64, f64); 4] = [(3.0, 2.7), (15.0, 3.3), (45.0, 3.6), (90.0, 4.1)];

/// Per-entry reconstruction errors, one sample per horizon.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// `errors[h]` = per-entry |X̂(t_h) − X(t_h)| over all seeds.
    pub errors: Vec<Vec<f64>>,
}

/// Runs the Fig. 3 protocol on one world seed, appending errors into `into`.
pub fn run_seed(seed: u64, samples: usize, into: &mut [Vec<f64>]) {
    let world = World::new(WorldConfig::paper_default(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).expect("world-consistent db");
    let sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).expect("calibration succeeds");

    for (h, &t) in HORIZONS.iter().enumerate() {
        let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), samples);
        let empty = campaign::empty_snapshot(&world, t, samples);
        let rec = sys.reconstruct_db(&fresh, &empty).expect("reconstruction succeeds");
        let truth = world.fingerprint_truth(t);
        into[h].extend(reconstruction_errors(&rec.matrix, &truth).expect("shapes agree"));
    }
}

/// Runs the full experiment over the given seeds (parallel) and merges samples.
pub fn run(seeds: &[u64], samples: usize) -> Fig3Result {
    let per_seed = crate::run_seeds(seeds, |seed| {
        let mut errs = vec![Vec::new(); HORIZONS.len()];
        run_seed(seed, samples, &mut errs);
        errs
    });
    let mut errors = vec![Vec::new(); HORIZONS.len()];
    for seed_errs in per_seed {
        for (h, e) in seed_errs.into_iter().enumerate() {
            errors[h].extend(e);
        }
    }
    Fig3Result { errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_linalg::stats::mean;

    #[test]
    fn single_seed_errors_grow_with_horizon() {
        let result = run(&[11], 10);
        assert_eq!(result.errors.len(), 5);
        let means: Vec<f64> = result.errors.iter().map(|e| mean(e).unwrap()).collect();
        // The 3-day error must be below the 90-day error (the defining shape of
        // Fig. 3); intermediate horizons can wiggle within one realization.
        assert!(
            means[0] < means[4],
            "3-day error {:.2} should be below 90-day error {:.2}",
            means[0],
            means[4]
        );
        // All errors in a sane dB range.
        assert!(means.iter().all(|&m| m > 0.0 && m < 15.0), "{means:?}");
    }
}
