//! Fig. 5 driver: localization error CDFs of the four systems, three months
//! after calibration.
//!
//! All four systems are driven over **identical** live measurements:
//!
//! * **TafLoc** — database reconstructed at `t = 90 d` from the 10 reference
//!   cells; KNN matching.
//! * **RTI** — no fingerprints; inverts the live attenuation against a live
//!   empty-room baseline (drift-immune, geometry-limited).
//! * **RASS w/ rec.** — the RASS classifier running on TafLoc's reconstructed
//!   database and the fresh baseline (the paper's demonstration that the
//!   reconstruction transfers).
//! * **RASS w/o rec.** — the RASS classifier on the 3-month-old database and
//!   baseline.

use taf_baselines::{Rass, RassConfig, Rti, RtiConfig};
use taf_rfsim::geometry::Segment;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{TafLoc, TafLocConfig};

/// The evaluation horizon: 3 months after the initial site survey.
pub const HORIZON_DAYS: f64 = 90.0;

/// Localization errors (m) per system.
#[derive(Debug, Clone, Default)]
pub struct Fig5Result {
    /// TafLoc with LoLi-IR reconstruction.
    pub tafloc: Vec<f64>,
    /// Radio tomographic imaging.
    pub rti: Vec<f64>,
    /// RASS on the reconstructed database.
    pub rass_with_rec: Vec<f64>,
    /// RASS on the stale database.
    pub rass_without_rec: Vec<f64>,
}

impl Fig5Result {
    /// Merges another result's samples into this one.
    pub fn merge(&mut self, other: Fig5Result) {
        self.tafloc.extend(other.tafloc);
        self.rti.extend(other.rti);
        self.rass_with_rec.extend(other.rass_with_rec);
        self.rass_without_rec.extend(other.rass_without_rec);
    }
}

/// Runs the Fig. 5 protocol on one world seed. Every grid cell (stepped by
/// `cell_step` to control runtime) is used as a test position.
pub fn run_seed(seed: u64, samples: usize, cell_step: usize) -> Fig5Result {
    let world = World::new(WorldConfig::paper_default(), seed);
    let t = HORIZON_DAYS;

    // Day-0 site survey.
    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db0 = FingerprintDb::from_world(x0, &world).expect("world-consistent db");

    // TafLoc: calibrate, then reference-only update at t.
    let mut tafloc = TafLoc::calibrate(TafLocConfig::default(), db0.clone(), e0.clone())
        .expect("calibration succeeds");
    let fresh = campaign::measure_columns(&world, t, tafloc.reference_cells(), samples);
    let fresh_empty = campaign::empty_snapshot(&world, t, samples);
    tafloc.update(&fresh, &fresh_empty).expect("update succeeds");

    // RTI: geometry only.
    let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
    let rti = Rti::new(&links, world.grid(), RtiConfig::default()).expect("rti builds");

    // RASS without reconstruction: stale DB + stale baseline.
    let rass_stale = Rass::new(db0, e0, RassConfig::default()).expect("rass builds");
    // RASS with reconstruction: TafLoc's reconstructed DB + fresh baseline.
    let rass_rec =
        rass_stale.with_database(tafloc.db().clone(), fresh_empty.clone()).expect("rass rebind");

    let mut out = Fig5Result::default();
    for cell in (0..world.num_cells()).step_by(cell_step.max(1)) {
        let truth = world.grid().cell_center(cell);
        let y = campaign::snapshot_at_cell(&world, t, cell, samples);

        let fix = tafloc.localize(&y).expect("tafloc localizes");
        out.tafloc.push(fix.point.distance(&truth));

        let fix = rti.localize(&fresh_empty, &y).expect("rti localizes");
        out.rti.push(fix.point.distance(&truth));

        let fix = rass_rec.localize(&y).expect("rass(rec) localizes");
        out.rass_with_rec.push(fix.point.distance(&truth));

        let fix = rass_stale.localize(&y).expect("rass(stale) localizes");
        out.rass_without_rec.push(fix.point.distance(&truth));
    }
    out
}

/// Runs the experiment over seeds (parallel) and merges samples.
pub fn run(seeds: &[u64], samples: usize, cell_step: usize) -> Fig5Result {
    let per_seed = crate::run_seeds(seeds, |seed| run_seed(seed, samples, cell_step));
    let mut merged = Fig5Result::default();
    for r in per_seed {
        merged.merge(r);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use taf_linalg::stats::median;

    #[test]
    fn tafloc_wins_and_stale_rass_suffers() {
        // Reduced scale: 1 seed, every 4th cell.
        let r = run(&[5], 30, 4);
        assert!(!r.tafloc.is_empty());
        let med = |v: &[f64]| median(v).unwrap();
        let (t, rti, rwr, rwo) =
            (med(&r.tafloc), med(&r.rti), med(&r.rass_with_rec), med(&r.rass_without_rec));
        // The paper's headline ordering: TafLoc best; RASS w/ rec beats RASS w/o.
        assert!(
            t <= rwr + 0.35,
            "TafLoc {t:.2} should be at or near the front (RASS w/ rec {rwr:.2})"
        );
        assert!(t < rwo, "TafLoc {t:.2} must beat stale RASS {rwo:.2}");
        assert!(t < rti + 0.6, "TafLoc {t:.2} should not trail RTI {rti:.2} meaningfully");
        assert!(rwr < rwo, "reconstruction must help RASS: {rwr:.2} vs {rwo:.2}");
    }
}
