//! Tracked-baseline plumbing for the `*_bench` binaries.
//!
//! Every performance-sensitive bench writes its headline numbers to a
//! `BENCH_<name>.json` file at the repository root, in the same canonical
//! JSON form the golden accuracy baselines use ([`taf_testkit::json`]): field
//! order is emission order and floats print in shortest round-trip form, so
//! an unchanged measurement produces an unchanged file. CI re-runs the
//! benches in `--quick` mode and `scripts/bench_gate.sh` compares the fresh
//! solver numbers against the committed file, failing the build on a large
//! regression.

use std::path::{Path, PathBuf};
use taf_testkit::json::Json;

/// The workspace root, resolved at compile time relative to this crate.
/// Benches may be invoked from any working directory (CI runs them from the
/// checkout root, developers from wherever), so paths must not depend on cwd.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`). `None` off Linux or if the field is missing; benches
/// report it as JSON `null` rather than guessing.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `peak_rss_kb` as a JSON value (`null` when unavailable).
pub fn peak_rss_json() -> Json {
    match peak_rss_kb() {
        Some(kb) => Json::Num(kb as f64),
        None => Json::Null,
    }
}

/// Writes `value` to `BENCH_<name>.json` at the repository root and returns
/// the path. Panics on I/O failure — a bench that cannot record its result
/// has failed.
pub fn write_bench_json(name: &str, value: &Json) -> PathBuf {
    let path = repo_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.to_pretty())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

/// Milliseconds with microsecond resolution — coarse enough to keep the JSON
/// short, fine enough for millisecond-scale solves.
pub fn round_ms(ms: f64) -> f64 {
    (ms * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_root_is_a_workspace() {
        assert!(repo_root().join("Cargo.toml").exists());
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 100, "a running test binary uses more than 100 kB, got {kb}");
        }
    }

    #[test]
    fn round_ms_keeps_microseconds() {
        assert_eq!(round_ms(1.2345678), 1.235);
        assert_eq!(round_ms(0.0), 0.0);
    }
}
