//! Plain-text "figure" output: CDF tables and summary rows in the shape the
//! paper reports them, so a run of a figure binary can be diffed against the
//! paper's curves by eye (and by the EXPERIMENTS.md bookkeeping).

use taf_linalg::stats::Ecdf;

/// Prints a set of labeled CDFs as one table: first column the x-grid, one
/// column per series — the textual form of a CDF figure.
pub fn print_cdf_table(
    title: &str,
    x_label: &str,
    x_max: f64,
    points: usize,
    series: &[(String, Ecdf)],
) {
    println!("\n== {title} ==");
    print!("{x_label:>12}");
    for (name, _) in series {
        print!(" {name:>16}");
    }
    println!();
    for k in 0..points {
        let x = x_max * k as f64 / (points.max(2) - 1) as f64;
        print!("{x:>12.2}");
        for (_, e) in series {
            print!(" {:>16.3}", e.eval(x));
        }
        println!();
    }
}

/// Prints per-series summary rows (mean / median / p90).
pub fn print_summaries(series: &[(String, Ecdf)]) {
    println!("{:>20} {:>10} {:>10} {:>10} {:>8}", "series", "mean", "median", "p90", "n");
    for (name, e) in series {
        println!(
            "{:>20} {:>10.3} {:>10.3} {:>10.3} {:>8}",
            name,
            e.mean(),
            e.median(),
            e.quantile(0.9),
            e.len()
        );
    }
}

/// Formats a paper-vs-measured comparison row.
pub fn compare_row(label: &str, paper: f64, measured: f64) -> String {
    let ratio = if paper != 0.0 { measured / paper } else { f64::NAN };
    format!("{label:>24}: paper {paper:>8.2}  measured {measured:>8.2}  ratio {ratio:>6.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_row_formats() {
        let row = compare_row("3 days", 2.7, 2.9);
        assert!(row.contains("2.70"));
        assert!(row.contains("2.90"));
        assert!(row.contains("1.07"));
    }

    #[test]
    fn print_helpers_do_not_panic() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0]).unwrap();
        print_cdf_table("t", "x", 3.0, 4, &[("a".into(), e.clone())]);
        print_summaries(&[("a".into(), e)]);
    }
}
