//! # tafloc
//!
//! Umbrella crate re-exporting the full TafLoc reproduction — a from-scratch
//! Rust implementation of *"TafLoc: Time-adaptive and Fine-grained Device-free
//! Localization with Little Cost"* (SIGCOMM '16) together with its substrates
//! and baselines:
//!
//! * [`core`] ([`tafloc_core`]) — the paper's contribution: fingerprint
//!   database, reference-location selection, the LoLi-IR reconstruction
//!   solver, matching, tracking, detection, and drift monitoring.
//! * [`rfsim`] ([`taf_rfsim`]) — the simulated testbed: indoor RF propagation,
//!   calibrated temporal drift, measurement campaigns.
//! * [`baselines`] ([`taf_baselines`]) — RTI and RASS comparators.
//! * [`linalg`] ([`taf_linalg`]) — the dense/sparse linear algebra everything
//!   is built on.
//!
//! The runnable examples in `examples/` and the integration tests in `tests/`
//! are attached to this crate; the paper-figure binaries live in `taf-bench`
//! and the command-line workflow in `tafloc-cli`. Start with the repository
//! README for the full map.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use taf_baselines as baselines;
pub use taf_linalg as linalg;
pub use taf_rfsim as rfsim;
pub use tafloc_core as core;
