//! End-to-end CLI workflow: every command exercised in sequence through the
//! library API, plus one subprocess check of the installed binary.

use std::path::PathBuf;
use tafloc_cli::{run, Args};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("tafloc_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn file(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn args(v: &[&str]) -> Args {
    Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

#[test]
fn full_lifecycle_through_cli_commands() {
    let dir = TempDir::new("lifecycle");
    let world = dir.file("world.json");
    let survey = dir.file("survey.json");
    let system = dir.file("system.json");
    let refs = dir.file("refs.json");
    let y = dir.file("y.json");
    let csv = dir.file("db.csv");

    // Small world keeps the test fast.
    let msg = run("new-world", &args(&["--seed", "11", "--out", &world, "--small"])).unwrap();
    assert!(msg.contains("6 links"), "{msg}");

    let msg = run(
        "survey",
        &args(&["--world", &world, "--day", "0", "--samples", "20", "--out", &survey]),
    )
    .unwrap();
    assert!(msg.contains("30 cells"), "{msg}");

    let msg =
        run("calibrate", &args(&["--survey", &survey, "--out", &system, "--refs", "6"])).unwrap();
    assert!(msg.contains("reference cells"), "{msg}");

    let msg = run(
        "measure-refs",
        &args(&[
            "--world",
            &world,
            "--system",
            &system,
            "--day",
            "30",
            "--samples",
            "20",
            "--out",
            &refs,
        ]),
    )
    .unwrap();
    assert!(msg.contains("6 reference cells"), "{msg}");

    let msg =
        run("update", &args(&["--system", &system, "--refs", &refs, "--out", &system])).unwrap();
    assert!(msg.contains("LoLi-IR iterations"), "{msg}");
    assert!(msg.contains("DB shifted"), "{msg}");

    let msg = run(
        "snapshot",
        &args(&["--world", &world, "--day", "30", "--cell", "12", "--samples", "20", "--out", &y]),
    )
    .unwrap();
    assert!(msg.contains("cell 12"), "{msg}");

    let msg = run("locate", &args(&["--system", &system, "--y", &y])).unwrap();
    assert!(msg.contains("cell"), "{msg}");
    assert!(msg.contains("m;"), "{msg}");

    let msg = run("info", &args(&["--system", &system])).unwrap();
    assert!(msg.contains("links: 6"), "{msg}");
    assert!(msg.contains("cells: 30"), "{msg}");

    let msg = run("export-db", &args(&["--system", &system, "--out", &csv])).unwrap();
    assert!(msg.contains("6x30"), "{msg}");
    let exported = taf_linalg::io::read_csv(std::path::Path::new(&csv)).unwrap();
    assert_eq!(exported.shape(), (6, 30));
}

#[test]
fn plan_and_budgeted_update_spend_exactly_the_budget() {
    let dir = TempDir::new("plan");
    let world = dir.file("world.json");
    let survey = dir.file("survey.json");
    let system = dir.file("system.json");
    let refs = dir.file("refs.json");
    let plan = dir.file("plan.json");

    run("new-world", &args(&["--seed", "13", "--out", &world, "--small"])).unwrap();
    run("survey", &args(&["--world", &world, "--out", &survey, "--samples", "20"])).unwrap();
    run("calibrate", &args(&["--survey", &survey, "--out", &system, "--refs", "6"])).unwrap();
    run(
        "measure-refs",
        &args(&["--world", &world, "--system", &system, "--day", "60", "--out", &refs]),
    )
    .unwrap();

    // 3 of 6 reference cells at 6 links each.
    let msg = run("plan", &args(&["--system", &system, "--budget", "18", "--out", &plan])).unwrap();
    assert!(msg.contains("18 of 36 link-measurements (50%)"), "{msg}");
    assert_eq!(msg.matches("ref slot").count(), 3, "{msg}");
    let text = std::fs::read_to_string(&plan).unwrap();
    assert!(text.contains("\"planned_cost\":18"), "{text}");
    assert!(text.contains("uncertainty-greedy"), "{text}");

    // Budgeted update spends the same 18 and still converges on a commit.
    let msg = run(
        "update",
        &args(&["--system", &system, "--refs", &refs, "--out", &system, "--budget", "18"]),
    )
    .unwrap();
    assert!(msg.contains("re-surveyed 18 of 36 link-measurements"), "{msg}");
    assert!(msg.contains("uncertainty-greedy"), "{msg}");

    // The fixed-schedule policy is selectable; --policy without --budget is not.
    let msg = run(
        "update",
        &args(&[
            "--system", &system, "--refs", &refs, "--out", &system, "--budget", "12", "--policy",
            "fixed",
        ]),
    )
    .unwrap();
    assert!(msg.contains("re-surveyed 12 of 36 link-measurements (fixed-schedule)"), "{msg}");
    let err = run(
        "update",
        &args(&["--system", &system, "--refs", &refs, "--out", &system, "--policy", "fixed"]),
    )
    .unwrap_err();
    assert!(err.0.contains("--policy requires --budget"), "{err}");
}

#[test]
fn update_rejects_mismatched_refs_file() {
    let dir = TempDir::new("mismatch");
    let world = dir.file("world.json");
    let survey = dir.file("survey.json");
    let system = dir.file("system.json");
    let refs = dir.file("refs.json");

    run("new-world", &args(&["--seed", "3", "--out", &world, "--small"])).unwrap();
    run("survey", &args(&["--world", &world, "--out", &survey, "--samples", "10"])).unwrap();
    run("calibrate", &args(&["--survey", &survey, "--out", &system, "--refs", "5"])).unwrap();
    run(
        "measure-refs",
        &args(&[
            "--world",
            &world,
            "--system",
            &system,
            "--day",
            "10",
            "--samples",
            "10",
            "--out",
            &refs,
        ]),
    )
    .unwrap();

    // Corrupt the refs file's cell list.
    let text = std::fs::read_to_string(&refs).unwrap();
    let mut parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    parsed["cells"][0] = serde_json::json!(0);
    parsed["cells"][1] = serde_json::json!(1);
    std::fs::write(&refs, serde_json::to_string(&parsed).unwrap()).unwrap();

    let err = run("update", &args(&["--system", &system, "--refs", &refs, "--out", &system]))
        .unwrap_err();
    assert!(err.0.contains("disagree"), "{err}");
}

#[test]
fn missing_files_produce_clean_errors() {
    let e = run("info", &args(&["--system", "/nonexistent/system.json"])).unwrap_err();
    assert!(e.0.contains("cannot read"), "{e}");
    let e = run(
        "snapshot",
        &args(&["--world", "/nonexistent/w.json", "--day", "1", "--cell", "0", "--out", "/tmp/x"]),
    )
    .unwrap_err();
    assert!(e.0.contains("cannot read"), "{e}");
}

#[test]
fn snapshot_rejects_out_of_range_cell() {
    let dir = TempDir::new("badcell");
    let world = dir.file("world.json");
    run("new-world", &args(&["--seed", "3", "--out", &world, "--small"])).unwrap();
    let e = run(
        "snapshot",
        &args(&["--world", &world, "--day", "1", "--cell", "9999", "--out", &dir.file("y.json")]),
    )
    .unwrap_err();
    assert!(e.0.contains("out of range"), "{e}");
}

#[test]
fn binary_prints_usage_and_runs_new_world() {
    let bin = env!("CARGO_BIN_EXE_tafloc");
    let out = std::process::Command::new(bin).arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = std::process::Command::new(bin).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "no command -> exit 2");

    let dir = TempDir::new("bin");
    let world = dir.file("world.json");
    let out = std::process::Command::new(bin)
        .args(["new-world", "--seed", "5", "--out", &world, "--small"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(std::path::Path::new(&world).exists());

    let out = std::process::Command::new(bin).args(["bogus-cmd"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_stream_and_ingest_feed_a_running_daemon() {
    use tafloc_serve::client::Client;
    use tafloc_serve::protocol::{Request, Response};

    let dir = TempDir::new("ingest");
    let world = dir.file("world.json");
    let survey = dir.file("survey.json");
    let system = dir.file("system.json");
    let stream = dir.file("stream.json");
    let port_file = dir.file("port.txt");

    run("new-world", &args(&["--seed", "23", "--out", &world, "--small"])).unwrap();
    run("survey", &args(&["--world", &world, "--out", &survey, "--samples", "20"])).unwrap();
    run("calibrate", &args(&["--survey", &survey, "--out", &system, "--refs", "6"])).unwrap();

    // Record a raw stream of a target in cell 12, with mild loss.
    let msg = run(
        "gen-stream",
        &args(&[
            "--world",
            &world,
            "--day",
            "0",
            "--cell",
            "12",
            "--duration",
            "30",
            "--loss",
            "0.05",
            "--out",
            &stream,
        ]),
    )
    .unwrap();
    assert!(msg.contains("raw samples"), "{msg}");

    let serve_args =
        args(&["--port", "0", "--port-file", &port_file, "--system", &system, "--site", "lab"]);
    let daemon = std::thread::spawn(move || run("serve", &serve_args).unwrap());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if !text.is_empty() {
                break text;
            }
        }
        assert!(std::time::Instant::now() < deadline, "serve never wrote its port file");
        std::thread::sleep(std::time::Duration::from_millis(10));
    };

    // Replay the stream into the daemon and close with a live-window fix.
    let msg =
        run("ingest", &args(&["--addr", &addr, "--site", "lab", "--stream", &stream, "--locate"]))
            .unwrap();
    assert!(msg.contains("accepted"), "{msg}");
    assert!(msg.contains("live window fix"), "{msg}");

    // --locate is a live-traffic flag; reference captures reject it.
    let err = run(
        "ingest",
        &args(&[
            "--addr",
            &addr,
            "--site",
            "lab",
            "--stream",
            &stream,
            "--ref-cell",
            "0",
            "--locate",
        ]),
    )
    .unwrap_err();
    assert!(err.0.contains("drop --ref-cell"), "{err}");

    // The daemon's stats saw the samples.
    let mut client = Client::connect(addr.as_str()).unwrap();
    match client.call_ok(&Request::Stats).unwrap() {
        Response::Stats { report } => {
            let site = report.sites.iter().find(|s| s.site == "lab").unwrap();
            assert!(site.ingest.accepted > 0, "daemon must have accepted live samples");
        }
        other => panic!("unexpected reply to stats: {other:?}"),
    }
    client.call_ok(&Request::Shutdown).unwrap();
    daemon.join().unwrap();
}

#[test]
fn serve_command_answers_the_line_protocol() {
    use tafloc_serve::client::Client;
    use tafloc_serve::protocol::{Request, Response};

    let dir = TempDir::new("serve");
    let world = dir.file("world.json");
    let survey = dir.file("survey.json");
    let system = dir.file("system.json");
    let port_file = dir.file("port.txt");

    run("new-world", &args(&["--seed", "21", "--out", &world, "--small"])).unwrap();
    run("survey", &args(&["--world", &world, "--out", &survey, "--samples", "20"])).unwrap();
    run("calibrate", &args(&["--survey", &survey, "--out", &system, "--refs", "6"])).unwrap();

    // The daemon blocks until a shutdown request, so it runs on its own thread.
    let serve_args =
        args(&["--port", "0", "--port-file", &port_file, "--system", &system, "--site", "lab"]);
    let daemon = std::thread::spawn(move || run("serve", &serve_args).unwrap());

    // Discover the ephemeral port.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if !text.is_empty() {
                break text;
            }
        }
        assert!(std::time::Instant::now() < deadline, "serve never wrote its port file");
        std::thread::sleep(std::time::Duration::from_millis(10));
    };

    let mut client = Client::connect(addr.as_str()).unwrap();
    client.ping().unwrap();
    match client.call_ok(&Request::ListSites).unwrap() {
        Response::Sites { sites } => {
            assert_eq!(sites.len(), 1);
            assert_eq!(sites[0].site, "lab");
            assert_eq!(sites[0].links, 6);
        }
        other => panic!("unexpected reply to list-sites: {other:?}"),
    }
    let (cell, _, _, version) = client.locate("lab", &[-50.0; 6]).unwrap();
    assert!(cell < 30);
    assert_eq!(version, 0);

    client.call_ok(&Request::Shutdown).unwrap();
    let msg = daemon.join().unwrap();
    assert!(msg.contains("shut down cleanly"), "{msg}");
}
