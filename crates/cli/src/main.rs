//! `tafloc` binary entry point: parse the command word, hand off to the
//! library, print the result or the error.

use tafloc_cli::{run, Args, USAGE};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    if command == "--help" || command == "help" || command == "-h" {
        print!("{USAGE}");
        return;
    }
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match run(command, &args) {
        Ok(message) => println!("{message}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
