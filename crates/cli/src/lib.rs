//! # tafloc-cli
//!
//! Command-line workflow for the TafLoc reproduction. The CLI drives the same
//! library code as the examples and benches, with all state in JSON/CSV files
//! so each lifecycle step is a separate invocation:
//!
//! ```text
//! tafloc new-world    --seed 7 --out world.json
//! tafloc survey       --world world.json --day 0 --samples 100 --out survey.json
//! tafloc calibrate    --survey survey.json --out system.json
//! tafloc measure-refs --world world.json --system system.json --day 45 --samples 100 --out refs.json
//! tafloc update       --system system.json --refs refs.json --out system.json
//! tafloc snapshot     --world world.json --day 45 --cell 42 --samples 100 --out y.json
//! tafloc locate       --system system.json --y y.json
//! tafloc gen-stream   --world world.json --day 45 --cell 42 --out stream.json
//! tafloc ingest       --addr 127.0.0.1:7777 --site lab --stream stream.json --locate
//! tafloc info         --system system.json
//! tafloc export-db    --system system.json --out db.csv
//! ```
//!
//! The `--world` files pin a simulated environment (config + seed); on a real
//! deployment the `survey`/`measure-refs`/`snapshot` steps would be replaced by
//! actual measurements, and everything from `calibrate` on would be unchanged.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN along with non-positive values in
// config validation — the clippy lint suggesting `x <= 0.0` would silently
// accept NaN. Indexed loops are used where two or more parallel buffers are
// driven by one index; rewriting them as iterator chains hurts readability in
// the numerical kernels.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use taf_linalg::Matrix;
use taf_rfsim::{campaign, World, WorldConfig};
use tafloc_core::db::FingerprintDb;
use tafloc_core::system::{SystemSnapshot, TafLoc, TafLocConfig};

/// CLI error: a message for the user plus a process exit code of 1.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<tafloc_core::TaflocError> for CliError {
    fn from(e: tafloc_core::TaflocError) -> Self {
        CliError(e.to_string())
    }
}

impl From<taf_linalg::LinalgError> for CliError {
    fn from(e: taf_linalg::LinalgError) -> Self {
        CliError(e.to_string())
    }
}

impl From<tafloc_serve::ServeError> for CliError {
    fn from(e: tafloc_serve::ServeError) -> Self {
        CliError(e.to_string())
    }
}

impl From<taf_plan::PlanError> for CliError {
    fn from(e: taf_plan::PlanError) -> Self {
        CliError(e.to_string())
    }
}

/// Result alias for CLI operations.
pub type Result<T> = std::result::Result<T, CliError>;

// ----------------------------------------------------------------------
// File formats
// ----------------------------------------------------------------------

/// A pinned simulated environment: configuration plus seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldFile {
    /// Simulator configuration.
    pub config: WorldConfig,
    /// World seed (all randomness derives from it).
    pub seed: u64,
}

impl WorldFile {
    /// Instantiates the world this file pins.
    pub fn build(&self) -> World {
        World::new(self.config.clone(), self.seed)
    }
}

/// A full site survey: the fingerprint database plus the empty-room baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurveyFile {
    /// Day the survey was taken.
    pub day: f64,
    /// Surveyed fingerprint database.
    pub db: FingerprintDb,
    /// Empty-room RSS baseline at survey time.
    pub empty: Vec<f64>,
}

/// A reference-location measurement set (the cheap update input).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RefsFile {
    /// Day the references were measured.
    pub day: f64,
    /// Reference cells, in the system's selection order.
    pub cells: Vec<usize>,
    /// Measured columns (`M x cells.len()`).
    pub columns: Matrix,
    /// Fresh empty-room RSS baseline.
    pub empty: Vec<f64>,
}

/// One live measurement vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// Day of the measurement.
    pub day: f64,
    /// Averaged per-link RSS.
    pub y: Vec<f64>,
}

/// A raw per-link sample stream, as radios would deliver it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamFile {
    /// Day of the recording.
    pub day: f64,
    /// Raw samples in delivery order.
    pub samples: Vec<taf_rfsim::RawSample>,
}

// ----------------------------------------------------------------------
// JSON helpers
// ----------------------------------------------------------------------

fn read_json<T: for<'de> Deserialize<'de>>(path: &Path) -> Result<T> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read {}: {e}", path.display())))?;
    serde_json::from_str(&text)
        .map_err(|e| CliError(format!("cannot parse {}: {e}", path.display())))
}

fn write_json<T: Serialize>(path: &Path, value: &T) -> Result<()> {
    let text = serde_json::to_string(value)
        .map_err(|e| CliError(format!("cannot serialize for {}: {e}", path.display())))?;
    std::fs::write(path, text)
        .map_err(|e| CliError(format!("cannot write {}: {e}", path.display())))
}

// ----------------------------------------------------------------------
// Argument parsing (std-only; flags are --key value pairs plus switches)
// ----------------------------------------------------------------------

/// Parsed flag arguments.
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--switch`es from raw arguments.
    pub fn parse(raw: &[String]) -> Result<Args> {
        let mut out = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let token = &raw[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(CliError(format!(
                    "unexpected argument {token:?} (flags start with --)"
                )));
            };
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                out.pairs.push((key.to_string(), raw[i + 1].clone()));
                i += 2;
            } else {
                out.switches.push(key.to_string());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Required string flag.
    pub fn required(&self, key: &str) -> Result<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| CliError(format!("missing required flag --{key}")))
    }

    /// Optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Required path flag.
    pub fn path(&self, key: &str) -> Result<PathBuf> {
        Ok(PathBuf::from(self.required(key)?))
    }

    /// Parsed numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError(format!("flag --{key} expects a number, got {v:?}")))
            }
        }
    }

    /// Required parsed numeric flag.
    pub fn num_required<T: std::str::FromStr>(&self, key: &str) -> Result<T> {
        let v = self.required(key)?;
        v.parse().map_err(|_| CliError(format!("flag --{key} expects a number, got {v:?}")))
    }

    /// `true` when the bare switch is present.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

// ----------------------------------------------------------------------
// Thread-pool scoping
// ----------------------------------------------------------------------

/// Runs `f` inside a scoped rayon pool when `--threads N` is given (0 = one
/// thread per core). Without the flag, `f` runs on the process-wide default
/// pool; in a serial (`--no-default-features`) build the flag parses but has
/// no effect.
fn with_threads<T>(args: &Args, f: impl FnOnce() -> Result<T>) -> Result<T> {
    let Some(v) = args.optional("threads") else {
        return f();
    };
    let threads: usize =
        v.parse().map_err(|_| CliError(format!("flag --threads expects a number, got {v:?}")))?;
    #[cfg(feature = "parallel")]
    {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| CliError(format!("cannot build a {threads}-thread pool: {e}")))?;
        pool.install(f)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = threads;
        f()
    }
}

// ----------------------------------------------------------------------
// Commands
// ----------------------------------------------------------------------

/// `new-world`: pins a simulated environment to a file.
pub fn cmd_new_world(args: &Args) -> Result<String> {
    let seed: u64 = args.num("seed", 1)?;
    let out = args.path("out")?;
    let config = if args.switch("small") {
        WorldConfig::small_test()
    } else if let Some(edge) = args.optional("edge") {
        let edge: f64 =
            edge.parse().map_err(|_| CliError(format!("--edge expects meters, got {edge:?}")))?;
        WorldConfig::square_area(edge)
    } else {
        WorldConfig::paper_default()
    };
    let file = WorldFile { config, seed };
    let world = file.build();
    write_json(&out, &file)?;
    Ok(format!(
        "world written to {} ({} links, {} cells, seed {seed})",
        out.display(),
        world.num_links(),
        world.num_cells()
    ))
}

/// `survey`: simulates the full site survey.
pub fn cmd_survey(args: &Args) -> Result<String> {
    let world_file: WorldFile = read_json(&args.path("world")?)?;
    let day: f64 = args.num("day", 0.0)?;
    let samples: usize = args.num("samples", 100)?;
    let out = args.path("out")?;
    let world = world_file.build();
    let rss = campaign::full_calibration(&world, day, samples);
    let empty = campaign::empty_snapshot(&world, day, samples);
    let db = FingerprintDb::from_world(rss, &world)?;
    let cells = db.num_cells();
    write_json(&out, &SurveyFile { day, db, empty })?;
    Ok(format!(
        "surveyed {cells} cells x {samples} samples on day {day}; written to {}",
        out.display()
    ))
}

/// `calibrate`: builds a TafLoc system from a survey.
pub fn cmd_calibrate(args: &Args) -> Result<String> {
    let survey: SurveyFile = read_json(&args.path("survey")?)?;
    let out = args.path("out")?;
    let mut config = TafLocConfig::default();
    config.ref_count = args.num("refs", config.ref_count)?;
    let sys = TafLoc::calibrate(config, survey.db, survey.empty)?;
    let refs = sys.reference_cells().to_vec();
    write_json(&out, &sys.snapshot())?;
    Ok(format!("calibrated; reference cells {refs:?}; system written to {}", out.display()))
}

/// `measure-refs`: simulates measuring the system's reference cells.
pub fn cmd_measure_refs(args: &Args) -> Result<String> {
    let world_file: WorldFile = read_json(&args.path("world")?)?;
    let snapshot: SystemSnapshot = read_json(&args.path("system")?)?;
    let day: f64 = args.num_required("day")?;
    let samples: usize = args.num("samples", 100)?;
    let out = args.path("out")?;
    let world = world_file.build();
    let sys = TafLoc::from_snapshot(snapshot)?;
    let cells = sys.reference_cells().to_vec();
    let columns = campaign::measure_columns(&world, day, &cells, samples);
    let empty = campaign::empty_snapshot(&world, day, samples);
    write_json(&out, &RefsFile { day, cells: cells.clone(), columns, empty })?;
    Ok(format!(
        "measured {} reference cells on day {day}; written to {}",
        cells.len(),
        out.display()
    ))
}

// ----------------------------------------------------------------------
// Adaptive sensing (taf-plan)
// ----------------------------------------------------------------------

/// Parses `--policy` (default: uncertainty-greedy).
fn policy_from_args(args: &Args) -> Result<taf_plan::PlanPolicy> {
    match args.optional("policy") {
        None => Ok(taf_plan::PlanPolicy::UncertaintyGreedy),
        Some(p) => Ok(p.parse::<taf_plan::PlanPolicy>()?),
    }
}

/// The system's stored reference columns (`M x n`) — the probe input when no
/// fresh reference measurements are on hand.
fn stored_ref_columns(sys: &TafLoc) -> Result<Matrix> {
    let cells = sys.reference_cells();
    let mut out = Matrix::zeros(sys.db().num_links(), cells.len());
    for (k, &cell) in cells.iter().enumerate() {
        out.set_col(k, &sys.db().rss().col(cell))?;
    }
    Ok(out)
}

/// Runs a probe reconstruction to extract per-reference-cell confidence and
/// turns it into a measurement plan. Every link is assumed measurable — the
/// CLI has no live link census; the daemon path feeds the real one.
fn plan_from_probe(
    sys: &TafLoc,
    probe_refs: &Matrix,
    probe_empty: &[f64],
    budget: usize,
    policy: taf_plan::PlanPolicy,
    epoch: u64,
) -> Result<(taf_plan::MeasurementPlan, Vec<f64>)> {
    let rec = sys.reconstruct_db(probe_refs, probe_empty)?;
    let confidence: Vec<f64> =
        sys.reference_cells().iter().map(|&c| rec.diagnostics.cell_confidence[c]).collect();
    let planner = taf_plan::Planner::new(taf_plan::PlannerConfig::new(budget, policy))?;
    let health = vec![tafloc_ingest::LinkStatus::Live; sys.db().num_links()];
    let plan = planner.plan(&taf_plan::PlanInputs {
        epoch,
        n_refs: confidence.len(),
        link_health: &health,
        confidence: Some(&confidence),
        last_surveyed: None,
    })?;
    Ok((plan, confidence))
}

/// `plan`: computes a budgeted measurement plan for the next reference
/// survey from the system's per-cell reconstruction confidence.
pub fn cmd_plan(args: &Args) -> Result<String> {
    let snapshot: SystemSnapshot = read_json(&args.path("system")?)?;
    let sys = TafLoc::from_snapshot(snapshot)?;
    let budget: usize = args.num_required("budget")?;
    let policy = policy_from_args(args)?;
    let epoch: u64 = args.num("epoch", 1)?;
    // Probe input: fresh reference measurements when provided, else the
    // stored database's own columns (self-probe: confidence then reflects
    // the solver's leverage/coverage structure, not new data).
    let (probe_refs, probe_empty) = match args.optional("refs") {
        Some(p) => {
            let refs: RefsFile = read_json(Path::new(p))?;
            if refs.cells != sys.reference_cells() {
                return Err(CliError(format!(
                    "reference cells in the refs file {:?} disagree with the system's {:?}",
                    refs.cells,
                    sys.reference_cells()
                )));
            }
            (refs.columns, refs.empty)
        }
        None => (stored_ref_columns(&sys)?, sys.empty_rss().to_vec()),
    };
    let (plan, confidence) = with_threads(args, || {
        plan_from_probe(&sys, &probe_refs, &probe_empty, budget, policy, epoch)
    })?;
    let mut msg = format!(
        "plan for epoch {epoch} ({policy}): {} of {} link-measurements ({:.0}%)\n",
        plan.planned_cost,
        plan.full_cost,
        100.0 * plan.planned_cost as f64 / plan.full_cost.max(1) as f64
    );
    for entry in &plan.entries {
        msg.push_str(&format!(
            "  ref slot {} (cell {}, confidence {:.3}): {} link(s)\n",
            entry.ref_slot,
            sys.reference_cells()[entry.ref_slot],
            confidence[entry.ref_slot],
            entry.links.len()
        ));
    }
    if let Some(out) = args.optional("out") {
        write_json(Path::new(out), &plan)?;
        msg.push_str(&format!("written to {out}\n"));
    }
    Ok(msg.trim_end().to_string())
}

/// `update`: refreshes the system's database from reference measurements.
/// `--threads N` scopes the LoLi-IR solve to an N-worker pool. With
/// `--budget N` (and optionally `--policy`), only the plan-selected
/// reference entries are taken from the refs file; the rest keep their
/// stored values and are excluded from the data fit (budgeted refresh).
pub fn cmd_update(args: &Args) -> Result<String> {
    let snapshot: SystemSnapshot = read_json(&args.path("system")?)?;
    let refs: RefsFile = read_json(&args.path("refs")?)?;
    let out = args.path("out")?;
    let mut sys = TafLoc::from_snapshot(snapshot)?;
    if refs.cells != sys.reference_cells() {
        return Err(CliError(format!(
            "reference cells in the refs file {:?} disagree with the system's {:?}",
            refs.cells,
            sys.reference_cells()
        )));
    }
    let (report, cost_note) = match args.optional("budget") {
        None => {
            if args.optional("policy").is_some() {
                return Err(CliError("--policy requires --budget".into()));
            }
            (with_threads(args, || Ok(sys.update(&refs.columns, &refs.empty)?))?, String::new())
        }
        Some(_) => {
            let budget: usize = args.num_required("budget")?;
            let policy = policy_from_args(args)?;
            let epoch: u64 = args.num("epoch", 1)?;
            with_threads(args, || {
                // Probe on the stored columns first: which references is the
                // system least certain about, before spending the budget.
                let stored = stored_ref_columns(&sys)?;
                let empty_now = sys.empty_rss().to_vec();
                let (plan, _) = plan_from_probe(&sys, &stored, &empty_now, budget, policy, epoch)?;
                // Planned entries come from the fresh measurements; the rest
                // keep their stored values and stay outside the data fit.
                let mut columns = stored;
                let mut mask = tafloc_core::Mask::falses(sys.db().num_links(), refs.cells.len());
                for entry in &plan.entries {
                    for &l in &entry.links {
                        columns[(l, entry.ref_slot)] = refs.columns[(l, entry.ref_slot)];
                        mask.set(l, entry.ref_slot, true);
                    }
                }
                let report = sys.update_masked(&columns, &refs.empty, &mask)?;
                let note = format!(
                    "; re-surveyed {} of {} link-measurements ({policy})",
                    plan.planned_cost, plan.full_cost
                );
                Ok((report, note))
            })?
        }
    };
    write_json(&out, &sys.snapshot())?;
    Ok(format!(
        "updated in {} LoLi-IR iterations (converged: {}); DB shifted {:.2} dB{cost_note}; written to {}",
        report.iterations,
        report.converged,
        report.mean_abs_change_db,
        out.display()
    ))
}

/// `snapshot`: simulates one live measurement with the target in a cell.
pub fn cmd_snapshot(args: &Args) -> Result<String> {
    let world_file: WorldFile = read_json(&args.path("world")?)?;
    let day: f64 = args.num_required("day")?;
    let cell: usize = args.num_required("cell")?;
    let samples: usize = args.num("samples", 100)?;
    let out = args.path("out")?;
    let world = world_file.build();
    if cell >= world.num_cells() {
        return Err(CliError(format!(
            "cell {cell} out of range (world has {} cells)",
            world.num_cells()
        )));
    }
    let y = campaign::snapshot_at_cell(&world, day, cell, samples);
    write_json(&out, &SnapshotFile { day, y })?;
    Ok(format!("snapshot with target in cell {cell} on day {day}; written to {}", out.display()))
}

/// `locate`: localizes a snapshot against the system's database.
pub fn cmd_locate(args: &Args) -> Result<String> {
    let snapshot: SystemSnapshot = read_json(&args.path("system")?)?;
    let measurement: SnapshotFile = read_json(&args.path("y")?)?;
    let sys = TafLoc::from_snapshot(snapshot)?;
    let fix = sys.localize(&measurement.y)?;
    Ok(format!(
        "cell {} at ({:.2}, {:.2}) m; fingerprint distance {:.2} dB",
        fix.cell, fix.point.x, fix.point.y, fix.best_distance
    ))
}

/// `info`: prints a summary of a stored system.
pub fn cmd_info(args: &Args) -> Result<String> {
    let snapshot: SystemSnapshot = read_json(&args.path("system")?)?;
    let sys = TafLoc::from_snapshot(snapshot)?;
    let db = sys.db();
    let svd_rank = db.rss().col_piv_qr()?.rank(1e-6);
    Ok(format!(
        "links: {}\ncells: {} ({}x{} of {:.1} m)\nreference cells: {:?}\nnumerical rank: {}\nempty-room RSS: {:.1?} dBm",
        db.num_links(),
        db.num_cells(),
        db.grid().nx(),
        db.grid().ny(),
        db.grid().cell_size(),
        sys.reference_cells(),
        svd_rank,
        sys.empty_rss(),
    ))
}

/// `serve`: runs the always-on localization daemon until a `shutdown`
/// request arrives over the wire (see the `tafloc-serve` crate for the
/// newline-delimited JSON protocol).
pub fn cmd_serve(args: &Args) -> Result<String> {
    use tafloc_serve::server::{Server, ServerConfig};
    let port: u16 = args.num("port", 7777)?;
    let addr =
        args.optional("addr").map(str::to_string).unwrap_or_else(|| format!("127.0.0.1:{port}"));
    let workers: usize = args.num("workers", 4)?;
    // `--threads` sizes the shared maintenance pool (0 = one per core): it
    // bounds how many background LoLi-IR refreshes may run at once.
    let config = ServerConfig { workers, ..Default::default() };
    let maintenance_threads = args.num("threads", config.maintenance_threads)?;
    // `--shards` splits the serving plane into consistent-hash worker shards;
    // ownership is a pure function of the site name, so the same flag value
    // re-shards identically across restarts.
    let shards: usize = args.num("shards", config.shards)?;
    // `--max-inflight-per-site` caps in-flight ingest samples per site; past
    // it the daemon answers `overloaded` frames instead of queueing silently.
    let max_inflight_per_site: usize =
        args.num("max-inflight-per-site", config.max_inflight_per_site)?;
    // `--data-dir` turns on crash-safe persistence: committed generations
    // are snapshotted there, admitted survey-path batches are journaled
    // between commits, and both are recovered on the next start.
    let data_dir = args.optional("data-dir").map(std::path::PathBuf::from);
    // `--journal-flush-ms` bounds the write-ahead journal's group-commit
    // window (0 = fsync every admitted batch).
    let journal_flush_ms: u64 =
        args.num("journal-flush-ms", ServerConfig::default().journal_flush.as_millis() as u64)?;
    // `--budget N [--policy P]` attaches an adaptive-sensing planner to every
    // site the daemon registers or recovers: refreshes then accept budgeted
    // reference rounds guided by reconstruction confidence.
    let plan = match args.optional("budget") {
        Some(_) => {
            let budget: usize = args.num_required("budget")?;
            Some(taf_plan::PlannerConfig::new(budget, policy_from_args(args)?))
        }
        None => {
            if args.optional("policy").is_some() {
                return Err(CliError("--policy requires --budget".into()));
            }
            None
        }
    };
    let server = Server::bind(
        addr.as_str(),
        ServerConfig {
            maintenance_threads,
            data_dir,
            plan,
            shards,
            max_inflight_per_site,
            max_inflight_per_shard: max_inflight_per_site.saturating_mul(4),
            journal_flush: std::time::Duration::from_millis(journal_flush_ms),
            ..config
        },
    )?;
    let (recovered, skipped) = server.recover_sites()?;
    for name in &recovered {
        eprintln!("site {name:?} recovered from --data-dir");
    }
    for issue in &skipped {
        eprintln!("warning: skipped snapshot {}: {}", issue.path.display(), issue.reason);
    }
    if let Some(system_path) = args.optional("system") {
        // Parse with the bundled wire codec (same path as `taflocd --system`),
        // so `serve` works even in builds where serde_json is stubbed out.
        let text = std::fs::read_to_string(system_path)
            .map_err(|e| CliError(format!("cannot read {system_path}: {e}")))?;
        let snapshot = taf_wire::json::parse(&text)
            .and_then(|v| taf_wire::types::json_read_snapshot(&v, "system"))
            .map_err(|e| CliError(format!("cannot parse {system_path}: {e}")))?;
        let system = TafLoc::from_snapshot(snapshot)?;
        let site = args.optional("site").unwrap_or("default");
        let day: f64 = args.num("day", 0.0)?;
        server.add_site(site, system, day)?;
    }
    let bound = server.local_addr();
    if let Some(port_file) = args.optional("port-file") {
        // Lets scripts (and the workflow test) discover an ephemeral port.
        std::fs::write(port_file, bound.to_string())
            .map_err(|e| CliError(format!("cannot write {port_file}: {e}")))?;
    }
    println!("taflocd listening on {bound}");
    server.run()?;
    Ok(format!("server on {bound} drained and shut down cleanly"))
}

/// `gen-stream`: simulates a raw per-link sample stream (what radios emit,
/// before any windowing/averaging) for a stationary scene.
pub fn cmd_gen_stream(args: &Args) -> Result<String> {
    use taf_rfsim::{stream, StreamConfig};
    let world_file: WorldFile = read_json(&args.path("world")?)?;
    let day: f64 = args.num("day", 0.0)?;
    let out = args.path("out")?;
    let config = StreamConfig {
        rate_hz: args.num("rate", StreamConfig::default().rate_hz)?,
        duration_s: args.num("duration", StreamConfig::default().duration_s)?,
        jitter_frac: args.num("jitter", StreamConfig::default().jitter_frac)?,
        loss_rate: args.num("loss", StreamConfig::default().loss_rate)?,
        reorder_prob: args.num("reorder", StreamConfig::default().reorder_prob)?,
    };
    let stream_seed: u64 = args.num("stream-seed", 1)?;
    let world = world_file.build();
    let samples = match args.optional("cell") {
        Some(c) => {
            let cell: usize =
                c.parse().map_err(|_| CliError(format!("--cell expects an index, got {c:?}")))?;
            if cell >= world.num_cells() {
                return Err(CliError(format!(
                    "cell {cell} out of range (world has {} cells)",
                    world.num_cells()
                )));
            }
            stream::stream_at_cell(&world, day, cell, &config, stream_seed)
        }
        None => stream::empty_stream(&world, day, &config, stream_seed),
    };
    let n = samples.len();
    write_json(&out, &StreamFile { day, samples })?;
    Ok(format!(
        "streamed {n} raw samples over {} links for {:.0} s on day {day}; written to {}",
        world.num_links(),
        config.duration_s,
        out.display()
    ))
}

/// `ingest`: replays a recorded raw stream into a running daemon in batches,
/// optionally closing with a `locate-stream` fix from the live window.
pub fn cmd_ingest(args: &Args) -> Result<String> {
    use tafloc_ingest::{BatchReport, LinkSample};
    use tafloc_serve::client::Client;
    let addr = args.required("addr")?;
    let site = args.required("site")?;
    let file: StreamFile = read_json(&args.path("stream")?)?;
    let batch: usize = args.num("batch", 256)?;
    if batch == 0 {
        return Err(CliError("--batch must be at least 1".into()));
    }
    let ref_cell: Option<usize> = match args.optional("ref-cell") {
        Some(v) => Some(
            v.parse().map_err(|_| CliError(format!("--ref-cell expects an index, got {v:?}")))?,
        ),
        None => None,
    };
    let day: f64 = args.num("day", file.day)?;
    // `--wire v2` switches the connection to the length-prefixed binary
    // protocol; the default stays the netcat-friendly JSON lines.
    let version = match args.optional("wire") {
        None | Some("v1") | Some("json") => tafloc_serve::wire::WireVersion::V1Json,
        Some("v2") | Some("binary") => tafloc_serve::wire::WireVersion::V2Binary,
        Some(other) => {
            return Err(CliError(format!("--wire expects v1 or v2, got {other:?}")));
        }
    };
    let samples: Vec<LinkSample> =
        file.samples.iter().map(|r| LinkSample::new(r.link, r.t_s, r.rss_dbm)).collect();
    let mut client = Client::connect_with(addr, version)?;
    let mut total = BatchReport::default();
    let mut batches = 0usize;
    for chunk in samples.chunks(batch) {
        let report = client.ingest_for(site, ref_cell, day, chunk.to_vec())?;
        total.merge(&report);
        batches += 1;
    }
    let mut summary = format!(
        "ingested {} samples in {batches} batches into {site:?}: {} accepted, {} late, {} unknown-link, {} non-finite",
        total.total(),
        total.accepted,
        total.dropped_late,
        total.dropped_unknown_link,
        total.dropped_non_finite
    );
    if args.switch("locate") {
        if ref_cell.is_some() {
            return Err(CliError(
                "--locate applies to live traffic; drop --ref-cell to locate".into(),
            ));
        }
        let (cell, x, y, version) = client.locate_stream(site)?;
        summary.push_str(&format!(
            "\nlive window fix: cell {cell} at ({x:.2}, {y:.2}) m (snapshot v{version})"
        ));
    }
    Ok(summary)
}

/// `export-db`: dumps the fingerprint matrix as CSV.
pub fn cmd_export_db(args: &Args) -> Result<String> {
    let snapshot: SystemSnapshot = read_json(&args.path("system")?)?;
    let out = args.path("out")?;
    taf_linalg::io::write_csv(snapshot.db.rss(), &out)?;
    Ok(format!(
        "{}x{} fingerprint matrix written to {}",
        snapshot.db.num_links(),
        snapshot.db.num_cells(),
        out.display()
    ))
}

/// `testkit`: runs deterministic fault-injection scenarios (taf-testkit)
/// and checks them against — or re-blesses — the committed golden accuracy
/// baselines under `results/golden/`. `--threads N` scopes the runs to an
/// N-worker pool — goldens must match at any thread count.
fn cmd_testkit(args: &Args) -> Result<String> {
    with_threads(args, || cmd_testkit_inner(args))
}

fn cmd_testkit_inner(args: &Args) -> Result<String> {
    if args.switch("list") {
        let mut out = String::from("built-in scenarios:\n");
        for s in taf_testkit::builtin_scenarios() {
            out.push_str(&format!("  {:<16} {}\n", s.name, s.description));
        }
        out.push_str("goldens live in results/golden/; re-bless with --bless");
        return Ok(out);
    }
    let mut scenarios = match args.optional("scenario") {
        Some(name) => vec![taf_testkit::find_scenario(name)
            .ok_or_else(|| CliError(format!("unknown scenario {name:?} (try --list)")))?],
        None => taf_testkit::builtin_scenarios(),
    };
    // Ad-hoc overrides for experiments (a blessed golden always comes from
    // the scenario's own seed and a zero bias).
    if let Some(seed) = args.optional("seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| CliError(format!("flag --seed expects a number, got {seed:?}")))?;
        for sc in &mut scenarios {
            sc.seed = seed;
        }
    }
    if let Some(bias) = args.optional("bias") {
        let bias: f64 = bias
            .parse()
            .map_err(|_| CliError(format!("flag --bias expects a number, got {bias:?}")))?;
        for sc in &mut scenarios {
            sc.debug_bias_db = bias;
        }
    }
    // `--budget N [--policy P]`: adaptive-sensing overrides. On a plan
    // scenario they replace the committed budget/policy; on any other
    // scenario `--budget` attaches a second, budgeted survey epoch 30 days
    // past the drift day. Experiments only — never blessable.
    if args.optional("budget").is_some() || args.optional("policy").is_some() {
        if args.optional("scenario").is_none() {
            return Err(CliError("--budget/--policy require --scenario".into()));
        }
        for sc in &mut scenarios {
            if let Some(b) = args.optional("budget") {
                let budget: usize = b
                    .parse()
                    .map_err(|_| CliError(format!("flag --budget expects a number, got {b:?}")))?;
                let full = sc.ref_count * sc.world.config().num_links;
                if budget == 0 || budget > full {
                    return Err(CliError(format!(
                        "--budget must be in 1..={full} link-measurements for this scenario"
                    )));
                }
                let mut spec = sc.plan.unwrap_or(taf_testkit::PlanSpec {
                    budget_fraction: 1.0,
                    policy: taf_plan::PlanPolicy::UncertaintyGreedy,
                    second_drift_day: sc.drift_day + 30.0,
                });
                spec.budget_fraction = budget as f64 / full as f64;
                sc.plan = Some(spec);
            }
            match (&mut sc.plan, args.optional("policy")) {
                (Some(spec), Some(p)) => spec.policy = p.parse::<taf_plan::PlanPolicy>()?,
                (None, Some(_)) => {
                    return Err(CliError(
                        "--policy needs --budget or a plan scenario (plan-*)".into(),
                    ))
                }
                _ => {}
            }
        }
    }
    let bless = args.switch("bless");
    if bless
        && (args.optional("seed").is_some()
            || args.optional("bias").is_some()
            || args.optional("budget").is_some()
            || args.optional("policy").is_some())
    {
        return Err(CliError(
            "--bless cannot be combined with --seed/--bias/--budget/--policy overrides".into(),
        ));
    }
    let mut out = String::new();
    let mut failures = 0usize;
    for sc in &scenarios {
        let report = taf_testkit::run_scenario(sc).map_err(CliError)?;
        if let Some(path) = args.optional("out") {
            std::fs::write(path, report.to_json()).map_err(|e| CliError(format!("{path}: {e}")))?;
        }
        if bless {
            let path = taf_testkit::bless(&report).map_err(CliError)?;
            out.push_str(&format!("{}: blessed -> {}\n", sc.name, path.display()));
            continue;
        }
        match taf_testkit::load_golden(sc.name) {
            Err(e) => {
                failures += 1;
                out.push_str(&format!("{}: {e}\n", sc.name));
            }
            Ok(golden) => {
                let violations = taf_testkit::compare(&report, &golden, &sc.tolerances);
                if violations.is_empty() {
                    out.push_str(&format!(
                        "{}: ok (recon RMSE {:.3} dB, drifted mean loc err {:.3} m, {} refreshes)\n",
                        sc.name, report.recon_rmse_db, report.drifted.loc.mean, report.refreshes
                    ));
                } else {
                    failures += 1;
                    out.push_str(&format!("{}: FAILED\n", sc.name));
                    for v in violations {
                        out.push_str(&format!("    {v}\n"));
                    }
                }
            }
        }
    }
    if failures > 0 {
        return Err(CliError(format!("{}{failures} scenario(s) failed", out)));
    }
    Ok(out.trim_end().to_string())
}

/// Usage text.
pub const USAGE: &str = "\
tafloc — time-adaptive device-free localization (TafLoc, SIGCOMM '16 reproduction)

USAGE: tafloc <command> [--flag value ...]

COMMANDS
  new-world     --out w.json [--seed N] [--small | --edge METERS]
  survey        --world w.json --out survey.json [--day D] [--samples K]
  calibrate     --survey survey.json --out system.json [--refs N]
  measure-refs  --world w.json --system system.json --day D --out refs.json [--samples K]
  update        --system system.json --refs refs.json --out system.json [--threads N]
                [--budget N [--policy uncertainty-greedy|fixed-schedule] [--epoch E]]
  plan          --system system.json --budget N [--policy P] [--epoch E]
                [--refs refs.json] [--out plan.json]
  snapshot      --world w.json --day D --cell C --out y.json [--samples K]
  locate        --system system.json --y y.json
  gen-stream    --world w.json --out stream.json [--day D] [--cell C]
                [--duration S] [--rate HZ] [--jitter F] [--loss P] [--reorder P]
                [--stream-seed N]
  ingest        --addr HOST:PORT --site NAME --stream stream.json [--batch N]
                [--ref-cell K] [--day D] [--locate] [--wire v1|v2]
  info          --system system.json
  export-db     --system system.json --out db.csv
  serve         [--port P | --addr HOST:PORT] [--workers N] [--threads N]
                [--shards N] [--max-inflight-per-site N] [--port-file PATH]
                [--data-dir DIR] [--journal-flush-ms MS]
                [--budget N [--policy P]]
                [--system system.json [--site NAME] [--day D]]
  testkit       [--list] [--scenario NAME] [--bless] [--out report.json]
                [--seed N] [--bias DB] [--budget N] [--policy P] [--threads N]

`--threads N` scopes solver work to an N-worker pool (0 = one per core);
for `serve` it sizes the shared background-maintenance pool.
";

/// Dispatches a command; returns the success message to print.
pub fn run(command: &str, args: &Args) -> Result<String> {
    match command {
        "new-world" => cmd_new_world(args),
        "survey" => cmd_survey(args),
        "calibrate" => cmd_calibrate(args),
        "measure-refs" => cmd_measure_refs(args),
        "update" => cmd_update(args),
        "plan" => cmd_plan(args),
        "snapshot" => cmd_snapshot(args),
        "locate" => cmd_locate(args),
        "gen-stream" => cmd_gen_stream(args),
        "ingest" => cmd_ingest(args),
        "info" => cmd_info(args),
        "export-db" => cmd_export_db(args),
        "serve" => cmd_serve(args),
        "testkit" => cmd_testkit(args),
        other => Err(CliError(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_pairs_and_switches() {
        let a = Args::parse(&strs(&["--seed", "7", "--small", "--out", "x.json"])).unwrap();
        assert_eq!(a.required("seed").unwrap(), "7");
        assert_eq!(a.required("out").unwrap(), "x.json");
        assert!(a.switch("small"));
        assert!(!a.switch("big"));
        assert_eq!(a.num::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.num::<u64>("missing", 42).unwrap(), 42);
    }

    #[test]
    fn args_reject_non_flags_and_bad_numbers() {
        assert!(Args::parse(&strs(&["seed", "7"])).is_err());
        let a = Args::parse(&strs(&["--seed", "banana"])).unwrap();
        assert!(a.num::<u64>("seed", 0).is_err());
        assert!(a.num_required::<u64>("seed").is_err());
        assert!(a.required("nope").is_err());
    }

    #[test]
    fn unknown_command_reports_usage() {
        let a = Args::default();
        let e = run("frobnicate", &a).unwrap_err();
        assert!(e.0.contains("unknown command"));
        assert!(e.0.contains("USAGE"));
    }
}
