//! Equivalence of the parallel kernel paths with the serial ones.
//!
//! Two properties are checked on shapes spanning `PAR_MIN_FLOPS` (small shapes
//! take the serial branch, 64³ and up take the parallel branch):
//!
//! 1. Against a naive triple-loop reference, to tolerance — the kernels are
//!    correct regardless of which branch ran.
//! 2. Bit-identical output across thread pools of size 1, 2, and 8 — the
//!    per-row decomposition makes thread count invisible in the result.

use taf_linalg::Matrix;

/// Deterministic pseudo-random matrix (xorshift, no rand dependency needed).
fn pseudo(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2000) as f64 / 100.0 - 10.0
    })
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    Matrix::from_fn(a.rows(), b.cols(), |i, j| (0..a.cols()).map(|p| a[(i, p)] * b[(p, j)]).sum())
}

/// Shapes on both sides of the parallel size threshold (m, k, n), including
/// row counts that straddle the cache-block sizes (4/6/8 rows per block) and
/// odd columns that leave a remainder lane in the 2x2 register tile.
const SHAPES: &[(usize, usize, usize)] = &[
    (3, 4, 5),
    (17, 9, 23),
    (48, 8, 400),
    (64, 64, 64),
    (80, 100, 90),
    (5, 16, 7),    // one full 4-row block + 1 leftover row, odd n
    (9, 40, 13),   // 6-row block + 3 remainder rows
    (15, 300, 33), // long-k tier: 4-row blocks, odd everything
    (25, 33, 401), // wide output with a remainder tile column
];

#[test]
fn products_match_naive_reference_across_threshold() {
    for &(m, k, n) in SHAPES {
        let a = pseudo(m, k, 11 + m as u64);
        let b = pseudo(k, n, 29 + n as u64);
        let tol = 1e-9 * (1.0 + (k as f64) * 100.0);

        let c = a.matmul(&b).unwrap();
        assert!(c.approx_eq(&naive_matmul(&a, &b), tol), "matmul {m}x{k}x{n}");

        let nt = a.matmul_nt(&b.transpose()).unwrap();
        assert!(nt.approx_eq(&c, tol), "matmul_nt {m}x{k}x{n}");

        let tn = a.transpose().matmul_tn(&b).unwrap();
        assert!(tn.approx_eq(&c, tol), "matmul_tn {m}x{k}x{n}");

        let g = a.gram();
        assert!(g.approx_eq(&naive_matmul(&a.transpose(), &a), tol), "gram {m}x{k}");
    }
}

#[cfg(feature = "parallel")]
#[test]
fn kernels_bit_identical_across_thread_counts() {
    for &(m, k, n) in SHAPES {
        let a = pseudo(m, k, 3 + m as u64);
        let b = pseudo(k, n, 7 + n as u64);
        let bt = b.transpose();

        let run = || {
            (
                a.matmul(&b).unwrap(),
                a.matmul_nt(&bt).unwrap(),
                a.transpose().matmul_tn(&b).unwrap(),
                a.gram(),
                a.qr().unwrap().r().clone(),
                a.svd().map(|s| s.sigma).unwrap_or_default(),
            )
        };

        let mut reference = None;
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got = pool.install(run);
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(want.0.as_slice(), got.0.as_slice(), "matmul @{threads}");
                    assert_eq!(want.1.as_slice(), got.1.as_slice(), "matmul_nt @{threads}");
                    assert_eq!(want.2.as_slice(), got.2.as_slice(), "matmul_tn @{threads}");
                    assert_eq!(want.3.as_slice(), got.3.as_slice(), "gram @{threads}");
                    assert_eq!(want.4.as_slice(), got.4.as_slice(), "qr @{threads}");
                    assert_eq!(want.5, got.5, "svd sigma @{threads}");
                }
            }
        }
    }
}
