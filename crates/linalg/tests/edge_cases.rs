//! Degenerate-size and numerically extreme cases for the linear-algebra
//! substrate: 1x1 everything, huge/tiny scales, repeated singular values, and
//! adversarial shapes.

use taf_linalg::solve::{conjugate_gradient, ridge, CgConfig};
use taf_linalg::sparse::Csr;
use taf_linalg::stats::Ecdf;
use taf_linalg::Matrix;

#[test]
fn one_by_one_decompositions() {
    let a = Matrix::from_rows(&[&[4.0]]).unwrap();
    assert_eq!(a.lu().unwrap().determinant(), 4.0);
    assert!((a.inverse().unwrap()[(0, 0)] - 0.25).abs() < 1e-15);
    let chol = a.cholesky().unwrap();
    assert_eq!(chol.factor()[(0, 0)], 2.0);
    let svd = a.svd().unwrap();
    assert_eq!(svd.sigma, vec![4.0]);
    let qr = a.qr().unwrap();
    assert!((qr.q()[(0, 0)].abs() - 1.0).abs() < 1e-15);
    let e = a.eigh().unwrap();
    assert_eq!(e.values, vec![4.0]);
    assert!((a.pinv(1e-12).unwrap()[(0, 0)] - 0.25).abs() < 1e-12);
}

#[test]
fn single_row_and_single_column_svd() {
    let row = Matrix::row_vector(&[3.0, 4.0]);
    let svd = row.svd().unwrap();
    assert!((svd.sigma[0] - 5.0).abs() < 1e-12);
    assert!(svd.reconstruct().approx_eq(&row, 1e-10));

    let col = Matrix::col_vector(&[3.0, 4.0]);
    let svd = col.svd().unwrap();
    assert!((svd.sigma[0] - 5.0).abs() < 1e-12);
    assert!(svd.reconstruct().approx_eq(&col, 1e-10));
}

#[test]
fn repeated_singular_values_still_factor() {
    // 2·I has a doubly repeated singular value — Jacobi must not cycle.
    let a = Matrix::identity(4).scale(2.0);
    let svd = a.svd().unwrap();
    assert!(svd.sigma.iter().all(|&s| (s - 2.0).abs() < 1e-12));
    assert!(svd.reconstruct().approx_eq(&a, 1e-10));
}

#[test]
fn extreme_scales_survive() {
    for scale in [1e-150, 1e-30, 1e30, 1e150] {
        let a =
            Matrix::from_rows(&[&[3.0 * scale, 1.0 * scale], &[1.0 * scale, 2.0 * scale]]).unwrap();
        let svd = a.svd().unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-9 * scale), "scale {scale}");
        let x = a.solve(&[scale, scale]).unwrap();
        let back = a.matvec(&x);
        assert!((back[0] - scale).abs() < 1e-9 * scale, "scale {scale}");
    }
}

#[test]
fn mixed_magnitude_matrix_rank() {
    // Columns spanning 12 orders of magnitude: the rank must count the large
    // directions and cut the numerically-zero ones at the requested tolerance.
    // The rank tolerance is relative to the largest pivot: 1e-8/1e6 = 1e-14.
    let a = Matrix::from_diag(&[1e6, 1.0, 1e-8]);
    let f = a.col_piv_qr().unwrap();
    assert_eq!(f.rank(1e-15), 3);
    assert_eq!(f.rank(1e-10), 2);
    assert_eq!(f.rank(1e-4), 1);
}

#[test]
fn ridge_with_enormous_lambda_goes_to_zero() {
    let a = Matrix::identity(3);
    let x = ridge(&a, &[1.0, 2.0, 3.0], 1e12).unwrap();
    assert!(x.iter().all(|v| v.abs() < 1e-9));
}

#[test]
fn cg_on_identity_converges_in_one_step() {
    let i = Matrix::identity(5);
    let b = [1.0, -2.0, 3.0, -4.0, 5.0];
    let (x, iters) = conjugate_gradient(|v| i.matvec(v), &b, None, CgConfig::default()).unwrap();
    assert!(iters <= 1);
    for (a, c) in x.iter().zip(&b) {
        assert!((a - c).abs() < 1e-12);
    }
}

#[test]
fn csr_with_no_nonzeros() {
    let c = Csr::from_triplets(3, 4, &[]).unwrap();
    assert_eq!(c.nnz(), 0);
    assert_eq!(c.matvec(&[1.0; 4]).unwrap(), vec![0.0; 3]);
    assert_eq!(c.transpose().nnz(), 0);
    assert_eq!(c.gram_dense().max_abs(), 0.0);
    assert!(c.to_dense().approx_eq(&Matrix::zeros(3, 4), 0.0));
}

#[test]
fn ecdf_of_constant_sample() {
    let e = Ecdf::new(&[5.0; 10]).unwrap();
    assert_eq!(e.eval(4.999), 0.0);
    assert_eq!(e.eval(5.0), 1.0);
    assert_eq!(e.quantile(0.5), 5.0);
    assert_eq!(e.min(), e.max());
}

#[test]
fn ecdf_single_sample() {
    let e = Ecdf::new(&[2.5]).unwrap();
    assert_eq!(e.len(), 1);
    assert_eq!(e.median(), 2.5);
    assert_eq!(e.quantile(0.0), 2.5);
    assert_eq!(e.quantile(1.0), 2.5);
}

#[test]
fn matrix_with_zero_rows_or_cols() {
    let z = Matrix::zeros(0, 5);
    assert!(z.is_empty());
    assert_eq!(z.transpose().shape(), (5, 0));
    assert_eq!(z.frobenius_norm(), 0.0);
    let z2 = Matrix::zeros(5, 0);
    assert_eq!(z2.matmul(&z).unwrap().shape(), (5, 5));
}

#[test]
fn hilbert_matrix_conditioning() {
    // The 6x6 Hilbert matrix is famously ill-conditioned (~1e7); make sure the
    // solvers stay usable there.
    let h = Matrix::from_fn(6, 6, |i, j| 1.0 / (i + j + 1) as f64);
    let cond = h.condition_number().unwrap();
    assert!(cond > 1e6 && cond < 1e9, "cond = {cond:e}");
    let x_true = vec![1.0; 6];
    let b = h.matvec(&x_true);
    let x = h.solve(&b).unwrap();
    // Accept loss of ~cond * eps precision.
    for (a, t) in x.iter().zip(&x_true) {
        assert!((a - t).abs() < 1e-6, "{a} vs {t}");
    }
}

#[test]
fn pinv_of_wide_matrix_gives_min_norm_solution() {
    // Underdetermined system: pinv picks the minimum-norm solution.
    let a = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
    let p = a.pinv(1e-12).unwrap();
    let x = p.matvec(&[2.0]);
    assert!((x[0] - 1.0).abs() < 1e-12);
    assert!((x[1] - 1.0).abs() < 1e-12);
}
