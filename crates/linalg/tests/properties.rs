//! Property-based tests of the linear-algebra substrate.
//!
//! These exercise the algebraic identities the LoLi-IR solver silently relies on:
//! associativity/transpose laws of the products, factorization round-trips
//! (`A = QR`, `A = UΣVᵀ`, `A = LLᵀ`), solver correctness, and ECDF monotonicity.

use proptest::prelude::*;
use taf_linalg::solve::{conjugate_gradient, ridge, CgConfig};
use taf_linalg::sparse::Csr;
use taf_linalg::stats::Ecdf;
use taf_linalg::Matrix;

const DIM: std::ops::RangeInclusive<usize> = 1..=8;

/// Strategy: a rows x cols matrix with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized correctly"))
}

fn shaped() -> impl Strategy<Value = Matrix> {
    (DIM, DIM).prop_flat_map(|(r, c)| matrix(r, c))
}

proptest! {
    #[test]
    fn transpose_is_involution(a in shaped()) {
        prop_assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn transpose_reverses_product(
        (a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
    ) {
        let ab = a.matmul(&b).unwrap();
        let btat = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(ab.transpose().approx_eq(&btat, 1e-9 * (1.0 + ab.max_abs())));
    }

    #[test]
    fn matmul_nt_tn_consistent(a in matrix(5, 3), b in matrix(4, 3), c in matrix(5, 2)) {
        let nt = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        prop_assert!(nt.approx_eq(&slow, 1e-9));
        let tn = a.matmul_tn(&c).unwrap();
        let slow = a.transpose().matmul(&c).unwrap();
        prop_assert!(tn.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn addition_commutes_and_distributes(a in matrix(4, 4), b in matrix(4, 4), s in -5.0..5.0f64) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-12));
        let lhs = ab.scale(s);
        let rhs = a.scale(s).add(&b.scale(s)).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn frobenius_triangle_inequality(a in matrix(5, 5), b in matrix(5, 5)) {
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn qr_round_trip(a in shaped()) {
        let qr = a.qr().unwrap();
        let back = qr.q().matmul(qr.r()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8 * (1.0 + a.max_abs())));
        let k = a.rows().min(a.cols());
        prop_assert!(qr.q().gram().approx_eq(&Matrix::identity(k), 1e-8));
    }

    #[test]
    fn col_piv_qr_round_trip(a in shaped()) {
        let f = a.col_piv_qr().unwrap();
        let mut p = Matrix::zeros(a.cols(), a.cols());
        for (k, &j) in f.pivots().iter().enumerate() {
            p[(j, k)] = 1.0;
        }
        let ap = a.matmul(&p).unwrap();
        let qr = f.q().matmul(f.r()).unwrap();
        prop_assert!(qr.approx_eq(&ap, 1e-8 * (1.0 + a.max_abs())));
        // Pivots must be a permutation.
        let mut sorted = f.pivots().to_vec();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..a.cols()).collect::<Vec<_>>());
    }

    #[test]
    fn svd_round_trip_and_ordering(a in shaped()) {
        let svd = a.svd().unwrap();
        prop_assert!(svd.reconstruct().approx_eq(&a, 1e-7 * (1.0 + a.max_abs())));
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_nuclear_dominates_frobenius(a in shaped()) {
        let svd = a.svd().unwrap();
        prop_assert!(svd.nuclear_norm() + 1e-9 >= a.frobenius_norm());
    }

    #[test]
    fn cholesky_solve_agrees_with_lu(b in matrix(4, 4), rhs in proptest::collection::vec(-5.0..5.0f64, 4)) {
        // Build an SPD matrix from arbitrary b.
        let mut spd = b.gram();
        spd.add_diag(4.0 + 1e-3).unwrap();
        let chol = spd.cholesky().unwrap();
        let x1 = chol.solve(&rhs).unwrap();
        let x2 = spd.solve(&rhs).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn lu_solve_residual_small(a in matrix(5, 5), x in proptest::collection::vec(-5.0..5.0f64, 5)) {
        // Diagonally dominate to guarantee invertibility.
        let mut m = a;
        m.add_diag(60.0).unwrap();
        let b = m.matvec(&x);
        let sol = m.solve(&b).unwrap();
        for (u, v) in sol.iter().zip(&x) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn ridge_norm_monotone_in_lambda(a in matrix(6, 3), b in proptest::collection::vec(-5.0..5.0f64, 6)) {
        let norms: Vec<f64> = [0.01, 1.0, 100.0]
            .iter()
            .map(|&l| {
                let x = ridge(&a, &b, l).unwrap();
                x.iter().map(|v| v * v).sum::<f64>()
            })
            .collect();
        prop_assert!(norms[0] + 1e-9 >= norms[1]);
        prop_assert!(norms[1] + 1e-9 >= norms[2]);
    }

    #[test]
    fn cg_matches_direct_solve(b in matrix(5, 5), rhs in proptest::collection::vec(-5.0..5.0f64, 5)) {
        let mut spd = b.gram();
        spd.add_diag(5.0 + 1.0).unwrap();
        let (x, _) = conjugate_gradient(|v| spd.matvec(v), &rhs, None, CgConfig::default()).unwrap();
        let direct = spd.solve(&rhs).unwrap();
        for (u, v) in x.iter().zip(&direct) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn csr_matches_dense_everywhere(a in shaped(), v_seed in -5.0..5.0f64) {
        let c = Csr::from_dense(&a);
        let v: Vec<f64> = (0..a.cols()).map(|i| v_seed + i as f64).collect();
        let sv = c.matvec(&v).unwrap();
        let dv = a.matvec(&v);
        for (x, y) in sv.iter().zip(&dv) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        prop_assert!(c.to_dense().approx_eq(&a, 0.0));
        prop_assert!(c.gram_dense().approx_eq(&a.gram(), 1e-9));
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(mut sample in proptest::collection::vec(-100.0..100.0f64, 1..64)) {
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let e = Ecdf::new(&sample).unwrap();
        let mut prev = 0.0;
        for k in -10..=10 {
            let x = k as f64 * 12.5;
            let p = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p + 1e-12 >= prev);
            prev = p;
        }
        prop_assert!(e.quantile(0.0) <= e.quantile(1.0));
    }

    #[test]
    fn eigh_round_trip_symmetric(b in matrix(5, 5)) {
        let a = b.add(&b.transpose()).unwrap();
        let e = a.eigh().unwrap();
        prop_assert!(e.reconstruct().approx_eq(&a, 1e-6 * (1.0 + a.max_abs())));
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - a.trace().unwrap()).abs() < 1e-6 * (1.0 + a.max_abs()));
    }
}
