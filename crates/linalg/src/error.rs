//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors returned by `taf-linalg` operations.
///
/// Every fallible routine in this crate reports failures through this enum rather
/// than panicking, so callers (the LoLi-IR solver, the simulator, the benches) can
/// decide how to react to degenerate numerical situations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left / first operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right / second operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Actual shape, `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A matrix expected to be symmetric positive definite was not
    /// (Cholesky hit a non-positive pivot).
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// A solve encountered an (numerically) singular matrix.
    Singular {
        /// Index of the zero pivot.
        pivot: usize,
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Human-readable name of the algorithm.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An operation received an empty matrix or slice where data was required.
    EmptyInput {
        /// Human-readable name of the operation that failed.
        op: &'static str,
    },
    /// An index (row, column, or element) was out of bounds.
    IndexOutOfBounds {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay below.
        bound: usize,
    },
    /// A scalar argument was invalid (negative regularizer, NaN tolerance, ...).
    InvalidArgument {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Explanation of what was wrong.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(f, "{op}: requires a square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotPositiveDefinite { pivot, value } => {
                write!(f, "cholesky: matrix is not positive definite (pivot {pivot} = {value:.3e})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "solve: matrix is singular (zero pivot at {pivot})")
            }
            LinalgError::NoConvergence { algorithm, iterations } => {
                write!(f, "{algorithm}: no convergence after {iterations} iterations")
            }
            LinalgError::EmptyInput { op } => write!(f, "{op}: empty input"),
            LinalgError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds (< {bound} required)")
            }
            LinalgError::InvalidArgument { op, reason } => {
                write!(f, "{op}: invalid argument: {reason}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch { op: "matmul", lhs: (2, 3), rhs: (4, 5) };
        assert_eq!(e.to_string(), "matmul: dimension mismatch between 2x3 and 4x5");
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare { op: "lu", shape: (2, 3) };
        assert!(e.to_string().contains("square"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite { pivot: 1, value: -2.0 };
        assert!(e.to_string().contains("positive definite"));
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { pivot: 0 };
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence { algorithm: "jacobi-svd", iterations: 60 };
        assert!(e.to_string().contains("60"));
    }

    #[test]
    fn display_empty_and_bounds_and_invalid() {
        assert!(LinalgError::EmptyInput { op: "mean" }.to_string().contains("empty"));
        let e = LinalgError::IndexOutOfBounds { op: "row", index: 9, bound: 3 };
        assert!(e.to_string().contains("9"));
        let e = LinalgError::InvalidArgument { op: "ridge", reason: "lambda < 0".into() };
        assert!(e.to_string().contains("lambda"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
