//! Parallel execution helpers for the dense kernels.
//!
//! All parallelism in this crate routes through [`for_each_row`], which splits a
//! row-major output buffer into whole-row chunks and runs the same per-row
//! kernel on each. Because every output row is produced by one task executing
//! the identical serial instruction sequence, results are bit-identical to the
//! serial path at any thread count — no atomics, no reduction trees, no
//! thread-count-dependent summation order.
//!
//! With the `parallel` feature disabled, [`for_each_row`] degrades to a plain
//! loop and [`current_threads`] reports 1.

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Work-size floor (in fused multiply-add counts) below which kernels stay
/// serial: at small shapes fork/join overhead dwarfs the arithmetic.
pub const PAR_MIN_FLOPS: usize = 1 << 16;

/// Number of worker threads parallel kernels may use (1 when the `parallel`
/// feature is off).
pub fn current_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Runs `kernel(i, row)` for every `row_len`-sized row of `out`, in parallel
/// when `big_enough` holds and more than one thread is available.
///
/// The kernel must depend only on `i` and data it reads through captured
/// shared references; rows are disjoint so no synchronization is needed.
pub(crate) fn for_each_row<F>(out: &mut [f64], row_len: usize, big_enough: bool, kernel: F)
where
    F: Fn(usize, &mut [f64]) + Sync + Send,
{
    debug_assert!(row_len > 0 && out.len() % row_len == 0);
    #[cfg(feature = "parallel")]
    {
        if big_enough && rayon::current_num_threads() > 1 && out.len() > row_len {
            out.par_chunks_mut(row_len).enumerate().for_each(|(i, row)| kernel(i, row));
            return;
        }
    }
    let _ = big_enough;
    for (i, row) in out.chunks_mut(row_len).enumerate() {
        kernel(i, row);
    }
}

/// Runs `kernel(first_row, block)` for every block of up to `rows_per_block`
/// consecutive `row_len`-sized rows of `out`, in parallel when `big_enough`
/// holds and more than one thread is available.
///
/// This is the fan-out used by the cache-blocked kernels: a task owns a small
/// row *block* (so the microkernel can reuse right-hand-side panels across the
/// rows it holds in registers/L1) instead of a single row. Each block is
/// produced by the identical serial instruction sequence regardless of thread
/// count, so the bit-identical contract of [`for_each_row`] carries over.
pub(crate) fn for_each_row_block<F>(
    out: &mut [f64],
    row_len: usize,
    rows_per_block: usize,
    big_enough: bool,
    kernel: F,
) where
    F: Fn(usize, &mut [f64]) + Sync + Send,
{
    debug_assert!(row_len > 0 && rows_per_block > 0 && out.len() % row_len == 0);
    let block_len = row_len * rows_per_block;
    #[cfg(feature = "parallel")]
    {
        if big_enough && rayon::current_num_threads() > 1 && out.len() > block_len {
            out.par_chunks_mut(block_len)
                .enumerate()
                .for_each(|(b, block)| kernel(b * rows_per_block, block));
            return;
        }
    }
    let _ = big_enough;
    for (b, block) in out.chunks_mut(block_len).enumerate() {
        kernel(b * rows_per_block, block);
    }
}
