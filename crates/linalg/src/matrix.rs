//! Dense, row-major, `f64` matrix.

use crate::{LinalgError, Result};
use serde::{Deserialize, Deserializer, Serialize};
use std::fmt;

/// A dense matrix of `f64` values stored in row-major order.
///
/// `Matrix` is the workhorse of the whole reproduction: fingerprint databases,
/// factor matrices, tomographic weight matrices and correlation matrices are all
/// `Matrix` values. The type keeps a single invariant — `data.len() == rows * cols` —
/// and every constructor enforces it (including deserialization).
///
/// All element access is bounds-checked; indexing with `m[(i, j)]` panics on
/// out-of-range indices like slice indexing does, while [`Matrix::get`] /
/// [`Matrix::set`] return [`LinalgError::IndexOutOfBounds`] instead.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Mirror of [`Matrix`] used to validate the row/col/data invariant when
/// deserializing from untrusted input (snapshot files, etc.).
#[derive(Deserialize)]
struct MatrixRepr {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl<'de> Deserialize<'de> for Matrix {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        let repr = MatrixRepr::deserialize(deserializer)?;
        Matrix::from_vec(repr.rows, repr.cols, repr.data).map_err(serde::de::Error::custom)
    }
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix with every element equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices. All rows must have equal length and at
    /// least one row must be given.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Err(LinalgError::EmptyInput { op: "Matrix::from_rows" });
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "Matrix::from_rows",
                    lhs: (1, cols),
                    rhs: (i, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Creates a matrix whose columns are the given equal-length slices.
    pub fn from_cols(cols: &[&[f64]]) -> Result<Self> {
        let Some(first) = cols.first() else {
            return Err(LinalgError::EmptyInput { op: "Matrix::from_cols" });
        };
        let rows = first.len();
        for (j, c) in cols.iter().enumerate() {
            if c.len() != rows {
                return Err(LinalgError::DimensionMismatch {
                    op: "Matrix::from_cols",
                    lhs: (rows, 1),
                    rhs: (c.len(), j),
                });
            }
        }
        Ok(Matrix::from_fn(rows, cols.len(), |i, j| cols[j][i]))
    }

    /// Creates a column vector (`n x 1`) from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// Creates a row vector (`1 x n`) from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    /// Creates a square matrix with `diag` on the diagonal and zeros elsewhere.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    // ------------------------------------------------------------------
    // Shape queries
    // ------------------------------------------------------------------

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` when `rows == cols`.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    // ------------------------------------------------------------------
    // Element access
    // ------------------------------------------------------------------

    /// Returns element `(i, j)`, or an error when out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                op: "Matrix::get(row)",
                index: i,
                bound: self.rows,
            });
        }
        if j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                op: "Matrix::get(col)",
                index: j,
                bound: self.cols,
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Sets element `(i, j)`, or returns an error when out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        if i >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                op: "Matrix::set(row)",
                index: i,
                bound: self.rows,
            });
        }
        if j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                op: "Matrix::set(col)",
                index: j,
                bound: self.cols,
            });
        }
        self.data[i * self.cols + j] = value;
        Ok(())
    }

    /// Borrows row `i` as a slice. Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice. Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector. Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self.data[i * self.cols + j]).collect()
    }

    /// Overwrites row `i` with `values`.
    pub fn set_row(&mut self, i: usize, values: &[f64]) -> Result<()> {
        if i >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                op: "Matrix::set_row",
                index: i,
                bound: self.rows,
            });
        }
        if values.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::set_row",
                lhs: (1, self.cols),
                rhs: (1, values.len()),
            });
        }
        self.row_mut(i).copy_from_slice(values);
        Ok(())
    }

    /// Overwrites column `j` with `values`.
    pub fn set_col(&mut self, j: usize, values: &[f64]) -> Result<()> {
        if j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                op: "Matrix::set_col",
                index: j,
                bound: self.cols,
            });
        }
        if values.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::set_col",
                lhs: (self.rows, 1),
                rhs: (values.len(), 1),
            });
        }
        for (i, &v) in values.iter().enumerate() {
            self.data[i * self.cols + j] = v;
        }
        Ok(())
    }

    /// Swaps rows `a` and `b` in place. Panics when out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Swaps columns `a` and `b` in place. Panics when out of bounds.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.cols && b < self.cols, "column index out of bounds");
        if a == b {
            return;
        }
        for i in 0..self.rows {
            self.data.swap(i * self.cols + a, i * self.cols + b);
        }
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterator over all elements in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.data.iter().copied()
    }

    /// Iterator over `(i, j, value)` triplets in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data.iter().enumerate().map(move |(k, &v)| (k / cols, k % cols, v))
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Returns a copy with only the selected columns, in the given order.
    /// Duplicate indices are allowed (the column is copied twice).
    pub fn select_cols(&self, indices: &[usize]) -> Result<Matrix> {
        for &j in indices {
            if j >= self.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "Matrix::select_cols",
                    index: j,
                    bound: self.cols,
                });
            }
        }
        Ok(Matrix::from_fn(self.rows, indices.len(), |i, k| self.data[i * self.cols + indices[k]]))
    }

    /// Returns a copy with only the selected rows, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        for &i in indices {
            if i >= self.rows {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "Matrix::select_rows",
                    index: i,
                    bound: self.rows,
                });
            }
        }
        Ok(Matrix::from_fn(indices.len(), self.cols, |k, j| self.data[indices[k] * self.cols + j]))
    }

    /// Copies the rectangular block `rows [r0, r1) x cols [c0, c1)`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Result<Matrix> {
        if r1 > self.rows || r0 > r1 {
            return Err(LinalgError::IndexOutOfBounds {
                op: "Matrix::submatrix(rows)",
                index: r1,
                bound: self.rows + 1,
            });
        }
        if c1 > self.cols || c0 > c1 {
            return Err(LinalgError::IndexOutOfBounds {
                op: "Matrix::submatrix(cols)",
                index: c1,
                bound: self.cols + 1,
            });
        }
        Ok(Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self.data[(r0 + i) * self.cols + (c0 + j)]))
    }

    /// Horizontally concatenates `self | other` (same row count required).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` on top of `other` (same column count required).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix { rows: self.rows + other.rows, cols: self.cols, data })
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two equal-shaped matrices elementwise with `f`.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::zip_map",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a * b)
    }

    // ------------------------------------------------------------------
    // Reductions and norms
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm `sqrt(sum of squares)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute element; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    }

    /// Sum of diagonal elements. Errors unless the matrix is square.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::trace", shape: self.shape() });
        }
        Ok((0..self.rows).map(|i| self.data[i * self.cols + i]).sum())
    }

    /// `true` when every element of `self` is within `tol` of `other`.
    /// Matrices of different shapes are never approximately equal.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// `true` when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    /// Renders small matrices fully; larger ones are abbreviated to their shape.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rows > 12 || self.cols > 12 {
            return write!(f, "Matrix({}x{})", self.rows, self.cols);
        }
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self.data[i * self.cols + j])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.iter().all(|v| v == 0.0));
        let f = Matrix::filled(2, 2, 7.5);
        assert!(f.iter().all(|v| v == 7.5));
    }

    #[test]
    fn identity_diagonal() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(matches!(err, Err(LinalgError::DimensionMismatch { .. })));
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::EmptyInput { .. })));
    }

    #[test]
    fn from_cols_builds_expected_layout() {
        let m = Matrix::from_cols(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn from_diag_places_values() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace().unwrap(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn get_set_bounds() {
        let mut m = sample();
        assert_eq!(m.get(1, 2).unwrap(), 6.0);
        assert!(m.get(2, 0).is_err());
        assert!(m.get(0, 3).is_err());
        m.set(0, 0, -1.0).unwrap();
        assert_eq!(m[(0, 0)], -1.0);
        assert!(m.set(5, 0, 0.0).is_err());
    }

    #[test]
    fn row_and_col_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn set_row_and_col() {
        let mut m = sample();
        m.set_row(0, &[9.0, 8.0, 7.0]).unwrap();
        assert_eq!(m.row(0), &[9.0, 8.0, 7.0]);
        m.set_col(1, &[0.5, 0.25]).unwrap();
        assert_eq!(m.col(1), vec![0.5, 0.25]);
        assert!(m.set_row(0, &[1.0]).is_err());
        assert!(m.set_col(9, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn swap_rows_and_cols() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[4.0, 5.0, 6.0]);
        m.swap_cols(0, 2);
        assert_eq!(m.row(0), &[6.0, 5.0, 4.0]);
        m.swap_rows(1, 1); // no-op must not panic
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn select_rows_cols_and_submatrix() {
        let m = sample();
        let c = m.select_cols(&[2, 0]).unwrap();
        assert_eq!(c.row(0), &[3.0, 1.0]);
        let r = m.select_rows(&[1]).unwrap();
        assert_eq!(r.shape(), (1, 3));
        let s = m.submatrix(0, 2, 1, 3).unwrap();
        assert_eq!(s.row(0), &[2.0, 3.0]);
        assert!(m.select_cols(&[3]).is_err());
        assert!(m.select_rows(&[2]).is_err());
        assert!(m.submatrix(0, 3, 0, 1).is_err());
    }

    #[test]
    fn stack_operations() {
        let m = sample();
        let h = m.hstack(&m).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let v = m.vstack(&m).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert!(m.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(m.vstack(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn map_and_hadamard() {
        let m = sample();
        let sq = m.map(|v| v * v);
        assert_eq!(sq[(1, 2)], 36.0);
        let h = m.hadamard(&m).unwrap();
        assert!(h.approx_eq(&sq, 0.0));
        assert!(m.hadamard(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn reductions() {
        let m = sample();
        assert_eq!(m.sum(), 21.0);
        assert!((m.mean() - 3.5).abs() < 1e-15);
        assert!((m.frobenius_norm() - 91.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.max_abs(), 6.0);
        assert!(m.trace().is_err());
        assert_eq!(Matrix::identity(3).trace().unwrap(), 3.0);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn approx_eq_respects_shape_and_tol() {
        let m = sample();
        let mut n = m.clone();
        n[(0, 0)] += 1e-12;
        assert!(m.approx_eq(&n, 1e-9));
        assert!(!m.approx_eq(&n, 1e-15));
        assert!(!m.approx_eq(&Matrix::zeros(2, 2), 1.0));
    }

    #[test]
    fn non_finite_detection() {
        let mut m = sample();
        assert!(!m.has_non_finite());
        m[(0, 1)] = f64::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn indexed_iter_and_rows_iter() {
        let m = sample();
        let items: Vec<_> = m.indexed_iter().collect();
        assert_eq!(items[4], (1, 1, 5.0));
        let rows: Vec<_> = m.rows_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic]
    fn index_panics_out_of_bounds() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn display_small_and_large() {
        let s = format!("{}", sample());
        assert!(s.contains("1.0000"));
        let big = Matrix::zeros(20, 20);
        assert_eq!(format!("{big}"), "Matrix(20x20)");
    }

    #[test]
    fn col_row_vectors() {
        let c = Matrix::col_vector(&[1.0, 2.0]);
        assert_eq!(c.shape(), (2, 1));
        let r = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!(r.shape(), (1, 2));
    }
}
