//! Plain-text matrix I/O (CSV) for interoperating with plotting tools.
//!
//! The figure binaries print tables to stdout; users who want to re-plot the
//! curves (e.g. with matplotlib or gnuplot) can dump any matrix — fingerprint
//! databases, reconstructions, CDF tables — as CSV and read it back.

use crate::{LinalgError, Matrix, Result};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes the matrix as CSV (one row per line, `,`-separated, full `f64`
/// round-trip precision).
pub fn write_csv(matrix: &Matrix, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path).map_err(|e| LinalgError::InvalidArgument {
        op: "io::write_csv",
        reason: format!("cannot create {}: {e}", path.display()),
    })?;
    let mut w = BufWriter::new(file);
    for i in 0..matrix.rows() {
        let line = matrix
            .row(i)
            .iter()
            .map(|v| {
                // RFC-compatible shortest round-trip formatting.
                let mut s = format!("{v}");
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN")
                {
                    s.push_str(".0");
                }
                s
            })
            .collect::<Vec<_>>()
            .join(",");
        writeln!(w, "{line}").map_err(|e| LinalgError::InvalidArgument {
            op: "io::write_csv",
            reason: format!("write failed: {e}"),
        })?;
    }
    w.flush().map_err(|e| LinalgError::InvalidArgument {
        op: "io::write_csv",
        reason: format!("flush failed: {e}"),
    })
}

/// Reads a matrix from CSV written by [`write_csv`] (or any rectangular
/// numeric CSV without a header).
pub fn read_csv(path: &Path) -> Result<Matrix> {
    let file = std::fs::File::open(path).map_err(|e| LinalgError::InvalidArgument {
        op: "io::read_csv",
        reason: format!("cannot open {}: {e}", path.display()),
    })?;
    let reader = BufReader::new(file);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| LinalgError::InvalidArgument {
            op: "io::read_csv",
            reason: format!("read failed at line {}: {e}", lineno + 1),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let row: Vec<f64> = line
            .split(',')
            .map(|cell| {
                cell.trim().parse::<f64>().map_err(|e| LinalgError::InvalidArgument {
                    op: "io::read_csv",
                    reason: format!("bad number {cell:?} at line {}: {e}", lineno + 1),
                })
            })
            .collect::<Result<_>>()?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(LinalgError::DimensionMismatch {
                    op: "io::read_csv",
                    lhs: (rows.len(), first.len()),
                    rhs: (lineno + 1, row.len()),
                });
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(LinalgError::EmptyInput { op: "io::read_csv" });
    }
    let cols = rows[0].len();
    let data: Vec<f64> = rows.into_iter().flatten().collect();
    let rows_n = data.len() / cols;
    Matrix::from_vec(rows_n, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("taf_linalg_io_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_values() {
        let m =
            Matrix::from_rows(&[&[1.5, -2.25, 0.0], &[1e-12, 7.0, -55.123456789012345]]).unwrap();
        let path = temp_path("round_trip");
        write_csv(&m, &path).unwrap();
        let back = read_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(back.approx_eq(&m, 0.0), "CSV round trip must be exact:\n{back}\nvs\n{m}");
    }

    #[test]
    fn integers_get_decimal_point() {
        let m = Matrix::from_rows(&[&[1.0, -3.0]]).unwrap();
        let path = temp_path("ints");
        write_csv(&m, &path).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(contents.trim(), "1.0,-3.0");
    }

    #[test]
    fn read_rejects_ragged_rows() {
        let path = temp_path("ragged");
        std::fs::write(&path, "1,2,3\n4,5\n").unwrap();
        let r = read_csv(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(r, Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn read_rejects_garbage_and_empty() {
        let path = temp_path("garbage");
        std::fs::write(&path, "1,banana\n").unwrap();
        let r = read_csv(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(r, Err(LinalgError::InvalidArgument { .. })));

        let path = temp_path("empty");
        std::fs::write(&path, "\n\n").unwrap();
        let r = read_csv(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(r, Err(LinalgError::EmptyInput { .. })));
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(read_csv(Path::new("/nonexistent/nope.csv")).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let path = temp_path("blanks");
        std::fs::write(&path, "1,2\n\n3,4\n").unwrap();
        let m = read_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 0)], 3.0);
    }
}
