//! LU decomposition with partial (row) pivoting.

use crate::{LinalgError, Matrix, Result};

/// Pivot magnitude below which a matrix is declared numerically singular,
/// *relative to the largest element of the input* — an absolute cutoff would
/// wrongly reject well-conditioned matrices with tiny overall scale.
const SINGULARITY_TOL: f64 = 1e-13;

/// LU decomposition of a square matrix with partial pivoting: `P·A = L·U`.
///
/// The factors are stored packed in a single matrix (unit lower triangle implicit).
/// Construct via [`Matrix::lu`], then call [`Lu::solve`], [`Lu::inverse`], or
/// [`Lu::determinant`].
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors: strictly-lower part holds L (unit diagonal implied),
    /// upper part holds U.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row index now in position `i`.
    perm: Vec<usize>,
    /// Number of row swaps performed (for the determinant sign).
    swaps: usize,
}

impl Matrix {
    /// Computes the partially pivoted LU decomposition of a square matrix.
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::Singular`] when a pivot underflows the singularity tolerance.
    pub fn lu(&self) -> Result<Lu> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::lu", shape: self.shape() });
        }
        let n = self.rows();
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;
        let pivot_floor = SINGULARITY_TOL * self.max_abs().max(f64::MIN_POSITIVE);

        for k in 0..n {
            // Partial pivoting: bring the largest |entry| of column k to the diagonal.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < pivot_floor {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                lu.swap_rows(p, k);
                perm.swap(p, k);
                swaps += 1;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let u_kj = lu[(k, j)];
                    lu[(i, j)] -= factor * u_kj;
                }
            }
        }
        Ok(Lu { lu, perm, swaps })
    }

    /// Solves `A·x = b` for square `A` via LU. Convenience wrapper over
    /// [`Matrix::lu`] + [`Lu::solve`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Computes `A⁻¹` via LU.
    pub fn inverse(&self) -> Result<Matrix> {
        self.lu()?.inverse()
    }

    /// Computes `det(A)` via LU. Returns `0.0` for numerically singular matrices.
    pub fn determinant(&self) -> Result<f64> {
        match self.lu() {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }
}

impl Lu {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "Lu::solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation: y = P·b
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit-lower L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                op: "Lu::solve_matrix",
                lhs: (self.dim(), self.dim()),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            out.set_col(j, &col)?;
        }
        Ok(out)
    }

    /// Computes the inverse of the factored matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix (product of U's diagonal, sign-adjusted
    /// for row swaps).
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = if self.swaps % 2 == 0 { 1.0 } else { -1.0 };
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_conditioned() -> Matrix {
        Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap()
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = well_conditioned();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true) {
            assert!((xi - ti).abs() < 1e-12, "{xi} vs {ti}");
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = well_conditioned();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn determinant_known_value() {
        // det = 2(-12-0) - 1(8-0) + 1(28-12) = -24 - 8 + 16 = -16
        let a = well_conditioned();
        assert!((a.determinant().unwrap() - (-16.0)).abs() < 1e-10);
    }

    #[test]
    fn determinant_of_singular_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.determinant().unwrap(), 0.0);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rectangular_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_checks_rhs_length() {
        let lu = well_conditioned().lu().unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = well_conditioned();
        let lu = a.lu().unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-10));
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // a[0][0] = 0 forces an immediate pivot swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
        assert!((a.determinant().unwrap() - (-1.0)).abs() < 1e-14);
    }

    #[test]
    fn identity_round_trip() {
        let i = Matrix::identity(5);
        assert!(i.inverse().unwrap().approx_eq(&i, 1e-14));
        assert!((i.determinant().unwrap() - 1.0).abs() < 1e-14);
    }
}
