//! Eigendecomposition of symmetric matrices via classical (cyclic) Jacobi.
//!
//! Used for the graph Laplacians of the continuity/similarity operators (spectral
//! diagnostics) and for covariance analysis in the simulator tests.

use crate::{LinalgError, Matrix, Result};

/// Maximum number of Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 100;

/// Off-diagonal Frobenius tolerance relative to the matrix norm.
const OFF_TOL: f64 = 1e-12;

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in non-increasing order; `vectors` holds the matching
/// orthonormal eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, non-increasing.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors (one per column, same order as `values`).
    pub vectors: Matrix,
}

impl Matrix {
    /// Computes the eigendecomposition of a symmetric matrix by cyclic Jacobi.
    ///
    /// Symmetry is assumed; only the upper triangle drives the rotations but the
    /// matrix is used as given. Returns [`LinalgError::NotSquare`] for rectangular
    /// input.
    pub fn eigh(&self) -> Result<SymmetricEigen> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::eigh", shape: self.shape() });
        }
        let n = self.rows();
        if n == 0 {
            return Err(LinalgError::EmptyInput { op: "Matrix::eigh" });
        }
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        let norm = self.frobenius_norm().max(f64::MIN_POSITIVE);

        let mut converged = false;
        for _ in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() <= OFF_TOL * norm {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() <= OFF_TOL * norm / (n as f64) {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;

                    // A ← Jᵀ·A·J applied symmetrically.
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        if !converged {
            return Err(LinalgError::NoConvergence {
                algorithm: "jacobi-eigh",
                iterations: MAX_SWEEPS,
            });
        }

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&x, &y| a[(y, y)].partial_cmp(&a[(x, x)]).expect("finite eigenvalues"));
        let values: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
        let vectors = v.select_cols(&order).expect("order indices valid");
        Ok(SymmetricEigen { values, vectors })
    }
}

impl SymmetricEigen {
    /// Rebuilds `V·diag(λ)·Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let vs = Matrix::from_fn(self.vectors.rows(), self.values.len(), |i, j| {
            self.vectors[(i, j)] * self.values[j]
        });
        vs.matmul_nt(&self.vectors).expect("eigen factor shapes agree")
    }

    /// Smallest eigenvalue (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Largest eigenvalue (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.values.first().copied()
    }

    /// `true` when all eigenvalues exceed `-tol` (positive semidefinite check).
    pub fn is_psd(&self, tol: f64) -> bool {
        self.values.iter().all(|&l| l >= -tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let e = a.eigh().unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = a.eigh().unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let b = Matrix::from_fn(4, 4, |i, j| ((i + 2 * j) % 5) as f64);
        let a = b.add(&b.transpose()).unwrap(); // symmetrize
        let e = a.eigh().unwrap();
        assert!(e.reconstruct().approx_eq(&a, 1e-8));
        assert!(e.vectors.gram().approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let b = Matrix::from_fn(5, 5, |i, j| (i * j) as f64 / 3.0);
        let a = b.add(&b.transpose()).unwrap();
        let e = a.eigh().unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace().unwrap()).abs() < 1e-8);
    }

    #[test]
    fn psd_detection() {
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        let psd = b.gram();
        assert!(psd.eigh().unwrap().is_psd(1e-10));
        let indef = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(!indef.eigh().unwrap().is_psd(1e-10));
    }

    #[test]
    fn min_max_accessors() {
        let a = Matrix::from_diag(&[-1.0, 2.0]);
        let e = a.eigh().unwrap();
        assert_eq!(e.max(), Some(2.0));
        assert_eq!(e.min(), Some(-1.0));
    }

    #[test]
    fn rejects_rectangular_and_empty() {
        assert!(Matrix::zeros(2, 3).eigh().is_err());
        assert!(Matrix::zeros(0, 0).eigh().is_err());
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let e = a.eigh().unwrap();
        for k in 0..3 {
            let vk = e.vectors.col(k);
            let av = a.matvec(&vk);
            for i in 0..3 {
                assert!((av[i] - e.values[k] * vk[i]).abs() < 1e-8);
            }
        }
    }
}
