//! Matrix decompositions.
//!
//! * [`lu`] — partially pivoted LU for general square solves, inverses and
//!   determinants.
//! * [`cholesky`] — SPD factorization; the inner solver of every LoLi-IR
//!   alternating-least-squares step and of ridge regression.
//! * [`qr`] — Householder QR, optionally with column pivoting. Column pivoting is
//!   how TafLoc selects its reference locations (the "maximum linearly independent"
//!   columns of the fingerprint matrix).
//! * [`svd`] — one-sided Jacobi singular value decomposition; used to initialize the
//!   LoLi-IR factors and by the singular-value-thresholding completion baseline.
//! * [`eigh`] — classical Jacobi eigendecomposition for symmetric matrices.

pub mod cholesky;
pub mod eigh;
pub mod lu;
pub mod qr;
pub mod svd;

pub use cholesky::Cholesky;
pub use eigh::SymmetricEigen;
pub use lu::Lu;
pub use qr::{ColPivQr, Qr};
pub use svd::Svd;
