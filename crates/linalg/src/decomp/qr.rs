//! Householder QR decomposition, with and without column pivoting.
//!
//! Column-pivoted QR is the numerical workhorse behind TafLoc's reference-location
//! selection: the first `n` pivot columns of the fingerprint matrix are its "most
//! linearly independent" columns, exactly the property the paper asks for.

use crate::par::{for_each_row, PAR_MIN_FLOPS};
use crate::{axpy_slice, dot, LinalgError, Matrix, Result};

/// Fixed row-block size for the reflector-application reduction. The partial
/// sums are always combined in block order, so results do not depend on the
/// thread count (the serial path walks the same blocks).
const REFLECT_ROW_BLOCK: usize = 64;

/// Thin QR decomposition `A = Q·R` with `Q` of shape `m x k`, `R` of shape `k x n`,
/// `k = min(m, n)`; `Q` has orthonormal columns and `R` is upper trapezoidal.
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

/// Column-pivoted QR decomposition `A·P = Q·R`.
///
/// The permutation orders columns by decreasing residual norm, so the leading
/// pivots identify a well-conditioned column subset — see
/// [`ColPivQr::pivots`] and [`ColPivQr::rank`].
#[derive(Debug, Clone)]
pub struct ColPivQr {
    q: Matrix,
    r: Matrix,
    /// `pivots[k]` = original column index moved to position `k`.
    pivots: Vec<usize>,
}

/// Shared Householder core: factors `work` in place (columns permuted when
/// `pivoting`), accumulating reflectors into an explicit thin Q.
fn householder(
    a: &Matrix,
    pivoting: bool,
) -> (Matrix /* q thin */, Matrix /* r */, Vec<usize> /* pivots */) {
    let (m, n) = a.shape();
    let k = m.min(n);
    let mut work = a.clone();
    let mut pivots: Vec<usize> = (0..n).collect();
    // Q accumulated as an m x m product applied to the identity; trimmed at the end.
    let mut q = Matrix::identity(m);

    // Running squared column norms for pivot selection (row-major traversal).
    let mut col_norms: Vec<f64> = vec![0.0; n];
    for row in work.rows_iter() {
        for (j, &x) in row.iter().enumerate() {
            col_norms[j] += x * x;
        }
    }
    // Scratch reused across steps by the panel update.
    let mut s = vec![0.0; n];
    let mut partials = vec![0.0; m.div_ceil(REFLECT_ROW_BLOCK) * n];

    for step in 0..k {
        if pivoting {
            // Pick the remaining column with the largest residual norm.
            let (best_j, _) = col_norms
                .iter()
                .enumerate()
                .skip(step)
                .fold((step, -1.0), |acc, (j, &v)| if v > acc.1 { (j, v) } else { acc });
            if best_j != step {
                work.swap_cols(best_j, step);
                pivots.swap(best_j, step);
                col_norms.swap(best_j, step);
            }
        }

        // Householder vector for column `step`, rows step..m.
        let mut v: Vec<f64> = (step..m).map(|i| work[(i, step)]).collect();
        let alpha = {
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if v[0] >= 0.0 {
                -norm
            } else {
                norm
            }
        };
        if alpha.abs() < f64::EPSILON {
            // Column already zero below the diagonal; nothing to reflect.
            continue;
        }
        v[0] -= alpha;
        let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
        if v_norm_sq < f64::EPSILON * f64::EPSILON {
            continue;
        }

        // Apply H = I - 2vvᵀ/(vᵀv) to the trailing block of `work`, row-major
        // and in two phases: s = vᵀ·W, then W -= (2/vᵀv)·v·s. Phase one reduces
        // over rows in fixed-size blocks whose partials are combined in block
        // order, so the result is identical whether the blocks ran serially or
        // on the pool.
        let rows = m - step;
        let width = n - step;
        let blocks = rows.div_ceil(REFLECT_ROW_BLOCK);
        let big = rows * width >= PAR_MIN_FLOPS;
        {
            let pbuf = &mut partials[..blocks * width];
            let work_ro = &work;
            let v_ro = &v;
            for_each_row(pbuf, width, big, |b, buf| {
                buf.fill(0.0);
                let r0 = step + b * REFLECT_ROW_BLOCK;
                let r1 = (r0 + REFLECT_ROW_BLOCK).min(m);
                for i in r0..r1 {
                    axpy_slice(buf, v_ro[i - step], &work_ro.row(i)[step..]);
                }
            });
            s[..width].fill(0.0);
            for b in 0..blocks {
                for (sj, pj) in s[..width].iter_mut().zip(&pbuf[b * width..(b + 1) * width]) {
                    *sj += pj;
                }
            }
        }
        {
            let s_ro = &s[..width];
            let v_ro = &v;
            for_each_row(work.as_mut_slice(), n, big, |i, row| {
                if i >= step {
                    axpy_slice(&mut row[step..], -2.0 * v_ro[i - step] / v_norm_sq, s_ro);
                }
            });
        }
        // Accumulate into Q (apply H on the right: Q ← Q·H). Each Q row is an
        // independent dot-and-axpy, so rows fan out directly.
        {
            let v_ro = &v;
            let big_q = m * rows >= PAR_MIN_FLOPS;
            for_each_row(q.as_mut_slice(), m, big_q, |_, q_row| {
                let d = dot(&q_row[step..m], v_ro);
                axpy_slice(&mut q_row[step..m], -2.0 * d / v_norm_sq, v_ro);
            });
        }
        // Update running column norms (cheap downdate + occasional refresh).
        if pivoting {
            for j in (step + 1)..n {
                let w = work[(step, j)];
                col_norms[j] = (col_norms[j] - w * w).max(0.0);
            }
        }
    }

    // Thin factors.
    let q_thin = q.submatrix(0, m, 0, k).expect("q trim in range");
    let mut r = Matrix::zeros(k, n);
    for i in 0..k {
        for j in i..n {
            r[(i, j)] = work[(i, j)];
        }
    }
    (q_thin, r, pivots)
}

impl Matrix {
    /// Computes the thin Householder QR decomposition `A = Q·R`.
    pub fn qr(&self) -> Result<Qr> {
        if self.is_empty() {
            return Err(LinalgError::EmptyInput { op: "Matrix::qr" });
        }
        let (q, r, _) = householder(self, false);
        Ok(Qr { q, r })
    }

    /// Computes the column-pivoted QR decomposition `A·P = Q·R`.
    pub fn col_piv_qr(&self) -> Result<ColPivQr> {
        if self.is_empty() {
            return Err(LinalgError::EmptyInput { op: "Matrix::col_piv_qr" });
        }
        let (q, r, pivots) = householder(self, true);
        Ok(ColPivQr { q, r, pivots })
    }
}

impl Qr {
    /// Orthonormal factor `Q` (`m x min(m,n)`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Upper-trapezoidal factor `R` (`min(m,n) x n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Least-squares solve `min ‖A·x − b‖₂` for a full-column-rank `A` (`m ≥ n`).
    ///
    /// Returns [`LinalgError::Singular`] when `R` has a (numerically) zero diagonal.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.q.rows();
        let n = self.r.cols();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "Qr::solve_least_squares",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        if m < n {
            return Err(LinalgError::InvalidArgument {
                op: "Qr::solve_least_squares",
                reason: format!("underdetermined system ({m} rows < {n} cols)"),
            });
        }
        let y = self.q.tr_matvec(b); // Qᵀ·b, length min(m,n) = n
        let mut x = y;
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.r[(i, j)] * x[j];
            }
            let rii = self.r[(i, i)];
            if rii.abs() < 1e-13 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = acc / rii;
        }
        Ok(x)
    }
}

impl ColPivQr {
    /// Orthonormal factor `Q`.
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Upper-trapezoidal factor `R` of the permuted matrix.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Pivot order: `pivots()[k]` is the original column index chosen at step `k`.
    /// The leading entries are the "most linearly independent" columns.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Numerical rank: number of diagonal entries of `R` with magnitude above
    /// `tol * |R[0,0]|`. Returns 0 for an all-zero matrix.
    pub fn rank(&self, tol: f64) -> usize {
        let k = self.r.rows().min(self.r.cols());
        if k == 0 {
            return 0;
        }
        let r00 = self.r[(0, 0)].abs();
        if r00 == 0.0 {
            return 0;
        }
        (0..k).take_while(|&i| self.r[(i, i)].abs() > tol * r00).count()
    }

    /// The first `k` pivot column indices — TafLoc's reference-location selection.
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] when `k` exceeds the column count.
    pub fn leading_columns(&self, k: usize) -> Result<Vec<usize>> {
        if k > self.pivots.len() {
            return Err(LinalgError::IndexOutOfBounds {
                op: "ColPivQr::leading_columns",
                index: k,
                bound: self.pivots.len() + 1,
            });
        }
        Ok(self.pivots[..k].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]).unwrap()
    }

    fn permutation_matrix(pivots: &[usize]) -> Matrix {
        let n = pivots.len();
        let mut p = Matrix::zeros(n, n);
        for (k, &j) in pivots.iter().enumerate() {
            p[(j, k)] = 1.0;
        }
        p
    }

    #[test]
    fn qr_reconstructs() {
        let a = tall();
        let qr = a.qr().unwrap();
        let back = qr.q().matmul(qr.r()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = tall();
        let qr = a.qr().unwrap();
        let qtq = qr.q().gram();
        assert!(qtq.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = tall();
        let qr = a.qr().unwrap();
        for i in 0..qr.r().rows() {
            for j in 0..i.min(qr.r().cols()) {
                assert!(qr.r()[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = tall();
        let b = [1.0, 0.0, 2.0, 1.0];
        let x = a.qr().unwrap().solve_least_squares(&b).unwrap();
        // Normal equations: AᵀA x = Aᵀ b
        let atb = a.tr_matvec(&b);
        let x_ne = a.gram().solve(&atb).unwrap();
        for (u, v) in x.iter().zip(&x_ne) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn least_squares_exact_on_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let x = a.qr().unwrap().solve_least_squares(&[4.0, 9.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_rejects_bad_shapes() {
        let a = tall();
        let qr = a.qr().unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
        let wide = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(wide.qr().unwrap().solve_least_squares(&[1.0]).is_err());
    }

    #[test]
    fn col_piv_reconstructs_with_permutation() {
        let a =
            Matrix::from_rows(&[&[1.0, 10.0, 2.0], &[0.5, -3.0, 1.0], &[2.0, 4.0, 0.0]]).unwrap();
        let f = a.col_piv_qr().unwrap();
        let ap = a.matmul(&permutation_matrix(f.pivots())).unwrap();
        let qr = f.q().matmul(f.r()).unwrap();
        assert!(qr.approx_eq(&ap, 1e-10));
    }

    #[test]
    fn col_piv_picks_dominant_column_first() {
        let a =
            Matrix::from_rows(&[&[0.1, 100.0, 1.0], &[0.2, 50.0, 0.0], &[0.1, 75.0, 2.0]]).unwrap();
        let f = a.col_piv_qr().unwrap();
        assert_eq!(f.pivots()[0], 1, "largest-norm column should be the first pivot");
    }

    #[test]
    fn rank_detects_deficiency() {
        // Third column = first + second -> rank 2.
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 2.0],
            &[2.0, 0.0, 2.0],
        ])
        .unwrap();
        let f = a.col_piv_qr().unwrap();
        assert_eq!(f.rank(1e-10), 2);
    }

    #[test]
    fn rank_of_zero_matrix_is_zero() {
        let f = Matrix::zeros(3, 3).col_piv_qr().unwrap();
        assert_eq!(f.rank(1e-10), 0);
    }

    #[test]
    fn full_rank_reported() {
        let f = tall().col_piv_qr().unwrap();
        assert_eq!(f.rank(1e-10), 2);
    }

    #[test]
    fn leading_columns_selection() {
        let f = tall().col_piv_qr().unwrap();
        let sel = f.leading_columns(1).unwrap();
        assert_eq!(sel.len(), 1);
        assert!(f.leading_columns(3).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Matrix::zeros(0, 0).qr().is_err());
        assert!(Matrix::zeros(0, 0).col_piv_qr().is_err());
    }

    #[test]
    fn wide_matrix_factors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let qr = a.qr().unwrap();
        assert_eq!(qr.q().shape(), (2, 2));
        assert_eq!(qr.r().shape(), (2, 3));
        let back = qr.q().matmul(qr.r()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }
}
