//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! Every alternating-least-squares step of LoLi-IR, every ridge regression, and the
//! correlated-shadowing sampler in the simulator solve small SPD systems — this is
//! the routine they all share.

use crate::{LinalgError, Matrix, Result};

/// Column-panel width of the blocked factorization in [`Matrix::cholesky_into`].
///
/// Eight columns keep the in-panel factorization register-friendly while the
/// panel update streams whole rows of `L`; it also matches the solver's rank
/// (`r ≈ 8`), so the hot `r×r` ridge systems take exactly one panel.
const CHOL_PANEL: usize = 8;

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Matrix {
    /// Computes the Cholesky factorization of a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `self` is read; symmetry of the upper triangle is
    /// assumed, not verified. Returns [`LinalgError::NotPositiveDefinite`] when a
    /// pivot is non-positive.
    pub fn cholesky(&self) -> Result<Cholesky> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::cholesky", shape: self.shape() });
        }
        let mut l = Matrix::zeros(self.rows(), self.rows());
        self.cholesky_into(&mut l)?;
        Ok(Cholesky { l })
    }

    /// Like [`Matrix::cholesky`], but writes the lower-triangular factor into a
    /// caller-provided `n x n` buffer without allocating. The strict upper
    /// triangle of `l` is zeroed.
    ///
    /// The factorization is blocked by columns: for each panel of
    /// [`CHOL_PANEL`] columns, a *panel update* first subtracts the
    /// contribution of all previously factored columns (`k < j0`) row by row —
    /// each row of `L` is loaded once as a contiguous slice and reused across
    /// the whole panel — and the small in-panel factorization then finishes
    /// with `k` in `j0..j`. Per element `(i, j)` the subtractions still run in
    /// strictly increasing `k` order (`0..j0` then `j0..j`), the identical
    /// floating-point sequence of the textbook unblocked loop, so the blocked
    /// factor is bit-identical to the unblocked one (pinned by a test below).
    pub fn cholesky_into(&self, l: &mut Matrix) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::cholesky", shape: self.shape() });
        }
        let n = self.rows();
        if l.shape() != (n, n) {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::cholesky_into",
                lhs: (n, n),
                rhs: l.shape(),
            });
        }
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + CHOL_PANEL).min(n);
            // Panel update: fold columns k < j0 into every panel entry on or
            // below the diagonal, streaming one row of L per outer step.
            if j0 > 0 {
                let data = l.as_mut_slice();
                for i in j0..n {
                    let (head, tail) = data.split_at_mut(i * n);
                    let (ri_done, ri_panel) = tail[..n].split_at_mut(j0);
                    for j in j0..j1.min(i + 1) {
                        let mut acc = self[(i, j)];
                        let rj_done = if j < i { &head[j * n..j * n + j0] } else { &ri_done[..] };
                        for (&lik, &ljk) in ri_done.iter().zip(rj_done) {
                            acc -= lik * ljk;
                        }
                        ri_panel[j - j0] = acc;
                    }
                }
            } else {
                for i in 0..n {
                    for j in 0..j1.min(i + 1) {
                        l[(i, j)] = self[(i, j)];
                    }
                }
            }
            // In-panel factorization: at most CHOL_PANEL lagging columns per
            // element, same increasing-k order as the unblocked loop.
            for j in j0..j1 {
                let mut diag = l[(j, j)];
                for k in j0..j {
                    diag -= l[(j, k)] * l[(j, k)];
                }
                if diag <= 0.0 || !diag.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { pivot: j, value: diag });
                }
                let ljj = diag.sqrt();
                l[(j, j)] = ljj;
                for i in (j + 1)..n {
                    let mut acc = l[(i, j)];
                    for k in j0..j {
                        acc -= l[(i, k)] * l[(j, k)];
                    }
                    l[(i, j)] = acc / ljj;
                }
            }
            j0 = j1;
        }
        // Zero the strict upper triangle (the factor may land in a reused
        // scratch buffer holding a previous factorization).
        for i in 0..n {
            for j in (i + 1)..n {
                l[(i, j)] = 0.0;
            }
        }
        Ok(())
    }
}

/// Solves `A·x = b` in place given a lower-triangular Cholesky factor of `A`
/// (as produced by [`Matrix::cholesky_into`]); `x` holds `b` on entry and the
/// solution on return. The allocation-free twin of [`Cholesky::solve`].
pub fn solve_in_place(l: &Matrix, x: &mut [f64]) -> Result<()> {
    let n = l.rows();
    if !l.is_square() || x.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cholesky::solve_in_place",
            lhs: l.shape(),
            rhs: (x.len(), 1),
        });
    }
    // Forward: L·y = b
    for i in 0..n {
        let mut acc = x[i];
        for j in 0..i {
            acc -= l[(i, j)] * x[j];
        }
        x[i] = acc / l[(i, i)];
    }
    // Backward: Lᵀ·x = y
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= l[(j, i)] * x[j];
        }
        x[i] = acc / l[(i, i)];
    }
    Ok(())
}

impl Cholesky {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` with the stored factor (`L·Lᵀ·x = b`).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "Cholesky::solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L·y = b
        let mut x = b.to_vec();
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        // Backward: Lᵀ·x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                op: "Cholesky::solve_matrix",
                lhs: (self.dim(), self.dim()),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            out.set_col(j, &self.solve(&b.col(j))?)?;
        }
        Ok(out)
    }

    /// Samples `L·z` where `z` is the provided standard-normal vector; the result has
    /// covariance `A`. Used by the correlated-shadowing sampler.
    pub fn correlate(&self, z: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if z.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "Cholesky::correlate",
                lhs: (n, n),
                rhs: (z.len(), 1),
            });
        }
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..=i {
                acc += self.l[(i, j)] * z[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Log-determinant of `A` (`2·Σ log L_ii`), useful for Gaussian likelihoods.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // A = Bᵀ·B + I is SPD for any B.
        let b =
            Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]).unwrap();
        let mut a = b.gram();
        a.add_diag(1.0).unwrap();
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let l = chol.factor();
        let back = l.matmul_nt(l).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd();
        let b = [1.0, -2.0, 0.5];
        let x_chol = a.cholesky().unwrap().solve(&b).unwrap();
        let x_lu = a.solve(&b).unwrap();
        for (c, l) in x_chol.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(a.cholesky(), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(Matrix::zeros(2, 3).cholesky(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_checks_length() {
        let chol = spd().cholesky().unwrap();
        assert!(chol.solve(&[1.0]).is_err());
        assert!(chol.solve_matrix(&Matrix::zeros(2, 2)).is_err());
        assert!(chol.correlate(&[1.0]).is_err());
    }

    #[test]
    fn solve_matrix_round_trip() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 1.0], &[3.0, -1.0]]).unwrap();
        let x = chol.solve_matrix(&b).unwrap();
        assert!(a.matmul(&x).unwrap().approx_eq(&b, 1e-9));
    }

    #[test]
    fn correlate_applies_factor() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let z = [1.0, 0.0, 0.0];
        let v = chol.correlate(&z).unwrap();
        // L·e1 is the first column of L.
        let l = chol.factor();
        for i in 0..3 {
            assert!((v[i] - l[(i, 0)]).abs() < 1e-14);
        }
    }

    #[test]
    fn log_det_matches_determinant() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let det = a.determinant().unwrap();
        assert!((chol.log_det() - det.ln()).abs() < 1e-9);
    }

    #[test]
    fn in_place_paths_match_allocating_ones() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let mut l = Matrix::zeros(3, 3);
        a.cholesky_into(&mut l).unwrap();
        assert!(l.approx_eq(chol.factor(), 0.0));

        let b = [1.0, -2.0, 0.5];
        let mut x = b;
        solve_in_place(&l, &mut x).unwrap();
        let reference = chol.solve(&b).unwrap();
        assert_eq!(x.to_vec(), reference);

        assert!(a.cholesky_into(&mut Matrix::zeros(2, 2)).is_err());
        assert!(solve_in_place(&l, &mut [1.0]).is_err());
    }

    #[test]
    fn cholesky_into_zeroes_stale_upper_triangle() {
        let a = spd();
        let mut l = Matrix::from_fn(3, 3, |_, _| 42.0);
        a.cholesky_into(&mut l).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    /// Textbook unblocked factorization — the bit-compat reference for the
    /// blocked `cholesky_into`. Same per-element subtraction order, no panels.
    fn unblocked_reference(a: &Matrix) -> Matrix {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut acc = a[(i, j)];
                for k in 0..j {
                    acc -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = acc / ljj;
            }
        }
        l
    }

    #[test]
    fn blocked_factor_bit_identical_to_unblocked_reference() {
        // Sizes below, at, straddling, and well past the panel width.
        for n in [1usize, 3, 7, 8, 9, 16, 17, 29, 40] {
            let b = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 23) as f64 * 0.13 - 1.1);
            let mut a = b.gram();
            a.add_diag(n as f64).unwrap();
            let mut l = Matrix::from_fn(n, n, |_, _| 42.0); // stale scratch
            a.cholesky_into(&mut l).unwrap();
            let reference = unblocked_reference(&a);
            for i in 0..n {
                for j in 0..=i {
                    assert_eq!(
                        l[(i, j)].to_bits(),
                        reference[(i, j)].to_bits(),
                        "n={n} element ({i},{j})"
                    );
                }
                for j in (i + 1)..n {
                    assert_eq!(l[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn blocked_factor_reports_same_indefinite_pivot() {
        // Indefinite matrix whose failure lands past the first panel.
        let n = 12;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 5) % 11) as f64 * 0.3);
        let mut a = b.gram();
        a.add_diag(1.0).unwrap();
        a[(10, 10)] = -50.0; // column 10 is in the second panel
        match a.cholesky() {
            Err(LinalgError::NotPositiveDefinite { pivot, .. }) => assert_eq!(pivot, 10),
            other => panic!("expected NotPositiveDefinite at pivot 10, got {other:?}"),
        }
    }

    #[test]
    fn identity_factor_is_identity() {
        let i = Matrix::identity(4);
        let chol = i.cholesky().unwrap();
        assert!(chol.factor().approx_eq(&i, 1e-14));
        assert_eq!(chol.log_det(), 0.0);
    }
}
