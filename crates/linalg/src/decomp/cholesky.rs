//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! Every alternating-least-squares step of LoLi-IR, every ridge regression, and the
//! correlated-shadowing sampler in the simulator solve small SPD systems — this is
//! the routine they all share.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Matrix {
    /// Computes the Cholesky factorization of a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `self` is read; symmetry of the upper triangle is
    /// assumed, not verified. Returns [`LinalgError::NotPositiveDefinite`] when a
    /// pivot is non-positive.
    pub fn cholesky(&self) -> Result<Cholesky> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::cholesky", shape: self.shape() });
        }
        let mut l = Matrix::zeros(self.rows(), self.rows());
        self.cholesky_into(&mut l)?;
        Ok(Cholesky { l })
    }

    /// Like [`Matrix::cholesky`], but writes the lower-triangular factor into a
    /// caller-provided `n x n` buffer without allocating. The strict upper
    /// triangle of `l` is zeroed.
    pub fn cholesky_into(&self, l: &mut Matrix) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::cholesky", shape: self.shape() });
        }
        let n = self.rows();
        if l.shape() != (n, n) {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::cholesky_into",
                lhs: (n, n),
                rhs: l.shape(),
            });
        }
        for j in 0..n {
            let mut diag = self[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: diag });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut acc = self[(i, j)];
                for k in 0..j {
                    acc -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = acc / ljj;
            }
            for i in 0..j {
                l[(i, j)] = 0.0;
            }
        }
        Ok(())
    }
}

/// Solves `A·x = b` in place given a lower-triangular Cholesky factor of `A`
/// (as produced by [`Matrix::cholesky_into`]); `x` holds `b` on entry and the
/// solution on return. The allocation-free twin of [`Cholesky::solve`].
pub fn solve_in_place(l: &Matrix, x: &mut [f64]) -> Result<()> {
    let n = l.rows();
    if !l.is_square() || x.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cholesky::solve_in_place",
            lhs: l.shape(),
            rhs: (x.len(), 1),
        });
    }
    // Forward: L·y = b
    for i in 0..n {
        let mut acc = x[i];
        for j in 0..i {
            acc -= l[(i, j)] * x[j];
        }
        x[i] = acc / l[(i, i)];
    }
    // Backward: Lᵀ·x = y
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= l[(j, i)] * x[j];
        }
        x[i] = acc / l[(i, i)];
    }
    Ok(())
}

impl Cholesky {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` with the stored factor (`L·Lᵀ·x = b`).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "Cholesky::solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L·y = b
        let mut x = b.to_vec();
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        // Backward: Lᵀ·x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                op: "Cholesky::solve_matrix",
                lhs: (self.dim(), self.dim()),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            out.set_col(j, &self.solve(&b.col(j))?)?;
        }
        Ok(out)
    }

    /// Samples `L·z` where `z` is the provided standard-normal vector; the result has
    /// covariance `A`. Used by the correlated-shadowing sampler.
    pub fn correlate(&self, z: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if z.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "Cholesky::correlate",
                lhs: (n, n),
                rhs: (z.len(), 1),
            });
        }
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..=i {
                acc += self.l[(i, j)] * z[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Log-determinant of `A` (`2·Σ log L_ii`), useful for Gaussian likelihoods.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // A = Bᵀ·B + I is SPD for any B.
        let b =
            Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]).unwrap();
        let mut a = b.gram();
        a.add_diag(1.0).unwrap();
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let l = chol.factor();
        let back = l.matmul_nt(l).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd();
        let b = [1.0, -2.0, 0.5];
        let x_chol = a.cholesky().unwrap().solve(&b).unwrap();
        let x_lu = a.solve(&b).unwrap();
        for (c, l) in x_chol.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(a.cholesky(), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(Matrix::zeros(2, 3).cholesky(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_checks_length() {
        let chol = spd().cholesky().unwrap();
        assert!(chol.solve(&[1.0]).is_err());
        assert!(chol.solve_matrix(&Matrix::zeros(2, 2)).is_err());
        assert!(chol.correlate(&[1.0]).is_err());
    }

    #[test]
    fn solve_matrix_round_trip() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 1.0], &[3.0, -1.0]]).unwrap();
        let x = chol.solve_matrix(&b).unwrap();
        assert!(a.matmul(&x).unwrap().approx_eq(&b, 1e-9));
    }

    #[test]
    fn correlate_applies_factor() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let z = [1.0, 0.0, 0.0];
        let v = chol.correlate(&z).unwrap();
        // L·e1 is the first column of L.
        let l = chol.factor();
        for i in 0..3 {
            assert!((v[i] - l[(i, 0)]).abs() < 1e-14);
        }
    }

    #[test]
    fn log_det_matches_determinant() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let det = a.determinant().unwrap();
        assert!((chol.log_det() - det.ln()).abs() < 1e-9);
    }

    #[test]
    fn in_place_paths_match_allocating_ones() {
        let a = spd();
        let chol = a.cholesky().unwrap();
        let mut l = Matrix::zeros(3, 3);
        a.cholesky_into(&mut l).unwrap();
        assert!(l.approx_eq(chol.factor(), 0.0));

        let b = [1.0, -2.0, 0.5];
        let mut x = b;
        solve_in_place(&l, &mut x).unwrap();
        let reference = chol.solve(&b).unwrap();
        assert_eq!(x.to_vec(), reference);

        assert!(a.cholesky_into(&mut Matrix::zeros(2, 2)).is_err());
        assert!(solve_in_place(&l, &mut [1.0]).is_err());
    }

    #[test]
    fn cholesky_into_zeroes_stale_upper_triangle() {
        let a = spd();
        let mut l = Matrix::from_fn(3, 3, |_, _| 42.0);
        a.cholesky_into(&mut l).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn identity_factor_is_identity() {
        let i = Matrix::identity(4);
        let chol = i.cholesky().unwrap();
        assert!(chol.factor().approx_eq(&i, 1e-14));
        assert_eq!(chol.log_det(), 0.0);
    }
}
