//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! One-sided Jacobi is slower asymptotically than Golub–Kahan bidiagonalization but
//! is simple, numerically robust, and more than fast enough at fingerprint-matrix
//! scale (tens of links x hundreds of grids). It is used to
//!
//! * initialize the LoLi-IR factors (`X̂ = L·Rᵀ` from the truncated SVD of the LRR
//!   estimate), and
//! * implement the singular-value-thresholding (SVT) matrix-completion baseline,
//!   i.e. the poster's pure rank-minimization formulation.

use crate::{LinalgError, Matrix, Result};

/// Maximum number of Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 100;

/// Relative off-diagonal tolerance for declaring a column pair orthogonal.
/// Loose enough that rotations driven purely by floating-point noise (which can
/// cycle forever on nearly rank-deficient matrices) are skipped, tight enough
/// for ~1e-9-accurate singular triplets.
const ORTHO_TOL: f64 = 1e-11;

/// Thin singular value decomposition `A = U·diag(σ)·Vᵀ`.
///
/// `U` is `m x k`, `σ` has length `k`, `V` is `n x k`, with `k = min(m, n)` and the
/// singular values sorted in non-increasing order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, one per column.
    pub u: Matrix,
    /// Singular values, non-increasing.
    pub sigma: Vec<f64>,
    /// Right singular vectors, one per column.
    pub v: Matrix,
}

impl Matrix {
    /// Computes the thin SVD by one-sided Jacobi.
    ///
    /// Returns [`LinalgError::EmptyInput`] for an empty matrix and
    /// [`LinalgError::NoConvergence`] if the sweep budget is exhausted (which does
    /// not happen for finite input at our scale, but is reported rather than
    /// silently accepted).
    pub fn svd(&self) -> Result<Svd> {
        if self.is_empty() {
            return Err(LinalgError::EmptyInput { op: "Matrix::svd" });
        }
        if self.rows() >= self.cols() {
            svd_tall(self)
        } else {
            // svd(A) from svd(Aᵀ): swap U and V.
            let Svd { u, sigma, v } = svd_tall(&self.transpose())?;
            Ok(Svd { u: v, sigma, v: u })
        }
    }
}

/// One-sided Jacobi on a tall (or square) matrix: orthogonalize the columns of a
/// working copy `W = A·V`; at convergence `W`'s columns are `σ_j·u_j`.
fn svd_tall(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    // Tall-skinny fast path: factor A = Q·R first (Householder QR streams the
    // matrix row-major and parallelizes its panel updates), then run Jacobi on
    // the small n x n triangle. Each Jacobi rotation touches n rows instead of
    // m, which shrinks the sweep cost from O(m·n²) to O(n³) per sweep, and
    // A = (Q·U_R)·Σ·Vᵀ recovers the thin factors exactly.
    if m >= 2 * n {
        let qr = a.qr()?;
        let inner = svd_tall(qr.r())?;
        let u = qr.q().matmul(&inner.u)?;
        return Ok(Svd { u, sigma: inner.sigma, v: inner.v });
    }
    let mut w = a.clone();
    let mut v = Matrix::identity(n);

    // Columns whose squared norm falls below this are numerically zero: rotating
    // them against healthy columns computes angles that underflow to zero (a
    // no-op), which would cycle forever. They correspond to zero singular values
    // and can be left alone.
    let norm_sq_floor = (f64::EPSILON * a.frobenius_norm()).powi(2);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                // Skip pairs that are already orthogonal relative to their size,
                // and pairs involving a (numerically) zero column — rotating
                // against noise cycles forever without improving the factors.
                let scale = (app * aqq).sqrt();
                if apq == 0.0
                    || apq.abs() <= ORTHO_TOL * scale
                    || app <= norm_sq_floor
                    || aqq <= norm_sq_floor
                {
                    continue;
                }
                // Jacobi rotation that zeroes the (p,q) entry of WᵀW.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                if t == 0.0 {
                    // Angle underflowed; the pair is as orthogonal as f64 allows.
                    continue;
                }
                rotated = true;
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = c * wp - s * wq;
                    w[(i, q)] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence { algorithm: "jacobi-svd", iterations: MAX_SWEEPS });
    }

    // Extract singular values and normalize U's columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> =
        (0..n).map(|j| (0..m).map(|i| w[(i, j)] * w[(i, j)]).sum::<f64>().sqrt()).collect();
    order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).expect("finite norms"));

    let mut u = Matrix::zeros(m, n);
    let mut vv = Matrix::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (k, &j) in order.iter().enumerate() {
        let s = norms[j];
        sigma.push(s);
        for i in 0..m {
            u[(i, k)] = if s > 0.0 { w[(i, j)] / s } else { 0.0 };
        }
        for i in 0..n {
            vv[(i, k)] = v[(i, j)];
        }
    }
    Ok(Svd { u, sigma, v: vv })
}

impl Svd {
    /// Number of singular values retained.
    pub fn len(&self) -> usize {
        self.sigma.len()
    }

    /// `true` when no singular values are stored.
    pub fn is_empty(&self) -> bool {
        self.sigma.is_empty()
    }

    /// Rebuilds `U·diag(σ)·Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let us = Matrix::from_fn(self.u.rows(), self.len(), |i, j| self.u[(i, j)] * self.sigma[j]);
        us.matmul_nt(&self.v).expect("svd factor shapes agree")
    }

    /// Keeps only the `k` largest singular triplets (clamped to the available count).
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.len());
        Svd {
            u: self.u.submatrix(0, self.u.rows(), 0, k).expect("in range"),
            sigma: self.sigma[..k].to_vec(),
            v: self.v.submatrix(0, self.v.rows(), 0, k).expect("in range"),
        }
    }

    /// Numerical rank relative to the largest singular value.
    pub fn rank(&self, tol: f64) -> usize {
        match self.sigma.first() {
            None => 0,
            Some(&0.0) => 0,
            Some(&s0) => self.sigma.iter().take_while(|&&s| s > tol * s0).count(),
        }
    }

    /// Nuclear norm `Σ σ_i` (the convex surrogate of rank the poster's
    /// `min rank(X̂)` formulation relaxes to).
    pub fn nuclear_norm(&self) -> f64 {
        self.sigma.iter().sum()
    }

    /// Applies soft-thresholding `σ_i ← max(σ_i − τ, 0)` and rebuilds the matrix —
    /// the shrinkage step of singular value thresholding.
    pub fn shrink(&self, tau: f64) -> Matrix {
        let kept: Vec<usize> = (0..self.len()).filter(|&i| self.sigma[i] > tau).collect();
        if kept.is_empty() {
            return Matrix::zeros(self.u.rows(), self.v.rows());
        }
        let us = Matrix::from_fn(self.u.rows(), kept.len(), |i, j| {
            self.u[(i, kept[j])] * (self.sigma[kept[j]] - tau)
        });
        let vs = self.v.select_cols(&kept).expect("kept indices in range");
        us.matmul_nt(&vs).expect("svd factor shapes agree")
    }

    /// Energy fraction captured by the top `k` singular values
    /// (`Σ_{i<k} σ_i² / Σ σ_i²`); `1.0` for a zero matrix.
    pub fn energy_fraction(&self, k: usize) -> f64 {
        let total: f64 = self.sigma.iter().map(|s| s * s).sum();
        if total == 0.0 {
            return 1.0;
        }
        let head: f64 = self.sigma.iter().take(k).map(|s| s * s).sum();
        head / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[3.0, 2.0, 2.0], &[2.0, 3.0, -2.0]]).unwrap()
    }

    #[test]
    fn known_singular_values() {
        // Classic example: singular values are 5 and 3.
        let svd = sample().svd().unwrap();
        assert!((svd.sigma[0] - 5.0).abs() < 1e-9, "{:?}", svd.sigma);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-9, "{:?}", svd.sigma);
    }

    #[test]
    fn reconstruction_tall_and_wide() {
        let wide = sample();
        assert!(wide.svd().unwrap().reconstruct().approx_eq(&wide, 1e-9));
        let tall = wide.transpose();
        assert!(tall.svd().unwrap().reconstruct().approx_eq(&tall, 1e-9));
    }

    #[test]
    fn factors_are_orthonormal() {
        let svd = sample().transpose().svd().unwrap();
        let k = svd.len();
        assert!(svd.u.gram().approx_eq(&Matrix::identity(k), 1e-9));
        assert!(svd.v.gram().approx_eq(&Matrix::identity(k), 1e-9));
    }

    #[test]
    fn sigma_sorted_non_increasing() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let svd = a.svd().unwrap();
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn rank_of_low_rank_matrix() {
        // rank-1: outer product.
        let a = crate::ops::outer(&[1.0, 2.0, 3.0], &[4.0, 5.0]);
        let svd = a.svd().unwrap();
        assert_eq!(svd.rank(1e-9), 1);
    }

    #[test]
    fn truncate_keeps_best_approximation() {
        let a =
            Matrix::from_rows(&[&[10.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 0.1]]).unwrap();
        let t = a.svd().unwrap().truncate(1);
        assert_eq!(t.len(), 1);
        let back = t.reconstruct();
        assert!((back[(0, 0)] - 10.0).abs() < 1e-9);
        assert!(back[(1, 1)].abs() < 1e-9);
    }

    #[test]
    fn truncate_clamps() {
        let svd = sample().svd().unwrap();
        assert_eq!(svd.truncate(99).len(), 2);
    }

    #[test]
    fn nuclear_norm_and_energy() {
        let a = Matrix::from_diag(&[3.0, 4.0]);
        let svd = a.svd().unwrap();
        assert!((svd.nuclear_norm() - 7.0).abs() < 1e-9);
        assert!((svd.energy_fraction(1) - 16.0 / 25.0).abs() < 1e-9);
        assert!((svd.energy_fraction(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shrink_soft_thresholds() {
        let a = Matrix::from_diag(&[5.0, 1.0]);
        let shrunk = a.svd().unwrap().shrink(2.0);
        // 5 -> 3, 1 -> dropped.
        let svd2 = shrunk.svd().unwrap();
        assert!((svd2.sigma[0] - 3.0).abs() < 1e-9);
        assert!(svd2.sigma[1].abs() < 1e-9);
    }

    #[test]
    fn shrink_everything_gives_zero() {
        let z = sample().svd().unwrap().shrink(100.0);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.max_abs(), 0.0);
    }

    #[test]
    fn zero_matrix_svd() {
        let svd = Matrix::zeros(3, 2).svd().unwrap();
        assert_eq!(svd.rank(1e-9), 0);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
        assert!(svd.reconstruct().approx_eq(&Matrix::zeros(3, 2), 1e-12));
        assert_eq!(svd.energy_fraction(1), 1.0);
    }

    #[test]
    fn empty_rejected() {
        assert!(Matrix::zeros(0, 0).svd().is_err());
    }

    #[test]
    fn tall_skinny_qr_path_is_a_valid_svd() {
        // 40x5 triggers the QR-preprocessing branch (m >= 2n).
        let a = Matrix::from_fn(40, 5, |i, j| ((i * 13 + j * 7) % 17) as f64 / 17.0 - 0.4);
        let svd = a.svd().unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-9));
        assert!(svd.u.gram().approx_eq(&Matrix::identity(5), 1e-9));
        assert!(svd.v.gram().approx_eq(&Matrix::identity(5), 1e-9));
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // Singular values must agree with the direct (square-ish) path on AᵀA.
        let sum_sq: f64 = svd.sigma.iter().map(|s| s * s).sum();
        assert!((a.gram().trace().unwrap() - sum_sq).abs() < 1e-8);
    }

    #[test]
    fn tall_skinny_rank_deficient() {
        // Two identical columns; m >= 2n path with rank 1.
        let a = Matrix::from_fn(12, 2, |i, _| i as f64 + 1.0);
        let svd = a.svd().unwrap();
        assert_eq!(svd.rank(1e-9), 1);
        assert!(svd.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        let a = Matrix::from_fn(5, 3, |i, j| (i as f64 - j as f64) / (1.0 + i as f64 + j as f64));
        let svd = a.svd().unwrap();
        let gram = a.gram();
        // σ_i² must be eigenvalues of AᵀA; check via the characteristic property
        // tr(AᵀA) = Σ σ_i².
        let sum_sq: f64 = svd.sigma.iter().map(|s| s * s).sum();
        assert!((gram.trace().unwrap() - sum_sq).abs() < 1e-9);
    }
}
