//! Higher-level matrix utilities built on the decompositions: pseudo-inverse,
//! triangular solves, and condition-number estimation.

use crate::{LinalgError, Matrix, Result};

impl Matrix {
    /// Moore-Penrose pseudo-inverse via the SVD, truncating singular values
    /// below `tol * σ_max`.
    ///
    /// For a full-rank square matrix this agrees with [`Matrix::inverse`]; for
    /// rank-deficient or rectangular input it yields the minimum-norm
    /// least-squares inverse.
    pub fn pinv(&self, tol: f64) -> Result<Matrix> {
        if !(tol >= 0.0) {
            return Err(LinalgError::InvalidArgument {
                op: "Matrix::pinv",
                reason: format!("tol must be >= 0, got {tol}"),
            });
        }
        let svd = self.svd()?;
        let smax = svd.sigma.first().copied().unwrap_or(0.0);
        let cutoff = tol * smax;
        // pinv = V·diag(1/σ)·Uᵀ over the retained triplets.
        let kept: Vec<usize> =
            (0..svd.len()).filter(|&i| svd.sigma[i] > cutoff && svd.sigma[i] > 0.0).collect();
        if kept.is_empty() {
            return Ok(Matrix::zeros(self.cols(), self.rows()));
        }
        let vs = Matrix::from_fn(svd.v.rows(), kept.len(), |i, k| {
            svd.v[(i, kept[k])] / svd.sigma[kept[k]]
        });
        let us = svd.u.select_cols(&kept)?;
        vs.matmul_nt(&us)
    }

    /// Solves `L·x = b` for a lower-triangular `L` by forward substitution.
    /// Only the lower triangle is read.
    pub fn solve_lower_triangular(&self, b: &[f64]) -> Result<Vec<f64>> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                op: "solve_lower_triangular",
                shape: self.shape(),
            });
        }
        let n = self.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve_lower_triangular",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let mut x = b.to_vec();
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self[(i, j)] * x[j];
            }
            let d = self[(i, i)];
            if d.abs() < 1e-300 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = acc / d;
        }
        Ok(x)
    }

    /// Solves `U·x = b` for an upper-triangular `U` by back substitution.
    /// Only the upper triangle is read.
    pub fn solve_upper_triangular(&self, b: &[f64]) -> Result<Vec<f64>> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                op: "solve_upper_triangular",
                shape: self.shape(),
            });
        }
        let n = self.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve_upper_triangular",
                lhs: self.shape(),
                rhs: (b.len(), 1),
            });
        }
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self[(i, j)] * x[j];
            }
            let d = self[(i, i)];
            if d.abs() < 1e-300 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = acc / d;
        }
        Ok(x)
    }

    /// Spectral condition number `σ_max / σ_min` (infinite for singular input).
    pub fn condition_number(&self) -> Result<f64> {
        let svd = self.svd()?;
        let smax = svd.sigma.first().copied().unwrap_or(0.0);
        let smin = svd.sigma.last().copied().unwrap_or(0.0);
        if smin == 0.0 {
            Ok(f64::INFINITY)
        } else {
            Ok(smax / smin)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinv_of_invertible_matches_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let p = a.pinv(1e-12).unwrap();
        let inv = a.inverse().unwrap();
        assert!(p.approx_eq(&inv, 1e-9));
    }

    #[test]
    fn pinv_satisfies_moore_penrose_identities() {
        // Rectangular, full column rank.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let p = a.pinv(1e-12).unwrap();
        assert_eq!(p.shape(), (2, 3));
        // A·A⁺·A = A
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.approx_eq(&a, 1e-9));
        // A⁺·A·A⁺ = A⁺
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(pap.approx_eq(&p, 1e-9));
        // A⁺·A symmetric.
        let pa = p.matmul(&a).unwrap();
        assert!(pa.approx_eq(&pa.transpose(), 1e-9));
    }

    #[test]
    fn pinv_handles_rank_deficiency() {
        // Rank-1 matrix.
        let a = crate::ops::outer(&[1.0, 2.0], &[3.0, 6.0]);
        let p = a.pinv(1e-10).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.approx_eq(&a, 1e-9));
    }

    #[test]
    fn pinv_of_zero_matrix_is_zero() {
        let z = Matrix::zeros(2, 3);
        let p = z.pinv(1e-10).unwrap();
        assert_eq!(p.shape(), (3, 2));
        assert_eq!(p.max_abs(), 0.0);
    }

    #[test]
    fn pinv_rejects_bad_tol() {
        let a = Matrix::identity(2);
        assert!(a.pinv(f64::NAN).is_err());
        assert!(a.pinv(-1.0).is_err());
    }

    #[test]
    fn lower_triangular_solve() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]).unwrap();
        let x = l.solve_lower_triangular(&[4.0, 7.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - (7.0 - 2.0) / 3.0).abs() < 1e-12);
        assert!(l.solve_lower_triangular(&[1.0]).is_err());
        assert!(Matrix::zeros(2, 3).solve_lower_triangular(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn upper_triangular_solve() {
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]).unwrap();
        let x = u.solve_upper_triangular(&[5.0, 8.0]).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn triangular_solves_reject_singular() {
        let l = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap();
        assert!(matches!(l.solve_lower_triangular(&[1.0, 1.0]), Err(LinalgError::Singular { .. })));
        let u = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]).unwrap();
        assert!(matches!(u.solve_upper_triangular(&[1.0, 1.0]), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn triangular_only_reads_its_triangle() {
        // Garbage in the unused triangle must not affect the result.
        let l = Matrix::from_rows(&[&[2.0, 999.0], &[1.0, 3.0]]).unwrap();
        let x = l.solve_lower_triangular(&[4.0, 7.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn condition_number_values() {
        let i = Matrix::identity(3);
        assert!((i.condition_number().unwrap() - 1.0).abs() < 1e-9);
        let d = Matrix::from_diag(&[100.0, 1.0]);
        assert!((d.condition_number().unwrap() - 100.0).abs() < 1e-6);
        let singular = crate::ops::outer(&[1.0, 1.0], &[1.0, 1.0]);
        assert!(singular.condition_number().unwrap().is_infinite());
    }
}
