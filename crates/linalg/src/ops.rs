//! Matrix arithmetic: products, sums, scaling, and the operator overloads.
//!
//! The three dense products (`matmul`, `matmul_nt`, `matmul_tn`) share one
//! structure: every output row is an independent accumulation over rows of the
//! operands, built from the chunked [`dot`]/[`axpy_slice`] helpers. Above
//! [`crate::par::PAR_MIN_FLOPS`] worth of work the rows are fanned out across
//! the rayon pool (feature `parallel`); since each row is produced by the same
//! serial kernel either way, parallel and serial results are bit-identical.
//! Fingerprint matrices are dense, so there is deliberately no zero-skip branch
//! here — sparse operands should go through `Csr::matmul_dense`.

use crate::par::{for_each_row, PAR_MIN_FLOPS};
use crate::{LinalgError, Matrix, Result};

impl Matrix {
    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols() != other.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        let big = m * k * n >= PAR_MIN_FLOPS;
        for_each_row(out.as_mut_slice(), n.max(1), big, |i, o_row| {
            let a_row = self.row(i);
            for (p, &a_ip) in a_row.iter().enumerate() {
                axpy_slice(o_row, a_ip, other.row(p));
            }
        });
        Ok(out)
    }

    /// Product with the transpose of the right operand: `self * otherᵀ`.
    ///
    /// Both operands are traversed row-wise, which makes this noticeably faster than
    /// `self.matmul(&other.transpose())` and avoids the intermediate allocation.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows(), other.rows());
        self.matmul_nt_into(other, &mut out)?;
        Ok(out)
    }

    /// Like [`Matrix::matmul_nt`], but writes into a caller-provided output
    /// matrix of shape `(self.rows, other.rows)` without allocating.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols() != other.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_nt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        if out.shape() != (m, n) {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_nt_into",
                lhs: (m, n),
                rhs: out.shape(),
            });
        }
        let big = m * k * n >= PAR_MIN_FLOPS;
        for_each_row(out.as_mut_slice(), n.max(1), big, |i, o_row| {
            let a_row = self.row(i);
            for (j, o) in o_row.iter_mut().enumerate() {
                *o = dot(a_row, other.row(j));
            }
        });
        Ok(())
    }

    /// Product with the transpose of the left operand: `selfᵀ * other`.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.cols(), other.cols());
        self.matmul_tn_into(other, &mut out)?;
        Ok(out)
    }

    /// Like [`Matrix::matmul_tn`], but writes into a caller-provided output
    /// matrix of shape `(self.cols, other.cols)` without allocating.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows() != other.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_tn",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        if out.shape() != (m, n) {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_tn_into",
                lhs: (m, n),
                rhs: out.shape(),
            });
        }
        let big = k * m * n >= PAR_MIN_FLOPS;
        for_each_row(out.as_mut_slice(), n.max(1), big, |i, o_row| {
            o_row.fill(0.0);
            for p in 0..k {
                axpy_slice(o_row, self[(p, i)], other.row(p));
            }
        });
        Ok(())
    }

    /// Gram matrix `selfᵀ * self` (always square, `cols x cols`).
    pub fn gram(&self) -> Matrix {
        self.matmul_tn(self).expect("gram: shapes always agree")
    }

    /// Like [`Matrix::gram`], but writes into a caller-provided `cols x cols`
    /// output matrix without allocating.
    pub fn gram_into(&self, out: &mut Matrix) -> Result<()> {
        self.matmul_tn_into(self, out)
    }

    /// Matrix-vector product `self * v`. Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.cols(),
            "matvec: vector length {} != cols {}",
            v.len(),
            self.cols()
        );
        self.rows_iter().map(|row| dot(row, v)).collect()
    }

    /// Transposed matrix-vector product `selfᵀ * v`. Panics if `v.len() != rows`.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.rows(),
            "tr_matvec: vector length {} != rows {}",
            v.len(),
            self.rows()
        );
        let mut out = vec![0.0; self.cols()];
        for (i, row) in self.rows_iter().enumerate() {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (o, &r) in out.iter_mut().zip(row) {
                *o += vi * r;
            }
        }
        out
    }

    /// Elementwise sum. Errors on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference. Errors on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Returns `self * s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place `self += alpha * other`. Errors on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Adds `value` to each diagonal element in place. Errors unless square.
    pub fn add_diag(&mut self, value: f64) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::add_diag", shape: self.shape() });
        }
        let n = self.rows();
        for i in 0..n {
            self[(i, i)] += value;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices. Panics on length mismatch.
///
/// Accumulates in four independent lanes so the compiler can keep the partial
/// sums in registers; the lane structure (and therefore the rounding) is fixed
/// regardless of thread count.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4 * 4;
    for (ca, cb) in a[..chunks].chunks_exact(4).zip(b[..chunks].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// In-place `out += alpha * src` over equal-length slices, unrolled to match
/// [`dot`]'s chunking. Panics on length mismatch.
pub fn axpy_slice(out: &mut [f64], alpha: f64, src: &[f64]) {
    assert_eq!(out.len(), src.len(), "axpy: length mismatch {} vs {}", out.len(), src.len());
    let chunks = out.len() / 4 * 4;
    for (co, cs) in out[..chunks].chunks_exact_mut(4).zip(src[..chunks].chunks_exact(4)) {
        co[0] += alpha * cs[0];
        co[1] += alpha * cs[1];
        co[2] += alpha * cs[2];
        co[3] += alpha * cs[3];
    }
    for (o, s) in out[chunks..].iter_mut().zip(&src[chunks..]) {
        *o += alpha * s;
    }
}

/// Euclidean norm of a slice.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Outer product `a * bᵀ` of two slices.
pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
    Matrix::from_fn(a.len(), b.len(), |i, j| a[i] * b[j])
}

impl std::ops::Add for &Matrix {
    type Output = Matrix;
    /// Panics on shape mismatch; use [`Matrix::add`] for a fallible version.
    fn add(self, rhs: &Matrix) -> Matrix {
        Matrix::add(self, rhs).expect("Matrix + Matrix: shape mismatch")
    }
}

impl std::ops::Sub for &Matrix {
    type Output = Matrix;
    /// Panics on shape mismatch; use [`Matrix::sub`] for a fallible version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        Matrix::sub(self, rhs).expect("Matrix - Matrix: shape mismatch")
    }
}

impl std::ops::Mul for &Matrix {
    type Output = Matrix;
    /// Panics on shape mismatch; use [`Matrix::matmul`] for a fallible version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        Matrix::matmul(self, rhs).expect("Matrix * Matrix: shape mismatch")
    }
}

impl std::ops::Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl std::ops::Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b()).unwrap();
        let expected =
            Matrix::from_rows(&[&[27.0, 30.0, 33.0], &[61.0, 68.0, 75.0], &[95.0, 106.0, 117.0]])
                .unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_shape_check() {
        assert!(a().matmul(&a()).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = a();
        let i = Matrix::identity(2);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let m = a(); // 3x2
        let n = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.0, 3.0], &[4.0, 4.0]]).unwrap(); // 4x2
        let fast = m.matmul_nt(&n).unwrap();
        let slow = m.matmul(&n.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(m.matmul_nt(&b()).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let m = a(); // 3x2
        let n = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap(); // 3x1
        let fast = m.matmul_tn(&n).unwrap();
        let slow = m.transpose().matmul(&n).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(m.matmul_tn(&b()).is_err());
    }

    #[test]
    fn gram_is_symmetric() {
        let g = a().gram();
        assert_eq!(g.shape(), (2, 2));
        assert!((g[(0, 1)] - g[(1, 0)]).abs() < 1e-12);
        assert!((g[(0, 0)] - 35.0).abs() < 1e-12); // 1 + 9 + 25
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let m = a();
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.tr_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    #[should_panic]
    fn matvec_length_checked() {
        a().matvec(&[1.0]);
    }

    #[test]
    fn add_sub_scale_axpy() {
        let m = a();
        let s = m.add(&m).unwrap();
        assert!(s.approx_eq(&m.scale(2.0), 1e-12));
        let d = s.sub(&m).unwrap();
        assert!(d.approx_eq(&m, 1e-12));
        let mut x = m.clone();
        x.axpy(-1.0, &m).unwrap();
        assert_eq!(x.max_abs(), 0.0);
        assert!(x.axpy(1.0, &Matrix::zeros(1, 1)).is_err());
        assert!(m.add(&Matrix::zeros(1, 1)).is_err());
        assert!(m.sub(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn add_diag() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diag(2.5).unwrap();
        assert!(m.approx_eq(&Matrix::from_diag(&[2.5, 2.5, 2.5]), 0.0));
        let mut r = Matrix::zeros(2, 3);
        assert!(r.add_diag(1.0).is_err());
    }

    #[test]
    fn free_functions() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let o = outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(o[(1, 0)], 6.0);
    }

    #[test]
    fn operator_overloads() {
        let m = a();
        let sum = &m + &m;
        assert!(sum.approx_eq(&m.scale(2.0), 1e-12));
        let diff = &sum - &m;
        assert!(diff.approx_eq(&m, 1e-12));
        let prod = &m * &b();
        assert_eq!(prod.shape(), (3, 3));
        let scaled = &m * 2.0;
        assert!(scaled.approx_eq(&sum, 1e-12));
        let neg = -&m;
        assert!((&neg + &m).max_abs() < 1e-15);
    }

    #[test]
    fn matmul_with_zero_blocks() {
        let sparse_ish = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let c = sparse_ish.matmul(&Matrix::identity(2)).unwrap();
        assert!(c.approx_eq(&sparse_ish, 0.0));
    }

    #[test]
    fn into_variants_match_and_check_shapes() {
        let m = a(); // 3x2
        let n = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.0, 3.0], &[4.0, 4.0]]).unwrap();
        let mut out = Matrix::zeros(3, 4);
        m.matmul_nt_into(&n, &mut out).unwrap();
        assert!(out.approx_eq(&m.matmul_nt(&n).unwrap(), 0.0));
        assert!(m.matmul_nt_into(&n, &mut Matrix::zeros(2, 2)).is_err());

        let mut g = Matrix::zeros(2, 2);
        m.gram_into(&mut g).unwrap();
        assert!(g.approx_eq(&m.gram(), 0.0));
        assert!(m.gram_into(&mut Matrix::zeros(3, 3)).is_err());

        let mut tn = Matrix::zeros(2, 2);
        m.matmul_tn_into(&a(), &mut tn).unwrap();
        assert!(tn.approx_eq(&m.matmul_tn(&a()).unwrap(), 0.0));
    }

    #[test]
    fn axpy_slice_matches_scalar_loop() {
        let src: Vec<f64> = (0..11).map(|i| i as f64 * 0.3 - 1.0).collect();
        let mut fast = vec![1.0; 11];
        let mut slow = fast.clone();
        axpy_slice(&mut fast, -0.7, &src);
        for (o, s) in slow.iter_mut().zip(&src) {
            *o += -0.7 * s;
        }
        assert_eq!(fast, slow);
    }
}
