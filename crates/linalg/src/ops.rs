//! Matrix arithmetic: products, sums, scaling, and the operator overloads.
//!
//! The three dense products (`matmul`, `matmul_nt`, `matmul_tn`) run
//! cache-blocked microkernels: output rows are grouped into small blocks (sizes
//! from the compile-time [`TUNING`] table) so every right-hand-side row brought
//! into L1 is reused across the whole block, and `matmul_nt` additionally
//! register-tiles 2×2 output tiles over the shared dimension. Above
//! [`crate::par::PAR_MIN_FLOPS`] worth of work the row blocks are fanned out
//! across the rayon pool (feature `parallel`); each output element is still
//! accumulated by the exact serial sequence of the unblocked kernels (the
//! shared-dimension order per element never changes, and the tiled kernel
//! replicates [`dot`]'s four-lane reduction), so blocked, serial, and parallel
//! results are all bit-identical. Fingerprint matrices are dense, so there is
//! deliberately no zero-skip branch here — sparse operands should go through
//! `Csr::matmul_dense`.

use crate::par::{for_each_row_block, PAR_MIN_FLOPS};
use crate::{LinalgError, Matrix, Result};

/// Compile-time kernel tuning table: `(k ceiling, rows per block)` — the first
/// row whose ceiling covers the shared dimension `k` wins.
///
/// The row block is the unit of right-hand-side reuse: one B row loaded into
/// L1 feeds `mr` output rows, so larger blocks cut memory traffic — until the
/// block of output rows itself falls out of L1. Short shared dimensions mean
/// cheap passes over B, so they can afford wide blocks; long ones keep the
/// block modest so `mr` output rows plus one operand row stay resident. The
/// numbers are coarse on purpose: for the shapes this crate sees (ranks ≈ 8,
/// panels ≤ a few hundred) being within 2× of cache capacity is what matters.
const TUNING: &[(usize, usize)] = &[(32, 8), (256, 6), (usize::MAX, 4)];

/// Output rows per microkernel block for a product with shared dimension `k`.
fn rows_per_block(k: usize) -> usize {
    for &(ceiling, mr) in TUNING {
        if k <= ceiling {
            return mr;
        }
    }
    unreachable!("TUNING ends with a usize::MAX ceiling")
}

impl Matrix {
    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows(), other.cols());
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Like [`Matrix::matmul`], but writes into a caller-provided output
    /// matrix of shape `(self.rows, other.cols)` without allocating.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols() != other.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        if out.shape() != (m, n) {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_into",
                lhs: (m, n),
                rhs: out.shape(),
            });
        }
        let big = m * k * n >= PAR_MIN_FLOPS;
        let row_len = n.max(1);
        for_each_row_block(out.as_mut_slice(), row_len, rows_per_block(k), big, |i0, block| {
            block.fill(0.0);
            // B-row reuse: each `other` row is loaded once and feeds every row
            // of the block; per output element the accumulation still walks
            // `p` in increasing order, exactly like the unblocked kernel.
            for p in 0..k {
                let b_row = other.row(p);
                for (r, o_row) in block.chunks_mut(row_len).enumerate() {
                    axpy_slice(o_row, self.row(i0 + r)[p], b_row);
                }
            }
        });
        Ok(())
    }

    /// Product with the transpose of the right operand: `self * otherᵀ`.
    ///
    /// Both operands are traversed row-wise, which makes this noticeably faster than
    /// `self.matmul(&other.transpose())` and avoids the intermediate allocation.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows(), other.rows());
        self.matmul_nt_into(other, &mut out)?;
        Ok(out)
    }

    /// Like [`Matrix::matmul_nt`], but writes into a caller-provided output
    /// matrix of shape `(self.rows, other.rows)` without allocating.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols() != other.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_nt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        if out.shape() != (m, n) {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_nt_into",
                lhs: (m, n),
                rhs: out.shape(),
            });
        }
        let big = m * k * n >= PAR_MIN_FLOPS;
        let row_len = n.max(1);
        for_each_row_block(out.as_mut_slice(), row_len, rows_per_block(k), big, |i0, block| {
            // 2×2 register tiles inside the row block: four dot products share
            // their operand loads, and the B rows of a tile stay hot across
            // the block's rows. Each element is still the exact [`dot`]
            // reduction, so tiling cannot change a single bit.
            let rows = block.len() / row_len;
            let mut r = 0;
            while r + 2 <= rows {
                let (row0, rest) = block[r * row_len..].split_at_mut(row_len);
                let row1 = &mut rest[..row_len];
                let (a0, a1) = (self.row(i0 + r), self.row(i0 + r + 1));
                let mut j = 0;
                while j + 2 <= n {
                    let t = dot_2x2(a0, a1, other.row(j), other.row(j + 1));
                    row0[j] = t[0];
                    row0[j + 1] = t[1];
                    row1[j] = t[2];
                    row1[j + 1] = t[3];
                    j += 2;
                }
                while j < n {
                    let b_row = other.row(j);
                    row0[j] = dot(a0, b_row);
                    row1[j] = dot(a1, b_row);
                    j += 1;
                }
                r += 2;
            }
            if r < rows {
                let o_row = &mut block[r * row_len..(r + 1) * row_len];
                let a_row = self.row(i0 + r);
                for (j, o) in o_row.iter_mut().enumerate().take(n) {
                    *o = dot(a_row, other.row(j));
                }
            }
        });
        Ok(())
    }

    /// Product with the transpose of the left operand: `selfᵀ * other`.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.cols(), other.cols());
        self.matmul_tn_into(other, &mut out)?;
        Ok(out)
    }

    /// Like [`Matrix::matmul_tn`], but writes into a caller-provided output
    /// matrix of shape `(self.cols, other.cols)` without allocating.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows() != other.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_tn",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        if out.shape() != (m, n) {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_tn_into",
                lhs: (m, n),
                rhs: out.shape(),
            });
        }
        let big = k * m * n >= PAR_MIN_FLOPS;
        let row_len = n.max(1);
        for_each_row_block(out.as_mut_slice(), row_len, rows_per_block(k), big, |i0, block| {
            block.fill(0.0);
            // Both operands stream row-wise exactly once per block; each
            // `other` row is reused across the block (output rows are columns
            // of `self`), with per-element `p` order identical to the
            // unblocked kernel.
            for p in 0..k {
                let a_row = self.row(p);
                let b_row = other.row(p);
                for (r, o_row) in block.chunks_mut(row_len).enumerate() {
                    axpy_slice(o_row, a_row[i0 + r], b_row);
                }
            }
        });
        Ok(())
    }

    /// Gram matrix `selfᵀ * self` (always square, `cols x cols`).
    pub fn gram(&self) -> Matrix {
        self.matmul_tn(self).expect("gram: shapes always agree")
    }

    /// Like [`Matrix::gram`], but writes into a caller-provided `cols x cols`
    /// output matrix without allocating.
    pub fn gram_into(&self, out: &mut Matrix) -> Result<()> {
        self.matmul_tn_into(self, out)
    }

    /// Matrix-vector product `self * v`. Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.cols(),
            "matvec: vector length {} != cols {}",
            v.len(),
            self.cols()
        );
        self.rows_iter().map(|row| dot(row, v)).collect()
    }

    /// Transposed matrix-vector product `selfᵀ * v`. Panics if `v.len() != rows`.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.rows(),
            "tr_matvec: vector length {} != rows {}",
            v.len(),
            self.rows()
        );
        let mut out = vec![0.0; self.cols()];
        for (i, row) in self.rows_iter().enumerate() {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (o, &r) in out.iter_mut().zip(row) {
                *o += vi * r;
            }
        }
        out
    }

    /// Elementwise sum. Errors on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference. Errors on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Returns `self * s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place `self += alpha * other`. Errors on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Adds `value` to each diagonal element in place. Errors unless square.
    pub fn add_diag(&mut self, value: f64) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::add_diag", shape: self.shape() });
        }
        let n = self.rows();
        for i in 0..n {
            self[(i, i)] += value;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices. Panics on length mismatch.
///
/// Accumulates in four independent lanes so the compiler can keep the partial
/// sums in registers; the lane structure (and therefore the rounding) is fixed
/// regardless of thread count.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4 * 4;
    for (ca, cb) in a[..chunks].chunks_exact(4).zip(b[..chunks].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Four dot products of a 2×2 register tile: `[a0·b0, a0·b1, a1·b0, a1·b1]`.
///
/// Every operand chunk is loaded once and used twice, halving memory traffic
/// against four independent [`dot`] calls. Each of the four accumulations
/// replicates `dot` exactly — the same four lanes over the same 4-long chunks,
/// the same tail, the same `(l0+l1)+(l2+l3)+tail` reduction — so the results
/// are bit-identical to the untiled kernel. All slices must share one length.
fn dot_2x2(a0: &[f64], a1: &[f64], b0: &[f64], b1: &[f64]) -> [f64; 4] {
    let k = a0.len();
    assert!(
        a1.len() == k && b0.len() == k && b1.len() == k,
        "dot_2x2: length mismatch ({}, {}, {}, {})",
        k,
        a1.len(),
        b0.len(),
        b1.len()
    );
    let chunks = k / 4 * 4;
    let mut acc = [[0.0f64; 4]; 4];
    let mut p = 0;
    while p < chunks {
        let (ca0, ca1) = (&a0[p..p + 4], &a1[p..p + 4]);
        let (cb0, cb1) = (&b0[p..p + 4], &b1[p..p + 4]);
        for lane in 0..4 {
            acc[0][lane] += ca0[lane] * cb0[lane];
            acc[1][lane] += ca0[lane] * cb1[lane];
            acc[2][lane] += ca1[lane] * cb0[lane];
            acc[3][lane] += ca1[lane] * cb1[lane];
        }
        p += 4;
    }
    let mut tail = [0.0f64; 4];
    for p in chunks..k {
        tail[0] += a0[p] * b0[p];
        tail[1] += a0[p] * b1[p];
        tail[2] += a1[p] * b0[p];
        tail[3] += a1[p] * b1[p];
    }
    let mut out = [0.0f64; 4];
    for t in 0..4 {
        out[t] = (acc[t][0] + acc[t][1]) + (acc[t][2] + acc[t][3]) + tail[t];
    }
    out
}

/// In-place `out += alpha * src` over equal-length slices, unrolled to match
/// [`dot`]'s chunking. Panics on length mismatch.
pub fn axpy_slice(out: &mut [f64], alpha: f64, src: &[f64]) {
    assert_eq!(out.len(), src.len(), "axpy: length mismatch {} vs {}", out.len(), src.len());
    let chunks = out.len() / 4 * 4;
    for (co, cs) in out[..chunks].chunks_exact_mut(4).zip(src[..chunks].chunks_exact(4)) {
        co[0] += alpha * cs[0];
        co[1] += alpha * cs[1];
        co[2] += alpha * cs[2];
        co[3] += alpha * cs[3];
    }
    for (o, s) in out[chunks..].iter_mut().zip(&src[chunks..]) {
        *o += alpha * s;
    }
}

/// Euclidean norm of a slice.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Outer product `a * bᵀ` of two slices.
pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
    Matrix::from_fn(a.len(), b.len(), |i, j| a[i] * b[j])
}

impl std::ops::Add for &Matrix {
    type Output = Matrix;
    /// Panics on shape mismatch; use [`Matrix::add`] for a fallible version.
    fn add(self, rhs: &Matrix) -> Matrix {
        Matrix::add(self, rhs).expect("Matrix + Matrix: shape mismatch")
    }
}

impl std::ops::Sub for &Matrix {
    type Output = Matrix;
    /// Panics on shape mismatch; use [`Matrix::sub`] for a fallible version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        Matrix::sub(self, rhs).expect("Matrix - Matrix: shape mismatch")
    }
}

impl std::ops::Mul for &Matrix {
    type Output = Matrix;
    /// Panics on shape mismatch; use [`Matrix::matmul`] for a fallible version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        Matrix::matmul(self, rhs).expect("Matrix * Matrix: shape mismatch")
    }
}

impl std::ops::Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl std::ops::Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b()).unwrap();
        let expected =
            Matrix::from_rows(&[&[27.0, 30.0, 33.0], &[61.0, 68.0, 75.0], &[95.0, 106.0, 117.0]])
                .unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_shape_check() {
        assert!(a().matmul(&a()).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = a();
        let i = Matrix::identity(2);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let m = a(); // 3x2
        let n = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.0, 3.0], &[4.0, 4.0]]).unwrap(); // 4x2
        let fast = m.matmul_nt(&n).unwrap();
        let slow = m.matmul(&n.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(m.matmul_nt(&b()).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let m = a(); // 3x2
        let n = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap(); // 3x1
        let fast = m.matmul_tn(&n).unwrap();
        let slow = m.transpose().matmul(&n).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(m.matmul_tn(&b()).is_err());
    }

    #[test]
    fn gram_is_symmetric() {
        let g = a().gram();
        assert_eq!(g.shape(), (2, 2));
        assert!((g[(0, 1)] - g[(1, 0)]).abs() < 1e-12);
        assert!((g[(0, 0)] - 35.0).abs() < 1e-12); // 1 + 9 + 25
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let m = a();
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.tr_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    #[should_panic]
    fn matvec_length_checked() {
        a().matvec(&[1.0]);
    }

    #[test]
    fn add_sub_scale_axpy() {
        let m = a();
        let s = m.add(&m).unwrap();
        assert!(s.approx_eq(&m.scale(2.0), 1e-12));
        let d = s.sub(&m).unwrap();
        assert!(d.approx_eq(&m, 1e-12));
        let mut x = m.clone();
        x.axpy(-1.0, &m).unwrap();
        assert_eq!(x.max_abs(), 0.0);
        assert!(x.axpy(1.0, &Matrix::zeros(1, 1)).is_err());
        assert!(m.add(&Matrix::zeros(1, 1)).is_err());
        assert!(m.sub(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn add_diag() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diag(2.5).unwrap();
        assert!(m.approx_eq(&Matrix::from_diag(&[2.5, 2.5, 2.5]), 0.0));
        let mut r = Matrix::zeros(2, 3);
        assert!(r.add_diag(1.0).is_err());
    }

    #[test]
    fn free_functions() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let o = outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(o[(1, 0)], 6.0);
    }

    #[test]
    fn operator_overloads() {
        let m = a();
        let sum = &m + &m;
        assert!(sum.approx_eq(&m.scale(2.0), 1e-12));
        let diff = &sum - &m;
        assert!(diff.approx_eq(&m, 1e-12));
        let prod = &m * &b();
        assert_eq!(prod.shape(), (3, 3));
        let scaled = &m * 2.0;
        assert!(scaled.approx_eq(&sum, 1e-12));
        let neg = -&m;
        assert!((&neg + &m).max_abs() < 1e-15);
    }

    #[test]
    fn matmul_with_zero_blocks() {
        let sparse_ish = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let c = sparse_ish.matmul(&Matrix::identity(2)).unwrap();
        assert!(c.approx_eq(&sparse_ish, 0.0));
    }

    #[test]
    fn into_variants_match_and_check_shapes() {
        let m = a(); // 3x2
        let n = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.0, 3.0], &[4.0, 4.0]]).unwrap();
        let mut out = Matrix::zeros(3, 4);
        m.matmul_nt_into(&n, &mut out).unwrap();
        assert!(out.approx_eq(&m.matmul_nt(&n).unwrap(), 0.0));
        assert!(m.matmul_nt_into(&n, &mut Matrix::zeros(2, 2)).is_err());

        let mut g = Matrix::zeros(2, 2);
        m.gram_into(&mut g).unwrap();
        assert!(g.approx_eq(&m.gram(), 0.0));
        assert!(m.gram_into(&mut Matrix::zeros(3, 3)).is_err());

        let mut tn = Matrix::zeros(2, 2);
        m.matmul_tn_into(&a(), &mut tn).unwrap();
        assert!(tn.approx_eq(&m.matmul_tn(&a()).unwrap(), 0.0));
    }

    #[test]
    fn matmul_into_matches_allocating_path_and_checks_shapes() {
        let m = a(); // 3x2
        let mut out = Matrix::from_fn(3, 3, |_, _| 42.0); // stale values must be overwritten
        m.matmul_into(&b(), &mut out).unwrap();
        assert!(out.approx_eq(&m.matmul(&b()).unwrap(), 0.0));
        assert!(m.matmul_into(&b(), &mut Matrix::zeros(2, 2)).is_err());
        assert!(m.matmul_into(&a(), &mut Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn dot_2x2_bit_identical_to_four_dots() {
        for k in [0usize, 1, 3, 4, 5, 8, 13, 31, 64] {
            let v = |seed: usize| -> Vec<f64> {
                (0..k).map(|i| ((i * 7 + seed * 13) % 23) as f64 * 0.37 - 3.1).collect()
            };
            let (a0, a1, b0, b1) = (v(1), v(2), v(3), v(4));
            let t = dot_2x2(&a0, &a1, &b0, &b1);
            assert_eq!(t[0].to_bits(), dot(&a0, &b0).to_bits());
            assert_eq!(t[1].to_bits(), dot(&a0, &b1).to_bits());
            assert_eq!(t[2].to_bits(), dot(&a1, &b0).to_bits());
            assert_eq!(t[3].to_bits(), dot(&a1, &b1).to_bits());
        }
    }

    #[test]
    fn blocked_products_bit_identical_to_unblocked_reference() {
        // Shapes straddling the row-block sizes (4/6/8) and the 2x2 nt tile,
        // including odd remainders in every dimension.
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (5, 3, 7), (7, 40, 9), (9, 300, 11), (13, 8, 400)]
        {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 19) as f64 * 0.21 - 1.7);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 13 + j * 29) % 23) as f64 * 0.11 - 1.2);
            let bt = b.transpose();

            // Unblocked per-element references with the same primitive order.
            let mut nn_ref = Matrix::zeros(m, n);
            for i in 0..m {
                for p in 0..k {
                    axpy_slice(&mut nn_ref.as_mut_slice()[i * n..(i + 1) * n], a[(i, p)], b.row(p));
                }
            }
            let nn = a.matmul(&b).unwrap();
            assert!(nn
                .as_slice()
                .iter()
                .zip(nn_ref.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()));

            let nt = a.matmul_nt(&bt).unwrap();
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(nt[(i, j)].to_bits(), dot(a.row(i), bt.row(j)).to_bits());
                }
            }

            let mut tn_ref = Matrix::zeros(k, n);
            for i in 0..k {
                for p in 0..m {
                    axpy_slice(
                        &mut tn_ref.as_mut_slice()[i * n..(i + 1) * n],
                        a[(p, i)],
                        nn_ref.row(p),
                    );
                }
            }
            let tn = a.matmul_tn(&nn).unwrap();
            assert!(tn
                .as_slice()
                .iter()
                .zip(tn_ref.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn axpy_slice_matches_scalar_loop() {
        let src: Vec<f64> = (0..11).map(|i| i as f64 * 0.3 - 1.0).collect();
        let mut fast = vec![1.0; 11];
        let mut slow = fast.clone();
        axpy_slice(&mut fast, -0.7, &src);
        for (o, s) in slow.iter_mut().zip(&src) {
            *o += -0.7 * s;
        }
        assert_eq!(fast, slow);
    }
}
