//! Matrix arithmetic: products, sums, scaling, and the operator overloads.
//!
//! Multiplication uses the cache-friendly `ikj` loop ordering, which is ample for the
//! problem sizes in this reproduction (fingerprint matrices are on the order of
//! tens-of-links x hundreds-of-grids).

use crate::{LinalgError, Matrix, Result};

impl Matrix {
    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols() != other.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                let o_row = out.row_mut(i);
                for j in 0..n {
                    o_row[j] += a_ip * b_row[j];
                }
            }
        }
        Ok(out)
    }

    /// Product with the transpose of the right operand: `self * otherᵀ`.
    ///
    /// Both operands are traversed row-wise, which makes this noticeably faster than
    /// `self.matmul(&other.transpose())` and avoids the intermediate allocation.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols() != other.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_nt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, n) = (self.rows(), other.rows());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let o_row = out.row_mut(i);
            for j in 0..n {
                let b_row = other.row(j);
                o_row[j] = dot(a_row, b_row);
            }
        }
        Ok(out)
    }

    /// Product with the transpose of the left operand: `selfᵀ * other`.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows() != other.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::matmul_tn",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a_pi) in a_row.iter().enumerate().take(m) {
                if a_pi == 0.0 {
                    continue;
                }
                let o_row = out.row_mut(i);
                for j in 0..n {
                    o_row[j] += a_pi * b_row[j];
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (always square, `cols x cols`).
    pub fn gram(&self) -> Matrix {
        self.matmul_tn(self).expect("gram: shapes always agree")
    }

    /// Matrix-vector product `self * v`. Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.cols(),
            "matvec: vector length {} != cols {}",
            v.len(),
            self.cols()
        );
        self.rows_iter().map(|row| dot(row, v)).collect()
    }

    /// Transposed matrix-vector product `selfᵀ * v`. Panics if `v.len() != rows`.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.rows(),
            "tr_matvec: vector length {} != rows {}",
            v.len(),
            self.rows()
        );
        let mut out = vec![0.0; self.cols()];
        for (i, row) in self.rows_iter().enumerate() {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (o, &r) in out.iter_mut().zip(row) {
                *o += vi * r;
            }
        }
        out
    }

    /// Elementwise sum. Errors on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference. Errors on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Returns `self * s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place `self += alpha * other`. Errors on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Adds `value` to each diagonal element in place. Errors unless square.
    pub fn add_diag(&mut self, value: f64) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { op: "Matrix::add_diag", shape: self.shape() });
        }
        let n = self.rows();
        for i in 0..n {
            self[(i, i)] += value;
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices. Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Outer product `a * bᵀ` of two slices.
pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
    Matrix::from_fn(a.len(), b.len(), |i, j| a[i] * b[j])
}

impl std::ops::Add for &Matrix {
    type Output = Matrix;
    /// Panics on shape mismatch; use [`Matrix::add`] for a fallible version.
    fn add(self, rhs: &Matrix) -> Matrix {
        Matrix::add(self, rhs).expect("Matrix + Matrix: shape mismatch")
    }
}

impl std::ops::Sub for &Matrix {
    type Output = Matrix;
    /// Panics on shape mismatch; use [`Matrix::sub`] for a fallible version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        Matrix::sub(self, rhs).expect("Matrix - Matrix: shape mismatch")
    }
}

impl std::ops::Mul for &Matrix {
    type Output = Matrix;
    /// Panics on shape mismatch; use [`Matrix::matmul`] for a fallible version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        Matrix::matmul(self, rhs).expect("Matrix * Matrix: shape mismatch")
    }
}

impl std::ops::Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl std::ops::Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b()).unwrap();
        let expected =
            Matrix::from_rows(&[&[27.0, 30.0, 33.0], &[61.0, 68.0, 75.0], &[95.0, 106.0, 117.0]])
                .unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_shape_check() {
        assert!(a().matmul(&a()).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = a();
        let i = Matrix::identity(2);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let m = a(); // 3x2
        let n = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.0, 3.0], &[4.0, 4.0]]).unwrap(); // 4x2
        let fast = m.matmul_nt(&n).unwrap();
        let slow = m.matmul(&n.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(m.matmul_nt(&b()).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let m = a(); // 3x2
        let n = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap(); // 3x1
        let fast = m.matmul_tn(&n).unwrap();
        let slow = m.transpose().matmul(&n).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(m.matmul_tn(&b()).is_err());
    }

    #[test]
    fn gram_is_symmetric() {
        let g = a().gram();
        assert_eq!(g.shape(), (2, 2));
        assert!((g[(0, 1)] - g[(1, 0)]).abs() < 1e-12);
        assert!((g[(0, 0)] - 35.0).abs() < 1e-12); // 1 + 9 + 25
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let m = a();
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.tr_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    #[should_panic]
    fn matvec_length_checked() {
        a().matvec(&[1.0]);
    }

    #[test]
    fn add_sub_scale_axpy() {
        let m = a();
        let s = m.add(&m).unwrap();
        assert!(s.approx_eq(&m.scale(2.0), 1e-12));
        let d = s.sub(&m).unwrap();
        assert!(d.approx_eq(&m, 1e-12));
        let mut x = m.clone();
        x.axpy(-1.0, &m).unwrap();
        assert_eq!(x.max_abs(), 0.0);
        assert!(x.axpy(1.0, &Matrix::zeros(1, 1)).is_err());
        assert!(m.add(&Matrix::zeros(1, 1)).is_err());
        assert!(m.sub(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn add_diag() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diag(2.5).unwrap();
        assert!(m.approx_eq(&Matrix::from_diag(&[2.5, 2.5, 2.5]), 0.0));
        let mut r = Matrix::zeros(2, 3);
        assert!(r.add_diag(1.0).is_err());
    }

    #[test]
    fn free_functions() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let o = outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(o[(1, 0)], 6.0);
    }

    #[test]
    fn operator_overloads() {
        let m = a();
        let sum = &m + &m;
        assert!(sum.approx_eq(&m.scale(2.0), 1e-12));
        let diff = &sum - &m;
        assert!(diff.approx_eq(&m, 1e-12));
        let prod = &m * &b();
        assert_eq!(prod.shape(), (3, 3));
        let scaled = &m * 2.0;
        assert!(scaled.approx_eq(&sum, 1e-12));
        let neg = -&m;
        assert!((&neg + &m).max_abs() < 1e-15);
    }

    #[test]
    fn matmul_with_zero_blocks_skips_correctly() {
        // Exercise the `a_ip == 0.0` fast path.
        let sparse_ish = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let c = sparse_ish.matmul(&Matrix::identity(2)).unwrap();
        assert!(c.approx_eq(&sparse_ish, 0.0));
    }
}
