//! Descriptive statistics and empirical CDFs.
//!
//! The TafLoc evaluation reports everything as CDFs (Fig. 3, Fig. 5) and summary
//! statistics (mean reconstruction error, median localization error); this module
//! provides those primitives once, shared by the core crate, the baselines and the
//! bench harness.

use crate::{LinalgError, Result};

/// Arithmetic mean. Errors on empty input.
pub fn mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(LinalgError::EmptyInput { op: "stats::mean" });
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population variance (`1/n` normalization). Errors on empty input.
pub fn variance(values: &[f64]) -> Result<f64> {
    let m = mean(values)?;
    Ok(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation. Errors on empty input.
pub fn std_dev(values: &[f64]) -> Result<f64> {
    Ok(variance(values)?.sqrt())
}

/// Linear-interpolated percentile, `p` in `[0, 1]`.
///
/// Uses the standard `(n-1)·p` convention: `percentile(v, 0.5)` of an even-length
/// sample is the midpoint of the two central order statistics.
pub fn percentile(values: &[f64], p: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(LinalgError::EmptyInput { op: "stats::percentile" });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(LinalgError::InvalidArgument {
            op: "stats::percentile",
            reason: format!("p must be in [0,1], got {p}"),
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile). Errors on empty input.
pub fn median(values: &[f64]) -> Result<f64> {
    percentile(values, 0.5)
}

/// An empirical cumulative distribution function over a finite sample.
///
/// `Ecdf` powers the paper-figure outputs: build one from the per-entry
/// reconstruction errors (Fig. 3) or the per-trial localization errors (Fig. 5),
/// then tabulate it at the x-grid the figure uses.
///
/// ```
/// use taf_linalg::stats::Ecdf;
/// let errors = [0.2, 0.5, 1.1, 2.4];
/// let cdf = Ecdf::new(&errors).unwrap();
/// assert_eq!(cdf.eval(1.0), 0.5);      // half the sample is <= 1.0
/// assert_eq!(cdf.median(), 0.8);       // interpolated
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Errors on empty input; NaN values are
    /// rejected because they have no place in an ordering.
    pub fn new(values: &[f64]) -> Result<Ecdf> {
        if values.is_empty() {
            return Err(LinalgError::EmptyInput { op: "Ecdf::new" });
        }
        if values.iter().any(|v| v.is_nan()) {
            return Err(LinalgError::InvalidArgument {
                op: "Ecdf::new",
                reason: "sample contains NaN".into(),
            });
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected above"));
        Ok(Ecdf { sorted })
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` (construction rejects empty samples); present for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`: fraction of the sample at or below `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we search for
        // the first element > x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF by linear interpolation; `p` clamped to `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let idx = p * (self.sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median of the sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of the sample.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest sample value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Tabulates the CDF at `points` evenly spaced x-values spanning
    /// `[0, x_max]` — the form the figure binaries print.
    pub fn tabulate(&self, x_max: f64, points: usize) -> Vec<(f64, f64)> {
        (0..points)
            .map(|k| {
                let x = x_max * k as f64 / (points.max(2) - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v).unwrap(), 2.5);
        assert_eq!(variance(&v).unwrap(), 1.25);
        assert!((std_dev(&v).unwrap() - 1.25_f64.sqrt()).abs() < 1e-15);
        assert!(mean(&[]).is_err());
        assert!(variance(&[]).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&v, 1.0).unwrap(), 40.0);
        assert_eq!(percentile(&v, 0.5).unwrap(), 25.0);
        assert!(percentile(&v, 1.5).is_err());
        assert!(percentile(&[], 0.5).is_err());
    }

    #[test]
    fn median_unsorted_input() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
    }

    #[test]
    fn ecdf_eval_steps() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new(&[0.0, 10.0]).unwrap();
        assert_eq!(e.quantile(0.5), 5.0);
        assert_eq!(e.quantile(-1.0), 0.0); // clamped
        assert_eq!(e.quantile(2.0), 10.0); // clamped
        assert_eq!(e.median(), 5.0);
    }

    #[test]
    fn ecdf_summary_stats() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
        assert_eq!(e.mean(), 2.0);
    }

    #[test]
    fn ecdf_rejects_bad_input() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn ecdf_tabulate_monotone() {
        let e = Ecdf::new(&[0.5, 1.5, 2.5, 3.5]).unwrap();
        let table = e.tabulate(4.0, 9);
        assert_eq!(table.len(), 9);
        assert_eq!(table[0].0, 0.0);
        assert_eq!(table[8].0, 4.0);
        for w in table.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert_eq!(table[8].1, 1.0);
    }
}
