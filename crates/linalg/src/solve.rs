//! Higher-level solvers: least squares, ridge regression, conjugate gradients.
//!
//! Ridge regression is the heart of the TafLoc math: the LRR correlation matrix `Z`,
//! every per-row/per-column step of the LoLi-IR alternating solver, and the RTI
//! baseline's Tikhonov image reconstruction are all ridge solves.

use crate::{LinalgError, Matrix, Result};

/// Solves the least-squares problem `min ‖A·x − b‖₂` via Householder QR.
///
/// Requires `A` to have full column rank and at least as many rows as columns.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    a.qr()?.solve_least_squares(b)
}

/// Solves the ridge-regression problem `min ‖A·x − b‖₂² + λ‖x‖₂²` through the
/// normal equations `(AᵀA + λI)·x = Aᵀb`, factored by Cholesky.
///
/// `lambda` must be non-negative; a strictly positive `lambda` guarantees a unique
/// solution regardless of `A`'s rank.
pub fn ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if lambda < 0.0 || !lambda.is_finite() {
        return Err(LinalgError::InvalidArgument {
            op: "ridge",
            reason: format!("lambda must be finite and >= 0, got {lambda}"),
        });
    }
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "ridge",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut gram = a.gram();
    gram.add_diag(lambda)?;
    let atb = a.tr_matvec(b);
    gram.cholesky()?.solve(&atb)
}

/// Ridge regression with a matrix right-hand side: solves
/// `min ‖A·X − B‖_F² + λ‖X‖_F²`, i.e. one ridge problem per column of `B`,
/// sharing a single Cholesky factorization.
///
/// This is exactly how the LRR correlation matrix is computed:
/// `Z = (X_Rᵀ·X_R + λI)⁻¹·X_Rᵀ·X`.
pub fn ridge_multi(a: &Matrix, b: &Matrix, lambda: f64) -> Result<Matrix> {
    if lambda < 0.0 || !lambda.is_finite() {
        return Err(LinalgError::InvalidArgument {
            op: "ridge_multi",
            reason: format!("lambda must be finite and >= 0, got {lambda}"),
        });
    }
    if b.rows() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "ridge_multi",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut gram = a.gram();
    gram.add_diag(lambda)?;
    let chol = gram.cholesky()?;
    let atb = a.matmul_tn(b)?;
    chol.solve_matrix(&atb)
}

/// Configuration for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Maximum iterations (defaults to 500).
    pub max_iters: usize,
    /// Relative residual tolerance `‖r‖/‖b‖` (defaults to `1e-10`).
    pub tol: f64,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig { max_iters: 500, tol: 1e-10 }
    }
}

/// Solves `A·x = b` for a symmetric positive-(semi)definite operator given only as
/// a matrix-vector product, by the conjugate-gradient method.
///
/// This is used for the exact (graph-coupled) LoLi-IR variant, where the system
/// matrix `λI + Σ B_ij r_j r_jᵀ + β·Laplacian ⊗ (RᵀR)` is never formed explicitly.
///
/// Returns the solution and the number of iterations used, or
/// [`LinalgError::NoConvergence`] when the tolerance is not met in time.
pub fn conjugate_gradient(
    apply: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    x0: Option<&[f64]>,
    config: CgConfig,
) -> Result<(Vec<f64>, usize)> {
    if b.is_empty() {
        return Err(LinalgError::EmptyInput { op: "conjugate_gradient" });
    }
    let n = b.len();
    let mut x = match x0 {
        Some(x0) => {
            if x0.len() != n {
                return Err(LinalgError::DimensionMismatch {
                    op: "conjugate_gradient",
                    lhs: (n, 1),
                    rhs: (x0.len(), 1),
                });
            }
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let b_norm = crate::ops::norm2(b);
    if b_norm == 0.0 {
        return Ok((vec![0.0; n], 0));
    }

    let ax = apply(&x);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
    let mut p = r.clone();
    let mut rs_old = crate::ops::dot(&r, &r);

    for iter in 0..config.max_iters {
        if rs_old.sqrt() <= config.tol * b_norm {
            return Ok((x, iter));
        }
        let ap = apply(&p);
        let p_ap = crate::ops::dot(&p, &ap);
        if p_ap <= 0.0 {
            // Operator is not positive definite along p; bail out with the best
            // iterate rather than diverging.
            return Err(LinalgError::InvalidArgument {
                op: "conjugate_gradient",
                reason: "operator is not positive definite".into(),
            });
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = crate::ops::dot(&r, &r);
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    if rs_old.sqrt() <= config.tol * b_norm {
        Ok((x, config.max_iters))
    } else {
        Err(LinalgError::NoConvergence {
            algorithm: "conjugate-gradient",
            iterations: config.max_iters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap()
    }

    #[test]
    fn lstsq_fits_line() {
        // Fit y = 1 + 2t at t = 0..3.
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = lstsq(&tall(), &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let b = [1.0, 3.0, 5.0, 7.0];
        let x0 = ridge(&tall(), &b, 0.0).unwrap();
        let x1 = ridge(&tall(), &b, 10.0).unwrap();
        let n0: f64 = x0.iter().map(|v| v * v).sum();
        let n1: f64 = x1.iter().map(|v| v * v).sum();
        assert!(n1 < n0, "ridge with larger lambda must have smaller norm");
    }

    #[test]
    fn ridge_zero_lambda_matches_lstsq() {
        let b = [0.5, 1.0, -1.0, 2.0];
        let xr = ridge(&tall(), &b, 0.0).unwrap();
        let xl = lstsq(&tall(), &b).unwrap();
        for (a, c) in xr.iter().zip(&xl) {
            assert!((a - c).abs() < 1e-8);
        }
    }

    #[test]
    fn ridge_handles_rank_deficiency() {
        // Two identical columns: plain lstsq would be singular, ridge is fine.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let x = ridge(&a, &[2.0, 4.0, 6.0], 1e-6).unwrap();
        // Symmetry: both coefficients equal.
        assert!((x[0] - x[1]).abs() < 1e-8);
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_validates_arguments() {
        assert!(ridge(&tall(), &[1.0], 1.0).is_err());
        assert!(ridge(&tall(), &[1.0; 4], -1.0).is_err());
        assert!(ridge(&tall(), &[1.0; 4], f64::NAN).is_err());
    }

    #[test]
    fn ridge_multi_matches_columnwise_ridge() {
        let a = tall();
        let b = Matrix::from_cols(&[&[1.0, 3.0, 5.0, 7.0], &[0.0, 1.0, 0.0, 1.0]]).unwrap();
        let x = ridge_multi(&a, &b, 0.5).unwrap();
        for j in 0..2 {
            let xj = ridge(&a, &b.col(j), 0.5).unwrap();
            for i in 0..2 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-10);
            }
        }
        assert!(ridge_multi(&a, &Matrix::zeros(1, 1), 0.5).is_err());
        assert!(ridge_multi(&a, &b, -0.1).is_err());
    }

    #[test]
    fn cg_solves_spd_system() {
        let m = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let (x, iters) =
            conjugate_gradient(|v| m.matvec(v), &b, None, CgConfig::default()).unwrap();
        assert!(iters <= 3 + 1, "CG must converge in <= n iterations for SPD");
        let direct = m.solve(&b).unwrap();
        for (a, c) in x.iter().zip(&direct) {
            assert!((a - c).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_with_warm_start() {
        let m = Matrix::from_diag(&[2.0, 5.0]);
        let b = [2.0, 10.0];
        let exact = [1.0, 2.0];
        let (x, iters) =
            conjugate_gradient(|v| m.matvec(v), &b, Some(&exact), CgConfig::default()).unwrap();
        assert_eq!(iters, 0, "exact warm start must converge immediately");
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cg_zero_rhs_short_circuits() {
        let m = Matrix::identity(3);
        let (x, iters) =
            conjugate_gradient(|v| m.matvec(v), &[0.0; 3], None, CgConfig::default()).unwrap();
        assert_eq!(iters, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cg_rejects_indefinite_operator() {
        let m = Matrix::from_diag(&[1.0, -1.0]);
        let res = conjugate_gradient(|v| m.matvec(v), &[0.0, 1.0], None, CgConfig::default());
        assert!(matches!(res, Err(LinalgError::InvalidArgument { .. })));
    }

    #[test]
    fn cg_validates_input() {
        let m = Matrix::identity(2);
        assert!(conjugate_gradient(|v| m.matvec(v), &[], None, CgConfig::default()).is_err());
        assert!(conjugate_gradient(
            |v| m.matvec(v),
            &[1.0, 1.0],
            Some(&[0.0]),
            CgConfig::default()
        )
        .is_err());
    }

    #[test]
    fn cg_reports_non_convergence() {
        let m = Matrix::from_diag(&[1.0, 1e8]); // terrible conditioning
        let cfg = CgConfig { max_iters: 1, tol: 1e-14 };
        let res = conjugate_gradient(|v| m.matvec(v), &[1.0, 1.0], None, cfg);
        assert!(matches!(res, Err(LinalgError::NoConvergence { .. })));
    }
}
