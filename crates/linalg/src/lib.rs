//! # taf-linalg
//!
//! Dense and sparse linear algebra substrate for the TafLoc reproduction.
//!
//! The TafLoc paper (SIGCOMM '16) reconstructs an RSS fingerprint matrix with a
//! structured low-rank solver (LoLi-IR). Everything that solver needs is built here
//! from scratch, because the offline crate set contains no linear-algebra library:
//!
//! * [`Matrix`] — a dense, row-major, `f64` matrix with the usual algebra
//!   (multiplication, concatenation, slicing, Hadamard products, norms).
//! * Decompositions — [`decomp::lu`] (general solves), [`decomp::cholesky`]
//!   (the SPD inner solves of every ALS step), [`decomp::qr`] (least squares and the
//!   column-pivoted selection of reference locations), [`decomp::svd`] (one-sided
//!   Jacobi; LoLi-IR initialization and the SVT baseline), and [`decomp::eigh`]
//!   (symmetric eigenproblems).
//! * [`solve`] — least squares, ridge regression and conjugate gradients.
//! * [`sparse`] — CSR matrices for the continuity/similarity difference operators.
//! * [`stats`] — means, percentiles and empirical CDFs used throughout the
//!   evaluation harness.
//!
//! Design goals follow the style of small, robust systems libraries: simplicity over
//! type-level cleverness, explicit error types ([`LinalgError`]), exhaustive
//! documentation, and dense test coverage (unit tests per module plus property-based
//! tests on the algebraic identities).
//!
//! ## Example
//!
//! ```
//! use taf_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
//! let chol = a.cholesky().unwrap();
//! let x = chol.solve(&[1.0, 2.0]).unwrap();
//! let r = a.matvec(&x);
//! assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` deliberately rejects NaN along with non-positive values in
// config validation — the clippy lint suggesting `x <= 0.0` would silently
// accept NaN. Indexed loops are used where two or more parallel buffers are
// driven by one index; rewriting them as iterator chains hurts readability in
// the numerical kernels.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

mod error;
mod extras;
mod matrix;
pub(crate) mod ops;
pub(crate) mod par;

pub mod decomp;
pub mod io;
pub mod solve;
pub mod sparse;
pub mod stats;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use ops::{axpy_slice, dot, norm2, outer};
pub use par::current_threads;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Default absolute tolerance used by approximate comparisons in tests and
/// convergence checks (`1e-9`).
pub const DEFAULT_TOL: f64 = 1e-9;
