//! Compressed sparse row (CSR) matrices.
//!
//! The continuity operator `G` and similarity operator `H` from the TafLoc
//! objective are sparse difference operators (two non-zeros per row); storing them
//! densely would waste both memory and the inner loops of the LoLi-IR solver.

use crate::{LinalgError, Matrix, Result};
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (enforced by [`Csr::from_triplets`] and checked in debug builds):
/// `indptr.len() == rows + 1`, `indptr` non-decreasing,
/// `indices[k] < cols`, and within each row the column indices are strictly
/// increasing.
///
/// ```
/// use taf_linalg::sparse::Csr;
/// // A 2x3 difference operator: row 0 computes x0 - x1, row 1 computes x1 - x2.
/// let g = Csr::from_triplets(2, 3, &[(0, 0, 1.0), (0, 1, -1.0), (1, 1, 1.0), (1, 2, -1.0)]).unwrap();
/// assert_eq!(g.matvec(&[3.0, 1.0, 0.0]).unwrap(), vec![2.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate positions are summed; explicit zeros are dropped. Out-of-range
    /// triplets yield [`LinalgError::IndexOutOfBounds`].
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Csr> {
        for &(i, j, _) in triplets {
            if i >= rows {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "Csr::from_triplets(row)",
                    index: i,
                    bound: rows,
                });
            }
            if j >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    op: "Csr::from_triplets(col)",
                    index: j,
                    bound: cols,
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|a| (a.0, a.1));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());

        let mut k = 0;
        while k < sorted.len() {
            let (i, j, mut v) = sorted[k];
            k += 1;
            while k < sorted.len() && sorted[k].0 == i && sorted[k].1 == j {
                v += sorted[k].2;
                k += 1;
            }
            if v != 0.0 {
                indices.push(j);
                values.push(v);
                indptr[i + 1] += 1;
            }
        }
        for i in 0..rows {
            indptr[i + 1] += indptr[i];
        }
        Ok(Csr { rows, cols, indptr, indices, values })
    }

    /// Converts a dense matrix to CSR, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Csr {
        let triplets: Vec<(usize, usize, f64)> =
            m.indexed_iter().filter(|&(_, _, v)| v != 0.0).collect();
        Csr::from_triplets(m.rows(), m.cols(), &triplets).expect("indices from a valid matrix")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over the stored entries of row `i` as `(col, value)` pairs.
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse matrix - dense vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Csr::matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            out[i] = self.row(i).map(|(j, val)| val * v[j]).sum();
        }
        Ok(out)
    }

    /// Transposed product `selfᵀ * v`.
    pub fn tr_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "Csr::tr_matvec",
                lhs: (self.cols, self.rows),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (j, val) in self.row(i) {
                out[j] += val * vi;
            }
        }
        Ok(out)
    }

    /// Sparse - dense product `self * d`.
    pub fn matmul_dense(&self, d: &Matrix) -> Result<Matrix> {
        if d.rows() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Csr::matmul_dense",
                lhs: (self.rows, self.cols),
                rhs: d.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, d.cols());
        for i in 0..self.rows {
            for (j, val) in self.row(i) {
                let d_row = d.row(j);
                let o_row = out.row_mut(i);
                for (o, &dv) in o_row.iter_mut().zip(d_row) {
                    *o += val * dv;
                }
            }
        }
        Ok(out)
    }

    /// Dense - sparse product `d * self`.
    pub fn rmatmul_dense(&self, d: &Matrix) -> Result<Matrix> {
        if d.cols() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "Csr::rmatmul_dense",
                lhs: d.shape(),
                rhs: (self.rows, self.cols),
            });
        }
        let mut out = Matrix::zeros(d.rows(), self.cols);
        for i in 0..self.rows {
            for (j, val) in self.row(i) {
                for r in 0..d.rows() {
                    out[(r, j)] += d[(r, i)] * val;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> Csr {
        let triplets: Vec<(usize, usize, f64)> =
            (0..self.rows).flat_map(|i| self.row(i).map(move |(j, v)| (j, i, v))).collect();
        Csr::from_triplets(self.cols, self.rows, &triplets).expect("transpose indices valid")
    }

    /// Normal-equations matrix `selfᵀ·self` as a dense matrix.
    ///
    /// The Laplacians of the continuity/similarity graphs are `GᵀG` and `HᵀH`; at
    /// our scale they are small enough to hold densely.
    pub fn gram_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let entries: Vec<(usize, f64)> = self.row(i).collect();
            for &(j1, v1) in &entries {
                for &(j2, v2) in &entries {
                    out[(j1, j2)] += v1 * v2;
                }
            }
        }
        out
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                out[(i, j)] = v;
            }
        }
        out
    }

    /// Frobenius norm of the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        Csr::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let c = sample();
        assert_eq!((c.rows(), c.cols()), (3, 3));
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn duplicates_summed_zeros_dropped() {
        let c = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.to_dense()[(0, 0)], 3.0);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Csr::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(Csr::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn dense_round_trip() {
        let d = Matrix::from_rows(&[&[0.0, 1.5], &[-2.0, 0.0]]).unwrap();
        let c = Csr::from_dense(&d);
        assert_eq!(c.nnz(), 2);
        assert!(c.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn matvec_matches_dense() {
        let c = sample();
        let d = c.to_dense();
        let v = [1.0, -1.0, 0.5];
        let sv = c.matvec(&v).unwrap();
        let dv = d.matvec(&v);
        assert_eq!(sv, dv);
        assert!(c.matvec(&[1.0]).is_err());
    }

    #[test]
    fn tr_matvec_matches_dense() {
        let c = sample();
        let d = c.to_dense().transpose();
        let v = [1.0, 2.0, 3.0];
        assert_eq!(c.tr_matvec(&v).unwrap(), d.matvec(&v));
        assert!(c.tr_matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_dense_matches_dense() {
        let c = sample();
        let d = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let fast = c.matmul_dense(&d).unwrap();
        let slow = c.to_dense().matmul(&d).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(c.matmul_dense(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn rmatmul_dense_matches_dense() {
        let c = sample();
        let d = Matrix::from_fn(2, 3, |i, j| (1 + i * 3 + j) as f64);
        let fast = c.rmatmul_dense(&d).unwrap();
        let slow = d.matmul(&c.to_dense()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(c.rmatmul_dense(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let c = sample();
        let t = c.transpose();
        assert!(t.to_dense().approx_eq(&c.to_dense().transpose(), 0.0));
        assert!(t.transpose().to_dense().approx_eq(&c.to_dense(), 0.0));
    }

    #[test]
    fn gram_dense_matches_dense_gram() {
        let c = sample();
        let g = c.gram_dense();
        let expected = c.to_dense().gram();
        assert!(g.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn frobenius_matches_dense() {
        let c = sample();
        assert!((c.frobenius_norm() - c.to_dense().frobenius_norm()).abs() < 1e-12);
    }

    #[test]
    fn empty_row_iteration() {
        let c = sample();
        assert_eq!(c.row(1).count(), 0);
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        // Csr derives Serialize/Deserialize; spot check equality through clone
        // semantics (serde_json is not a dependency of this crate).
        let c = sample();
        let c2 = c.clone();
        assert_eq!(c, c2);
    }
}
