//! Workspace-level hook into the taf-testkit regression gates.
//!
//! The sibling integration tests in this directory each pin their own world
//! seed and assert numbers tuned to it. This one instead delegates to the
//! testkit scenario runner — the canonical place where seeds, fault
//! schedules, and accuracy tolerances are declared together — so the
//! workspace suite fails alongside `taf-testkit` if the end-to-end
//! ingest → reconstruct → serve accuracy ever regresses past a golden gate.

use taf_testkit::{find_scenario, run_and_check, run_scenario};

/// The no-fault baseline (world seed 42, all stream seeds derived from fixed
/// bases inside the runner) must pass its committed golden gates.
#[test]
fn nominal_scenario_holds_its_golden_gates() {
    let scenario = find_scenario("nominal").expect("built-in scenario");
    if let Err(violations) = run_and_check(&scenario) {
        panic!("nominal scenario regressed:\n  {}", violations.join("\n  "));
    }
}

/// The scenario runner is a pure function of the scenario definition: two
/// runs of the same seed serialize to byte-identical reports.
#[test]
fn nominal_scenario_is_deterministic() {
    let scenario = find_scenario("nominal").expect("built-in scenario");
    let a = run_scenario(&scenario).unwrap().to_json();
    let b = run_scenario(&scenario).unwrap().to_json();
    assert_eq!(a, b);
}
