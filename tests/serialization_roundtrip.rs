//! Serde round-trips of every persistent artifact: fingerprint databases,
//! world/system configurations, masks, LRR models — the state a deployment
//! would snapshot to disk between surveys.

use tafloc::core::db::FingerprintDb;
use tafloc::core::lrr::LrrModel;
use tafloc::core::mask::Mask;
use tafloc::core::system::TafLocConfig;
use tafloc::linalg::Matrix;
use tafloc::rfsim::{campaign, World, WorldConfig};

#[test]
fn matrix_round_trip() {
    let m = Matrix::from_fn(3, 4, |i, j| i as f64 - 0.5 * j as f64);
    let json = serde_json::to_string(&m).unwrap();
    let back: Matrix = serde_json::from_str(&json).unwrap();
    assert!(back.approx_eq(&m, 0.0));
}

#[test]
fn matrix_deserialization_validates_invariant() {
    // rows*cols != data.len() must be rejected, not silently accepted.
    let bad = r#"{"rows": 2, "cols": 2, "data": [1.0, 2.0, 3.0]}"#;
    assert!(serde_json::from_str::<Matrix>(bad).is_err());
}

#[test]
fn fingerprint_db_round_trip() {
    let world = World::new(WorldConfig::small_test(), 8);
    let x = campaign::full_calibration(&world, 0.0, 10);
    let db = FingerprintDb::from_world(x, &world).unwrap();
    let json = serde_json::to_string(&db).unwrap();
    let back: FingerprintDb = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_links(), db.num_links());
    assert_eq!(back.num_cells(), db.num_cells());
    assert!(back.rss().approx_eq(db.rss(), 0.0));
    assert_eq!(back.links(), db.links());
}

#[test]
fn world_config_round_trip() {
    let cfg = WorldConfig::paper_default();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: WorldConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
    // Two worlds from the same config + seed produce identical fingerprints.
    let a = World::new(cfg, 5).fingerprint_truth(10.0);
    let b = World::new(back, 5).fingerprint_truth(10.0);
    assert!(a.approx_eq(&b, 0.0));
}

#[test]
fn tafloc_config_round_trip() {
    let cfg = TafLocConfig::default();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: TafLocConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
}

#[test]
fn mask_round_trip() {
    let mask = Mask::from_columns(4, 6, &[1, 3, 5]).unwrap();
    let json = serde_json::to_string(&mask).unwrap();
    let back: Mask = serde_json::from_str(&json).unwrap();
    assert_eq!(back, mask);
}

#[test]
fn lrr_model_round_trip() {
    let x = Matrix::from_fn(4, 8, |i, j| (i * j) as f64 / 3.0 - 1.0);
    let model = LrrModel::fit(&x, &[0, 2, 5], 1e-6).unwrap();
    let json = serde_json::to_string(&model).unwrap();
    let back: LrrModel = serde_json::from_str(&json).unwrap();
    assert_eq!(back.ref_cells(), model.ref_cells());
    assert!(back.z().approx_eq(model.z(), 0.0));
    // Round-tripped model predicts identically.
    let refs = x.select_cols(&[0, 2, 5]).unwrap();
    assert!(back.predict(&refs).unwrap().approx_eq(&model.predict(&refs).unwrap(), 0.0));
}

#[test]
fn snapshot_survives_full_cycle() {
    // Persist a calibrated deployment's artifacts, reload, and keep working.
    let world = World::new(WorldConfig::small_test(), 9);
    let x0 = campaign::full_calibration(&world, 0.0, 10);
    let e0 = campaign::empty_snapshot(&world, 0.0, 10);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let cfg = TafLocConfig { ref_count: 5, ..Default::default() };
    let sys = tafloc::core::system::TafLoc::calibrate(cfg, db.clone(), e0.clone()).unwrap();

    // Simulate "write db + config to disk, restart, reload".
    let db_json = serde_json::to_string(&db).unwrap();
    let cfg_json = serde_json::to_string(sys.config()).unwrap();
    let db2: FingerprintDb = serde_json::from_str(&db_json).unwrap();
    let cfg2: TafLocConfig = serde_json::from_str(&cfg_json).unwrap();
    let sys2 = tafloc::core::system::TafLoc::calibrate(cfg2, db2, e0).unwrap();
    assert_eq!(sys2.reference_cells(), sys.reference_cells());
}
