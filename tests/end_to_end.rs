//! End-to-end integration: the full calibrate → drift → update → localize
//! lifecycle at the paper's deployment scale, across crate boundaries
//! (simulator → core system → matcher).

use tafloc::core::db::FingerprintDb;
use tafloc::core::matcher::MatchMethod;
use tafloc::core::reference::ReferenceStrategy;
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::rfsim::{campaign, World, WorldConfig};

/// Builds a calibrated paper-scale system. `seed` pins the *entire*
/// stochastic chain — world shadowing, drift processes, and campaign noise
/// all derive from it — so each test names its own seed (1–3 below) and its
/// numeric thresholds are deterministic for that seed. Changing a seed means
/// re-tuning the thresholds, not flakiness.
fn paper_system(seed: u64, samples: usize) -> (World, TafLoc) {
    let world = World::new(WorldConfig::paper_default(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, samples);
    let e0 = campaign::empty_snapshot(&world, 0.0, samples);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).unwrap();
    (world, sys)
}

#[test]
fn full_lifecycle_at_paper_scale() {
    let (world, mut sys) = paper_system(1, 50);
    assert_eq!(sys.reference_cells().len(), 10);

    // 90 days later: reference-only refresh.
    let t = 90.0;
    let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), 50);
    let empty = campaign::empty_snapshot(&world, t, 50);
    let report = sys.update(&fresh, &empty).unwrap();
    assert!(report.converged, "LoLi-IR should converge ({} iters)", report.iterations);
    assert!(report.mean_abs_change_db > 1.0, "90 days of drift must move the DB");

    // Localize on every 3rd cell; median error at sub-cell-ish level.
    let mut errs: Vec<f64> = Vec::new();
    for cell in (0..world.num_cells()).step_by(3) {
        let y = campaign::snapshot_at_cell(&world, t, cell, 50);
        let fix = sys.localize(&y).unwrap();
        errs.push(fix.point.distance(&world.grid().cell_center(cell)));
    }
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = errs[errs.len() / 2];
    assert!(median < 1.2, "median localization error {median:.2} m after update");
}

#[test]
fn repeated_updates_remain_stable() {
    let (world, mut sys) = paper_system(2, 30);
    // Monthly updates for half a year must not diverge.
    for month in 1..=6 {
        let t = 30.0 * month as f64;
        let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), 30);
        let empty = campaign::empty_snapshot(&world, t, 30);
        let report = sys.update(&fresh, &empty).unwrap();
        assert!(report.converged, "month {month}: no convergence");
        assert!(!sys.db().rss().has_non_finite(), "month {month}: NaN in DB");
    }
    let truth = world.fingerprint_truth(180.0);
    let err = sys.db().mean_abs_error(&truth).unwrap();
    assert!(err < 6.0, "DB error after 6 monthly updates: {err:.2} dB");
}

#[test]
fn update_beats_staleness_on_localization() {
    let (world, mut sys) = paper_system(3, 50);
    let stale = sys.clone();
    let t = 90.0;
    let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), 50);
    let empty = campaign::empty_snapshot(&world, t, 50);
    sys.update(&fresh, &empty).unwrap();

    let mean_err = |s: &TafLoc| {
        let mut acc = 0.0;
        let mut n = 0;
        for cell in (0..world.num_cells()).step_by(4) {
            let y = campaign::snapshot_at_cell(&world, t, cell, 50);
            acc += s.localize(&y).unwrap().point.distance(&world.grid().cell_center(cell));
            n += 1;
        }
        acc / n as f64
    };
    let updated_err = mean_err(&sys);
    let stale_err = mean_err(&stale);
    assert!(updated_err < stale_err, "updated {updated_err:.2} m must beat stale {stale_err:.2} m");
}

#[test]
fn alternative_configurations_work_end_to_end() {
    let world = World::new(WorldConfig::paper_default(), 4);
    let x0 = campaign::full_calibration(&world, 0.0, 30);
    let e0 = campaign::empty_snapshot(&world, 0.0, 30);
    let db = FingerprintDb::from_world(x0, &world).unwrap();

    for matcher in [
        MatchMethod::NearestNeighbor,
        MatchMethod::Knn { k: 4 },
        MatchMethod::Probabilistic { sigma_db: 2.0 },
    ] {
        for strategy in [ReferenceStrategy::QrPivot, ReferenceStrategy::Random { seed: 5 }] {
            let cfg = TafLocConfig {
                matcher,
                ref_strategy: strategy,
                ref_count: 12,
                ..Default::default()
            };
            let mut sys = TafLoc::calibrate(cfg, db.clone(), e0.clone()).unwrap();
            let fresh = campaign::measure_columns(&world, 30.0, sys.reference_cells(), 30);
            let empty = campaign::empty_snapshot(&world, 30.0, 30);
            sys.update(&fresh, &empty).unwrap();
            let y = campaign::snapshot_at_cell(&world, 30.0, 50, 30);
            let fix = sys.localize(&y).unwrap();
            assert!(fix.cell < world.num_cells());
            assert!(fix.point.x.is_finite() && fix.point.y.is_finite());
        }
    }
}

#[test]
fn umbrella_reexports_are_wired() {
    // The umbrella crate must expose all four sub-crates.
    let _ = tafloc::linalg::Matrix::identity(2);
    let _ = tafloc::rfsim::WorldConfig::small_test();
    let _ = tafloc::core::system::TafLocConfig::default();
    let _ = tafloc::baselines::RtiConfig::default();
}
