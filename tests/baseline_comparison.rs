//! Cross-system integration: TafLoc vs RTI vs RASS (with/without
//! reconstruction) over identical measurements — the relationships behind
//! Fig. 5, asserted at reduced scale.

use tafloc::baselines::{Rass, RassConfig, Rti, RtiConfig};
use tafloc::core::db::FingerprintDb;
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::rfsim::geometry::Segment;
use tafloc::rfsim::{campaign, World, WorldConfig};

struct Bench {
    world: World,
    tafloc: TafLoc,
    rti: Rti,
    rass_stale: Rass,
    rass_rec: Rass,
    fresh_empty: Vec<f64>,
    t: f64,
}

/// Calibrates all four systems on identical measurements from one pinned
/// world (seeds 100–101 below); the cross-system *rankings* asserted here
/// hold for these seeds deterministically — there is no RNG left at test
/// time.
fn setup(seed: u64) -> Bench {
    let world = World::new(WorldConfig::paper_default(), seed);
    let t = 90.0;
    let x0 = campaign::full_calibration(&world, 0.0, 50);
    let e0 = campaign::empty_snapshot(&world, 0.0, 50);
    let db0 = FingerprintDb::from_world(x0, &world).unwrap();

    let mut tafloc = TafLoc::calibrate(TafLocConfig::default(), db0.clone(), e0.clone()).unwrap();
    let fresh = campaign::measure_columns(&world, t, tafloc.reference_cells(), 50);
    let fresh_empty = campaign::empty_snapshot(&world, t, 50);
    tafloc.update(&fresh, &fresh_empty).unwrap();

    let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
    let rti = Rti::new(&links, world.grid(), RtiConfig::default()).unwrap();
    let rass_stale = Rass::new(db0, e0, RassConfig::default()).unwrap();
    let rass_rec = rass_stale.with_database(tafloc.db().clone(), fresh_empty.clone()).unwrap();
    Bench { world, tafloc, rti, rass_stale, rass_rec, fresh_empty, t }
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn run(b: &Bench) -> (f64, f64, f64, f64) {
    let mut e = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for cell in (0..b.world.num_cells()).step_by(2) {
        let truth = b.world.grid().cell_center(cell);
        let y = campaign::snapshot_at_cell(&b.world, b.t, cell, 50);
        e.0.push(b.tafloc.localize(&y).unwrap().point.distance(&truth));
        e.1.push(b.rti.localize(&b.fresh_empty, &y).unwrap().point.distance(&truth));
        e.2.push(b.rass_rec.localize(&y).unwrap().point.distance(&truth));
        e.3.push(b.rass_stale.localize(&y).unwrap().point.distance(&truth));
    }
    (median(e.0), median(e.1), median(e.2), median(e.3))
}

#[test]
fn fig5_orderings_hold() {
    let b = setup(100);
    let (tafloc, rti, rass_rec, rass_stale) = run(&b);

    // TafLoc must beat the stale-fingerprint system decisively.
    assert!(tafloc < rass_stale, "TafLoc {tafloc:.2} m vs RASS w/o rec {rass_stale:.2} m");
    // Reconstruction must rescue RASS (the paper's transferability claim).
    assert!(rass_rec < rass_stale, "RASS w/ rec {rass_rec:.2} m vs w/o {rass_stale:.2} m");
    // TafLoc competitive with or ahead of everything.
    assert!(tafloc <= rass_rec + 0.4, "TafLoc {tafloc:.2} m vs RASS w/ rec {rass_rec:.2} m");
    assert!(tafloc <= rti + 0.4, "TafLoc {tafloc:.2} m vs RTI {rti:.2} m");
}

#[test]
fn all_systems_produce_in_bounds_estimates() {
    let b = setup(101);
    for cell in [0, 47, 95] {
        let y = campaign::snapshot_at_cell(&b.world, b.t, cell, 50);
        let g = b.world.grid();
        let margin = 2.0; // centroids may spill slightly past the boundary
        let inside = |p: &tafloc::rfsim::geometry::Point| {
            p.x > g.origin().x - margin
                && p.x < g.origin().x + g.width() + margin
                && p.y > g.origin().y - margin
                && p.y < g.origin().y + g.height() + margin
        };
        assert!(inside(&b.tafloc.localize(&y).unwrap().point));
        assert!(inside(&b.rti.localize(&b.fresh_empty, &y).unwrap().point));
        assert!(inside(&b.rass_rec.localize(&y).unwrap().point));
        assert!(inside(&b.rass_stale.localize(&y).unwrap().point));
    }
}

#[test]
fn rti_is_drift_immune_fingerprint_systems_are_not() {
    // RTI error at day 0 vs day 90 stays flat; RASS w/o rec degrades.
    let world = World::new(WorldConfig::paper_default(), 101);
    let links: Vec<Segment> = world.deployment().links().iter().map(|l| l.segment).collect();
    let rti = Rti::new(&links, world.grid(), RtiConfig::default()).unwrap();
    let x0 = campaign::full_calibration(&world, 0.0, 50);
    let e0 = campaign::empty_snapshot(&world, 0.0, 50);
    let rass = Rass::new(FingerprintDb::from_world(x0, &world).unwrap(), e0, RassConfig::default())
        .unwrap();

    let eval = |t: f64| {
        let empty = campaign::empty_snapshot(&world, t, 50);
        let mut rti_e = Vec::new();
        let mut rass_e = Vec::new();
        for cell in (0..world.num_cells()).step_by(4) {
            let truth = world.grid().cell_center(cell);
            let y = campaign::snapshot_at_cell(&world, t, cell, 50);
            rti_e.push(rti.localize(&empty, &y).unwrap().point.distance(&truth));
            rass_e.push(rass.localize(&y).unwrap().point.distance(&truth));
        }
        (median(rti_e), median(rass_e))
    };
    let (rti_0, rass_0) = eval(0.0);
    let (rti_90, rass_90) = eval(90.0);
    assert!((rti_90 - rti_0).abs() < 0.8, "RTI drifted: {rti_0:.2} -> {rti_90:.2}");
    assert!(rass_90 > rass_0 + 0.3, "stale RASS should degrade: {rass_0:.2} -> {rass_90:.2}");
}
