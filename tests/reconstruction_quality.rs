//! Integration tests of reconstruction quality: LoLi-IR against its own
//! ablations and against ground truth, at paper scale.

use tafloc::core::db::FingerprintDb;
use tafloc::core::eval::reconstruction_error_cdf;
use tafloc::core::mask::Mask;
use tafloc::core::svt::{soft_impute, SvtConfig};
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::linalg::Matrix;
use tafloc::rfsim::{campaign, World, WorldConfig};

struct Fixture {
    world: World,
    sys: TafLoc,
    fresh: Matrix,
    fresh_empty: Vec<f64>,
    t: f64,
}

/// One calibrated paper-scale world plus its drift-day measurements. Every
/// test below uses a distinct pinned seed (10–15) so the quality thresholds
/// are exact, repeatable statements about one world — not flaky averages.
fn fixture(seed: u64, t: f64) -> Fixture {
    let world = World::new(WorldConfig::paper_default(), seed);
    let x0 = campaign::full_calibration(&world, 0.0, 50);
    let e0 = campaign::empty_snapshot(&world, 0.0, 50);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).unwrap();
    let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), 50);
    let fresh_empty = campaign::empty_snapshot(&world, t, 50);
    Fixture { world, sys, fresh, fresh_empty, t }
}

#[test]
fn reconstruction_tracks_drifted_truth() {
    let f = fixture(10, 45.0);
    let rec = f.sys.reconstruct_db(&f.fresh, &f.fresh_empty).unwrap();
    let truth = f.world.fingerprint_truth(f.t);
    let cdf = reconstruction_error_cdf(&rec.matrix, &truth).unwrap();
    // Paper's Fig. 3 scale: a few dBm mean error; noise floor is 1-4 dBm.
    assert!(cdf.mean() < 5.0, "45-day reconstruction mean error {:.2} dBm", cdf.mean());
    assert!(cdf.quantile(0.9) < 10.0, "p90 {:.2} dBm", cdf.quantile(0.9));
}

#[test]
fn reconstruction_beats_svt_completion() {
    // Property (i) alone (matrix completion) cannot fill unobserved columns;
    // the LRR prior is what makes reference-only updates possible.
    let f = fixture(11, 90.0);
    let rec = f.sys.reconstruct_db(&f.fresh, &f.fresh_empty).unwrap();

    let (m, n) = (f.world.num_links(), f.world.num_cells());
    let mut observed = Matrix::zeros(m, n);
    for (k, &cell) in f.sys.reference_cells().iter().enumerate() {
        observed.set_col(cell, &f.fresh.col(k)).unwrap();
    }
    let mask = Mask::from_columns(m, n, f.sys.reference_cells()).unwrap();
    let svt =
        soft_impute(&observed, &mask, &SvtConfig { tau: 0.5, max_iters: 300, tol: 1e-7 }).unwrap();

    let truth = f.world.fingerprint_truth(f.t);
    let err = |x: &Matrix| x.sub(&truth).unwrap().map(f64::abs).mean();
    let e_loli = err(&rec.matrix);
    let e_svt = err(&svt.matrix);
    assert!(
        e_loli < e_svt * 0.8,
        "LoLi-IR ({e_loli:.2} dBm) must clearly beat SVT completion ({e_svt:.2} dBm)"
    );
}

#[test]
fn reconstruction_beats_stale_database() {
    let f = fixture(12, 90.0);
    let rec = f.sys.reconstruct_db(&f.fresh, &f.fresh_empty).unwrap();
    let truth = f.world.fingerprint_truth(f.t);
    let stale_err = f.sys.db().mean_abs_error(&truth).unwrap();
    let rec_db = f.sys.db().with_rss(rec.matrix).unwrap();
    let rec_err = rec_db.mean_abs_error(&truth).unwrap();
    assert!(
        rec_err < stale_err * 0.7,
        "reconstruction ({rec_err:.2} dBm) must clearly beat staleness ({stale_err:.2} dBm)"
    );
}

#[test]
fn loli_ir_objective_decreases_at_paper_scale() {
    let f = fixture(13, 45.0);
    let rec = f.sys.reconstruct_db(&f.fresh, &f.fresh_empty).unwrap();
    assert!(rec.objective_trace.len() >= 2);
    for w in rec.objective_trace.windows(2) {
        assert!(w[1] <= w[0] * (1.0 + 1e-9) + 1e-9, "objective increased: {} -> {}", w[0], w[1]);
    }
}

#[test]
fn errors_grow_with_horizon() {
    // The defining shape of Fig. 3: longer horizons, larger errors.
    let mut means = Vec::new();
    for &t in &[3.0, 90.0] {
        let f = fixture(14, t);
        let rec = f.sys.reconstruct_db(&f.fresh, &f.fresh_empty).unwrap();
        let truth = f.world.fingerprint_truth(t);
        means.push(rec.matrix.sub(&truth).unwrap().map(f64::abs).mean());
    }
    assert!(
        means[0] < means[1],
        "3-day error {:.2} must be below 90-day error {:.2}",
        means[0],
        means[1]
    );
}

#[test]
fn reconstruction_preserves_reference_columns() {
    // The observed (freshly measured) columns should be honored closely —
    // they carry weight 1 in the data term.
    let f = fixture(15, 45.0);
    let rec = f.sys.reconstruct_db(&f.fresh, &f.fresh_empty).unwrap();
    for (k, &cell) in f.sys.reference_cells().iter().enumerate() {
        for link in 0..f.world.num_links() {
            let got = rec.matrix[(link, cell)];
            let measured = f.fresh[(link, k)];
            assert!(
                (got - measured).abs() < 3.0,
                "reference column {cell}, link {link}: reconstructed {got:.1} vs measured {measured:.1}"
            );
        }
    }
}
