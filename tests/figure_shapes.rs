//! Reduced-scale smoke tests asserting the *shape* of each paper figure — the
//! who-wins / what-grows relationships the full bench binaries reproduce at
//! scale. These are the repository's regression guard for the reproduction.

use tafloc::core::db::FingerprintDb;
use tafloc::core::system::{TafLoc, TafLocConfig};
use tafloc::rfsim::drift::DriftConfig;
use tafloc::rfsim::{campaign, World, WorldConfig};

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

/// Fig. 3 shape: reconstruction error increases with horizon, and stays within
/// "reliable fingerprint" territory (the paper argues ~2.7-4.1 dBm against a
/// 1-4 dBm noise floor).
#[test]
fn fig3_shape_errors_grow_with_time() {
    let world = World::new(WorldConfig::paper_default(), 50);
    let x0 = campaign::full_calibration(&world, 0.0, 40);
    let e0 = campaign::empty_snapshot(&world, 0.0, 40);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).unwrap();

    let mut means = Vec::new();
    for &t in &[3.0, 45.0, 90.0] {
        let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), 40);
        let empty = campaign::empty_snapshot(&world, t, 40);
        let rec = sys.reconstruct_db(&fresh, &empty).unwrap();
        let truth = world.fingerprint_truth(t);
        means.push(rec.matrix.sub(&truth).unwrap().map(f64::abs).mean());
    }
    assert!(means[0] < means[2], "3d {:.2} vs 90d {:.2}", means[0], means[2]);
    assert!(means[2] < 8.0, "90-day error {:.2} dBm should stay usable", means[2]);
}

/// Fig. 4 shape: manual cost grows quadratically with the area edge; TafLoc's
/// cost is flat because the fingerprint-matrix rank is bounded by the link
/// count, not the cell count.
#[test]
fn fig4_shape_cost_scaling() {
    let edges = [6.0, 12.0, 24.0];
    let mut manual = Vec::new();
    let mut ranks = Vec::new();
    for &edge in &edges {
        let world = World::new(WorldConfig::square_area(edge), 51);
        manual.push(world.num_cells() as f64 * 100.0 / 3600.0);
        let x = world.fingerprint_truth(0.0);
        ranks.push(x.col_piv_qr().unwrap().rank(1e-6));
    }
    // Quadratic growth of the manual cost.
    assert!((manual[1] / manual[0] - 4.0).abs() < 0.2);
    assert!((manual[2] / manual[0] - 16.0).abs() < 0.5);
    // Rank (and hence TafLoc's reference count) does not grow with area.
    assert!(ranks.iter().all(|&r| r <= 10), "ranks {ranks:?} bounded by link count");
}

/// Fig. 5 shape (condensed): after 3 months, TafLoc's reconstructed database
/// localizes better than the never-updated database.
#[test]
fn fig5_shape_reconstruction_wins() {
    let world = World::new(WorldConfig::paper_default(), 52);
    let x0 = campaign::full_calibration(&world, 0.0, 40);
    let e0 = campaign::empty_snapshot(&world, 0.0, 40);
    let db = FingerprintDb::from_world(x0, &world).unwrap();
    let mut sys = TafLoc::calibrate(TafLocConfig::default(), db, e0).unwrap();
    let stale = sys.clone();

    let t = 90.0;
    let fresh = campaign::measure_columns(&world, t, sys.reference_cells(), 40);
    let empty = campaign::empty_snapshot(&world, t, 40);
    sys.update(&fresh, &empty).unwrap();

    let errs = |s: &TafLoc| {
        (0..world.num_cells())
            .step_by(3)
            .map(|cell| {
                let y = campaign::snapshot_at_cell(&world, t, cell, 40);
                s.localize(&y).unwrap().point.distance(&world.grid().cell_center(cell))
            })
            .collect::<Vec<_>>()
    };
    let updated = mean(&errs(&sys));
    let never = mean(&errs(&stale));
    assert!(updated < never, "updated {updated:.2} m vs stale {never:.2} m");
}

/// In-text drift anchors: the drift model is calibrated to ~2.5 dBm at 5 days
/// and ~6 dBm at 45 days (averaged over realizations).
#[test]
fn drift_anchors_match_paper() {
    let cfg = DriftConfig::paper_calibrated();
    let at5 = cfg.expected_abs_change(5.0);
    let at45 = cfg.expected_abs_change(45.0);
    assert!((at5 - 2.5).abs() < 0.15, "5-day drift {at5:.2}");
    assert!((at45 - 6.0).abs() < 0.4, "45-day drift {at45:.2}");

    // And the simulator actually realizes those magnitudes: average over six
    // pinned worlds (seeds 60–65) so the asserted band is deterministic while
    // still spanning world-to-world spread.
    let mut deltas5 = Vec::new();
    let mut deltas45 = Vec::new();
    for seed in 0..6 {
        let w = World::new(WorldConfig::paper_default(), 60 + seed);
        let x0 = w.fingerprint_truth(0.0);
        deltas5.push(x0.sub(&w.fingerprint_truth(5.0)).unwrap().map(f64::abs).mean());
        deltas45.push(x0.sub(&w.fingerprint_truth(45.0)).unwrap().map(f64::abs).mean());
    }
    let m5 = mean(&deltas5);
    let m45 = mean(&deltas45);
    assert!((1.2..=4.5).contains(&m5), "realized 5-day drift {m5:.2} dBm");
    assert!((3.5..=9.0).contains(&m45), "realized 45-day drift {m45:.2} dBm");
    assert!(m45 > m5);
}

/// In-text cost numbers: 2.78 h manual vs 0.28 h TafLoc for a 6 m x 6 m area.
#[test]
fn cost_worked_example() {
    let world = World::new(WorldConfig::square_area(6.0), 53);
    let manual_h = world.num_cells() as f64 * 100.0 / 3600.0;
    let tafloc_h: f64 = 10.0 * 100.0 / 3600.0;
    assert!((manual_h - 2.78).abs() < 0.01);
    assert!((tafloc_h - 0.28).abs() < 0.01);
}
